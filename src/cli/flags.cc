#include "cli/flags.h"

#include "common/check.h"
#include "common/string_util.h"

namespace tcim {

void FlagParser::AddString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  TCIM_CHECK(!flags_.count(name)) << "duplicate flag: " << name;
  flags_[name] = Flag{Type::kString, default_value, default_value, help};
}

void FlagParser::AddChoice(const std::string& name,
                           const std::string& default_value,
                           const std::vector<std::string>& choices,
                           const std::string& help) {
  TCIM_CHECK(!flags_.count(name)) << "duplicate flag: " << name;
  TCIM_CHECK(!choices.empty()) << "flag --" << name << " has no choices";
  bool default_is_choice = false;
  for (const std::string& choice : choices) {
    default_is_choice = default_is_choice || choice == default_value;
  }
  TCIM_CHECK(default_is_choice)
      << "flag --" << name << " default \"" << default_value
      << "\" is not one of its choices";
  Flag flag{Type::kString, default_value, default_value, help, choices};
  flags_[name] = std::move(flag);
}

void FlagParser::AddInt(const std::string& name, int64_t default_value,
                        const std::string& help) {
  TCIM_CHECK(!flags_.count(name)) << "duplicate flag: " << name;
  const std::string text = StrFormat("%lld", static_cast<long long>(default_value));
  flags_[name] = Flag{Type::kInt, text, text, help};
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  TCIM_CHECK(!flags_.count(name)) << "duplicate flag: " << name;
  const std::string text = FormatDouble(default_value, 10);
  flags_[name] = Flag{Type::kDouble, text, text, help};
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  TCIM_CHECK(!flags_.count(name)) << "duplicate flag: " << name;
  const std::string text = default_value ? "true" : "false";
  flags_[name] = Flag{Type::kBool, text, text, help};
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t equals = name.find('=');
    if (equals != std::string::npos) {
      value = name.substr(equals + 1);
      name = name.substr(0, equals);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return InvalidArgumentError("unknown flag: --" + name);
    }
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.type == Type::kBool) {
        value = "true";  // bare --flag sets a bool
      } else {
        if (i + 1 >= argc) {
          return InvalidArgumentError("flag --" + name + " needs a value");
        }
        value = argv[++i];
      }
    }
    // Validate by type.
    switch (flag.type) {
      case Type::kString:
        if (!flag.choices.empty()) {
          bool is_choice = false;
          for (const std::string& choice : flag.choices) {
            is_choice = is_choice || choice == value;
          }
          if (!is_choice) {
            std::string accepted;
            for (const std::string& choice : flag.choices) {
              if (!accepted.empty()) accepted += " | ";
              accepted += choice;
            }
            return InvalidArgumentError("flag --" + name + ": \"" + value +
                                        "\" is not one of " + accepted);
          }
        }
        break;
      case Type::kInt: {
        int64_t parsed;
        if (!ParseInt64(value, &parsed)) {
          return InvalidArgumentError("flag --" + name +
                                      ": not an integer: " + value);
        }
        break;
      }
      case Type::kDouble: {
        double parsed;
        if (!ParseDouble(value, &parsed)) {
          return InvalidArgumentError("flag --" + name +
                                      ": not a number: " + value);
        }
        break;
      }
      case Type::kBool:
        if (value != "true" && value != "false" && value != "1" &&
            value != "0") {
          return InvalidArgumentError("flag --" + name +
                                      ": not a bool: " + value);
        }
        break;
    }
    flag.value = value;
  }
  return Status::Ok();
}

const FlagParser::Flag* FlagParser::Find(const std::string& name,
                                         Type type) const {
  auto it = flags_.find(name);
  TCIM_CHECK(it != flags_.end()) << "undeclared flag: " << name;
  TCIM_CHECK(it->second.type == type) << "flag type mismatch: " << name;
  return &it->second;
}

std::string FlagParser::GetString(const std::string& name) const {
  return Find(name, Type::kString)->value;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  int64_t value = 0;
  TCIM_CHECK(ParseInt64(Find(name, Type::kInt)->value, &value));
  return value;
}

double FlagParser::GetDouble(const std::string& name) const {
  double value = 0.0;
  TCIM_CHECK(ParseDouble(Find(name, Type::kDouble)->value, &value));
  return value;
}

bool FlagParser::GetBool(const std::string& name) const {
  const std::string& value = Find(name, Type::kBool)->value;
  return value == "true" || value == "1";
}

std::string FlagParser::Help() const {
  std::string out = "Flags:\n";
  for (const auto& [name, flag] : flags_) {
    std::string detail = flag.help;
    if (!flag.choices.empty()) {
      detail += " [";
      for (size_t i = 0; i < flag.choices.size(); ++i) {
        if (i > 0) detail += " | ";
        detail += flag.choices[i];
      }
      detail += "]";
    }
    out += StrFormat("  --%-18s %s (default: %s)\n", name.c_str(),
                     detail.c_str(), flag.default_value.c_str());
  }
  return out;
}

}  // namespace tcim
