// A minimal command-line flag parser for the CLI tool and benches.
//
// Supports `--name=value` and `--name value` forms, bool flags
// (`--fair` / `--fair=false`), and positional arguments. Unknown flags are
// an error (catches typos in experiment scripts).

#ifndef TCIM_CLI_FLAGS_H_
#define TCIM_CLI_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace tcim {

class FlagParser {
 public:
  FlagParser() = default;

  // Declares a flag with a default value and a help line.
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  // A string flag restricted to `choices`; other values are a Parse error
  // naming the accepted set. The default must be one of the choices.
  void AddChoice(const std::string& name, const std::string& default_value,
                 const std::vector<std::string>& choices,
                 const std::string& help);
  void AddInt(const std::string& name, int64_t default_value,
              const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);

  // Parses argv (excluding argv[0]); returns an error for unknown flags or
  // unparsable values. Remaining non-flag tokens become positional args.
  Status Parse(int argc, const char* const* argv);

  // Typed getters; the flag must have been declared (checked).
  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Formatted --help text.
  std::string Help() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string value;  // current value, textual
    std::string default_value;
    std::string help;
    // Non-empty for AddChoice flags: the accepted values.
    std::vector<std::string> choices;
  };

  const Flag* Find(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace tcim

#endif  // TCIM_CLI_FLAGS_H_
