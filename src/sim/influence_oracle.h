// Monte-Carlo oracle for per-group time-critical influence (paper Eq. 1).
//
// The oracle fixes R live-edge worlds (sim/live_edge.h). Over fixed worlds
// the estimated utility
//
//   f̂_τ(S; V_i) = (1/R) Σ_r |{v ∈ V_i : dist_r(S, v) ≤ τ}|
//
// is an exact τ-bounded coverage function: dist_r(S,v) = min_{s∈S}
// dist_r(s,v), so coverage of S is the union of the worlds' τ-balls around
// the seeds. This makes f̂ monotone and submodular *as estimated* — lazy
// greedy (CELF) is therefore sound on the estimate, and the classical
// guarantees of §3.4 / Theorems 1–2 apply to it. (Property-tested in
// tests/influence_oracle_test.cc.)
//
// The oracle is *stateful*: AddSeed(u) commits u and updates each world's
// covered set, so a marginal-gain query costs one τ-bounded BFS per world
// from the candidate only. Queries are parallelized over worlds.

#ifndef TCIM_SIM_INFLUENCE_ORACLE_H_
#define TCIM_SIM_INFLUENCE_ORACLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "graph/graph.h"
#include "graph/groups.h"
#include "sim/cascade.h"
#include "sim/live_edge.h"
#include "sim/oracle_interface.h"
#include "sim/world_ensemble.h"

namespace tcim {

struct OracleOptions {
  // Number of Monte-Carlo worlds (the paper uses 200 for synthetic, 500 for
  // Rice-Facebook, 10000 for Instagram).
  int num_worlds = 200;
  // Time deadline τ; kNoDeadline means τ = ∞.
  int deadline = kNoDeadline;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  uint64_t seed = 0x9b97f4a7c15ull;
  // Worker pool; nullptr uses ThreadPool::Default().
  ThreadPool* pool = nullptr;
  // Pre-materialized live-edge worlds to traverse instead of hashing coins
  // on the fly (api/engine.h shares one ensemble across solves). Must have
  // been built from the same graph with matching model/seed/num_worlds;
  // results are bit-identical either way, traversal is just faster. The
  // ensemble is never mutated — this oracle is a per-solve cursor over it.
  std::shared_ptr<const WorldEnsemble> worlds;
};

class InfluenceOracle : public GroupCoverageOracle {
 public:
  // Keeps pointers to `graph` and `groups`; both must outlive the oracle.
  InfluenceOracle(const Graph* graph, const GroupAssignment* groups,
                  const OracleOptions& options);

  InfluenceOracle(const InfluenceOracle&) = delete;
  InfluenceOracle& operator=(const InfluenceOracle&) = delete;

  const Graph& graph() const override { return *graph_; }
  const GroupAssignment& groups() const override { return *groups_; }
  int num_worlds() const { return options_.num_worlds; }
  int deadline() const { return options_.deadline; }
  const OracleOptions& options() const { return options_; }

  // Seeds committed so far, in insertion order.
  const std::vector<NodeId>& seeds() const override { return seeds_; }

  // Estimated expected influenced-node count per group for the committed
  // seed set (f̂_τ(S; V_i) for each i).
  const GroupVector& group_coverage() const override {
    return group_coverage_;
  }

  // Estimated per-group marginal coverage of adding `candidate` to the
  // committed set. Does not modify logical state. Must be called from a
  // single caller thread (it internally parallelizes over worlds).
  GroupVector MarginalGain(NodeId candidate) override;

  // Commits `candidate` and returns its realized per-group marginal gain.
  GroupVector AddSeed(NodeId candidate) override;

  // Clears the committed seed set and covered state.
  void Reset() override;

  // Coverage of an arbitrary seed set, independent of committed state
  // (evaluated on the same worlds).
  GroupVector EstimateGroupCoverage(const std::vector<NodeId>& set) const;

 private:
  // Scratch buffers for one worker shard's BFS traversals.
  struct TraversalScratch {
    std::vector<int32_t> stamp;   // visited marker, epoch-stamped
    std::vector<NodeId> queue;    // BFS queue
    std::vector<NodeId> reached;  // newly covered nodes of one world
    int32_t epoch = 0;
  };

  // τ-bounded BFS from `candidate` over the live edges of `world`; fills
  // scratch.reached with every reached node not yet covered in that world
  // (including `candidate` itself when uncovered).
  void CollectNewlyCovered(uint32_t world, NodeId candidate,
                           TraversalScratch& scratch) const;

  // Shared implementation of MarginalGain (commit=false) and AddSeed
  // (commit=true): per-group newly covered mass of `candidate`, averaged
  // over worlds, optionally committing the covered bits.
  GroupVector EvaluateCandidate(NodeId candidate, bool commit);

  bool IsCovered(uint32_t world, NodeId v) const {
    const uint64_t word =
        covered_[static_cast<size_t>(world) * words_per_world_ + (v >> 6)];
    return (word >> (v & 63)) & 1u;
  }
  void SetCovered(uint32_t world, NodeId v) {
    covered_[static_cast<size_t>(world) * words_per_world_ + (v >> 6)] |=
        uint64_t{1} << (v & 63);
  }

  ThreadPool& pool() const;

  const Graph* graph_;
  const GroupAssignment* groups_;
  OracleOptions options_;
  WorldSampler sampler_;
  // Raw pointer view of options_.worlds (nullptr = hash worlds on the fly).
  const WorldEnsemble* worlds_ = nullptr;

  std::vector<NodeId> seeds_;
  // Bit-packed covered flags. Each world owns `words_per_world_` words so
  // parallel updates of different worlds never touch the same word.
  size_t words_per_world_;
  std::vector<uint64_t> covered_;
  GroupVector group_coverage_;
};

}  // namespace tcim

#endif  // TCIM_SIM_INFLUENCE_ORACLE_H_
