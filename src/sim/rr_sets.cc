#include "sim/rr_sets.h"

#include <algorithm>
#include <functional>

#include "common/check.h"

namespace tcim {

namespace {

// The effective hop bound of a query: the caller's τ' clamped to the build
// deadline (hops beyond the build deadline were never explored anyway).
int32_t EffectiveDeadline(const RrSketchOptions& build,
                          const RrSelectOptions& select) {
  TCIM_CHECK(select.deadline >= 0)
      << "effective deadline must be >= 0 (kNoDeadline for the full build)";
  return static_cast<int32_t>(std::min(select.deadline, build.deadline));
}

// The nodes a selection loop scans: the (deduplicated) candidate list, or
// every node when unrestricted.
std::vector<NodeId> ScanList(NodeId n, const RrSelectOptions& select) {
  std::vector<NodeId> scan;
  if (select.candidates == nullptr) {
    scan.resize(n);
    for (NodeId v = 0; v < n; ++v) scan[v] = v;
    return scan;
  }
  std::vector<uint8_t> seen(n, 0);
  scan.reserve(select.candidates->size());
  for (const NodeId v : *select.candidates) {
    TCIM_CHECK(v >= 0 && v < n) << "candidate out of range: " << v;
    if (!seen[v]) {
      seen[v] = 1;
      scan.push_back(v);
    }
  }
  return scan;
}

}  // namespace

RrSketch::RrSketch(const Graph* graph, const GroupAssignment* groups,
                   const RrSketchOptions& options)
    : graph_(graph), groups_(groups), options_(options) {
  TCIM_CHECK(graph != nullptr && groups != nullptr);
  TCIM_CHECK(graph->num_nodes() == groups->num_nodes());
  TCIM_CHECK(options.sets_per_group > 0);
  TCIM_CHECK(options.deadline >= 0);

  const int k = groups->num_groups();
  const NodeId n = graph->num_nodes();
  const int per_group = options.sets_per_group;
  const int total_sets = per_group * k;

  group_weight_.resize(k);
  for (GroupId g = 0; g < k; ++g) {
    group_weight_[g] = static_cast<double>(groups->GroupSize(g)) / per_group;
  }

  // Root of set s: the (s / k)-th root of group (s % k), drawn uniformly
  // inside the group via a per-set hash (deterministic and parallel-safe).
  std::vector<std::vector<NodeId>> members_by_group(k);
  for (GroupId g = 0; g < k; ++g) members_by_group[g] = groups->GroupMembers(g);

  set_members_.resize(total_sets);
  set_member_hops_.resize(total_sets);
  set_root_group_.resize(total_sets);
  WorldSampler sampler(graph, options.model, options.seed);

  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::Default();
  pool.ParallelFor(
      static_cast<size_t>(total_sets), [&](size_t begin, size_t end) {
        std::vector<int32_t> stamp(n, 0);
        int32_t epoch = 0;
        std::vector<NodeId> queue;
        for (size_t s = begin; s < end; ++s) {
          const GroupId g = static_cast<GroupId>(s % k);
          const auto& pool_nodes = members_by_group[g];
          const uint64_t pick =
              HashCombine(options.seed ^ 0xa0075ull, s);
          const NodeId root = pool_nodes[pick % pool_nodes.size()];
          set_root_group_[s] = g;

          // Reverse τ-bounded BFS from the root over live in-edges; the
          // world index is the set index, so each set sees fresh coins.
          // BFS order means the recorded hop is the member's exact
          // live-edge distance to the root, which is what makes the
          // sketch deadline-parametric (see header).
          ++epoch;
          queue.clear();
          stamp[root] = epoch;
          queue.push_back(root);
          std::vector<NodeId>& out = set_members_[s];
          std::vector<int32_t>& hops = set_member_hops_[s];
          out.clear();
          out.push_back(root);
          hops.clear();
          hops.push_back(0);
          size_t level_begin = 0;
          size_t level_end = queue.size();
          int depth = 0;
          while (level_begin < level_end && depth < options.deadline) {
            ++depth;
            for (size_t i = level_begin; i < level_end; ++i) {
              const NodeId v = queue[i];
              for (const AdjacentEdge& in_edge : graph->InEdges(v)) {
                if (stamp[in_edge.node] == epoch) continue;
                if (!sampler.IsLive(static_cast<uint32_t>(s),
                                    in_edge.edge_id)) {
                  continue;
                }
                stamp[in_edge.node] = epoch;
                queue.push_back(in_edge.node);
                out.push_back(in_edge.node);
                hops.push_back(depth);
              }
            }
            level_begin = level_end;
            level_end = queue.size();
          }
        }
      });

  // Inverted index for greedy selection, hop-annotated so queries can
  // filter by an effective deadline.
  sets_containing_.resize(n);
  sets_containing_hops_.resize(n);
  for (int s = 0; s < total_sets; ++s) {
    const std::vector<NodeId>& members = set_members_[s];
    const std::vector<int32_t>& hops = set_member_hops_[s];
    for (size_t i = 0; i < members.size(); ++i) {
      sets_containing_[members[i]].push_back(s);
      sets_containing_hops_[members[i]].push_back(hops[i]);
    }
  }
}

size_t RrSketch::ApproxBytes() const {
  size_t bytes = set_members_.capacity() * sizeof(std::vector<NodeId>) +
                 set_member_hops_.capacity() * sizeof(std::vector<int32_t>) +
                 set_root_group_.capacity() * sizeof(GroupId) +
                 group_weight_.capacity() * sizeof(double) +
                 sets_containing_.capacity() * sizeof(std::vector<int32_t>) +
                 sets_containing_hops_.capacity() * sizeof(std::vector<int32_t>);
  for (const auto& members : set_members_) {
    bytes += members.capacity() * sizeof(NodeId);
  }
  for (const auto& hops : set_member_hops_) {
    bytes += hops.capacity() * sizeof(int32_t);
  }
  for (const auto& sets : sets_containing_) {
    bytes += sets.capacity() * sizeof(int32_t);
  }
  for (const auto& hops : sets_containing_hops_) {
    bytes += hops.capacity() * sizeof(int32_t);
  }
  return bytes;
}

GroupVector RrSketch::EstimateGroupCoverage(
    const std::vector<NodeId>& seeds, const RrSelectOptions& select) const {
  const int k = num_groups();
  const int32_t deadline = EffectiveDeadline(options_, select);
  std::vector<uint8_t> hit(set_members_.size(), 0);
  for (const NodeId s : seeds) {
    TCIM_CHECK(s >= 0 && s < graph_->num_nodes());
    const std::vector<int32_t>& sets = sets_containing_[s];
    const std::vector<int32_t>& hops = sets_containing_hops_[s];
    for (size_t i = 0; i < sets.size(); ++i) {
      if (hops[i] <= deadline) hit[sets[i]] = 1;
    }
  }
  GroupVector coverage(k, 0.0);
  for (size_t s = 0; s < hit.size(); ++s) {
    if (hit[s]) coverage[set_root_group_[s]] += group_weight_[set_root_group_[s]];
  }
  return coverage;
}

std::vector<int32_t> RrSketch::BuildFilteredCounts(int32_t deadline) const {
  const NodeId n = graph_->num_nodes();
  const int k = num_groups();
  std::vector<int32_t> counts(static_cast<size_t>(n) * k, 0);
  for (NodeId v = 0; v < n; ++v) {
    const std::vector<int32_t>& sets = sets_containing_[v];
    const std::vector<int32_t>& hops = sets_containing_hops_[v];
    for (size_t i = 0; i < sets.size(); ++i) {
      if (hops[i] > deadline) continue;
      counts[static_cast<size_t>(v) * k + set_root_group_[sets[i]]]++;
    }
  }
  return counts;
}

void RrSketch::CoverAndDecrement(NodeId chosen, int32_t deadline,
                                 std::vector<uint8_t>& covered,
                                 GroupVector& group_cov,
                                 std::vector<int32_t>& counts) const {
  const int k = num_groups();
  const std::vector<int32_t>& sets = sets_containing_[chosen];
  const std::vector<int32_t>& hops = sets_containing_hops_[chosen];
  for (size_t i = 0; i < sets.size(); ++i) {
    if (hops[i] > deadline) continue;
    const int32_t set_id = sets[i];
    if (covered[set_id]) continue;
    covered[set_id] = 1;
    const GroupId g = set_root_group_[set_id];
    group_cov[g] += group_weight_[g];
    const std::vector<NodeId>& members = set_members_[set_id];
    const std::vector<int32_t>& member_hops = set_member_hops_[set_id];
    for (size_t m = 0; m < members.size(); ++m) {
      if (member_hops[m] > deadline) continue;
      counts[static_cast<size_t>(members[m]) * k + g]--;
    }
  }
}

std::vector<NodeId> RrSketch::SelectSeedsBudget(
    int budget, const std::function<double(double)>& wrap,
    const RrSelectOptions& select) const {
  TCIM_CHECK(budget >= 0);
  const NodeId n = graph_->num_nodes();
  const int k = num_groups();
  const int32_t deadline = EffectiveDeadline(options_, select);
  const std::vector<NodeId> scan = ScanList(n, select);

  std::vector<int32_t> counts = BuildFilteredCounts(deadline);
  std::vector<uint8_t> covered(set_members_.size(), 0);
  GroupVector group_cov(k, 0.0);
  std::vector<NodeId> seeds;
  seeds.reserve(budget);

  const int max_picks =
      std::min<int>(budget, static_cast<int>(scan.size()));
  for (int iter = 0; iter < max_picks; ++iter) {
    NodeId best = -1;
    double best_gain = -1.0;
    for (const NodeId v : scan) {
      double gain = 0.0;
      for (GroupId g = 0; g < k; ++g) {
        const int32_t c = counts[static_cast<size_t>(v) * k + g];
        if (c == 0) continue;
        const double add = group_weight_[g] * c;
        gain += wrap(group_cov[g] + add) - wrap(group_cov[g]);
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    if (best < 0 || best_gain <= 0.0) break;
    seeds.push_back(best);
    CoverAndDecrement(best, deadline, covered, group_cov, counts);
  }
  return seeds;
}

std::vector<NodeId> RrSketch::SelectSeedsCover(
    double quota, int max_seeds, const RrSelectOptions& select) const {
  TCIM_CHECK(quota >= 0.0 && quota <= 1.0);
  const NodeId n = graph_->num_nodes();
  const int k = num_groups();
  const int32_t deadline = EffectiveDeadline(options_, select);
  const std::vector<NodeId> scan = ScanList(n, select);

  std::vector<int32_t> counts = BuildFilteredCounts(deadline);
  std::vector<uint8_t> covered(set_members_.size(), 0);
  GroupVector group_cov(k, 0.0);
  std::vector<NodeId> seeds;

  auto truncated = [&](GroupId g, double value) {
    const double normalized = value / groups_->GroupSize(g);
    return std::min(normalized, quota);
  };
  auto all_reached = [&] {
    for (GroupId g = 0; g < k; ++g) {
      if (truncated(g, group_cov[g]) + 1e-12 < quota) return false;
    }
    return true;
  };

  while (static_cast<int>(seeds.size()) < max_seeds && !all_reached()) {
    NodeId best = -1;
    double best_gain = 0.0;
    for (const NodeId v : scan) {
      double gain = 0.0;
      for (GroupId g = 0; g < k; ++g) {
        const int32_t c = counts[static_cast<size_t>(v) * k + g];
        if (c == 0) continue;
        const double add = group_weight_[g] * c;
        gain += truncated(g, group_cov[g] + add) - truncated(g, group_cov[g]);
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    if (best < 0 || best_gain <= 1e-15) break;  // no candidate helps
    seeds.push_back(best);
    CoverAndDecrement(best, deadline, covered, group_cov, counts);
  }
  return seeds;
}

}  // namespace tcim
