#include "sim/world_ensemble.h"

#include <utility>

#include "common/check.h"

namespace tcim {

namespace {

// Per-world build output before concatenation into the flat CSR.
struct WorldBuild {
  std::vector<WorldEnsemble::LiveEdge> edges;
  std::vector<uint64_t> offsets;  // n + 1 entries, relative to this world
};

}  // namespace

WorldEnsemble::WorldEnsemble(const Graph* graph,
                             const WorldEnsembleOptions& options)
    : graph_(graph), options_(options) {
  TCIM_CHECK(graph != nullptr);
  TCIM_CHECK(options.num_worlds > 0) << "need at least one world";
  TCIM_CHECK(options.delay_cap >= 1) << "delay_cap must be >= 1";

  const NodeId n = graph->num_nodes();
  const int num_worlds = options.num_worlds;
  const WorldSampler sampler(graph, options.model, options.seed);
  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::Default();

  std::vector<WorldBuild> builds(num_worlds);
  pool.ParallelFor(
      static_cast<size_t>(num_worlds), [&](size_t begin, size_t end) {
        // LT only: each node's single chosen live in-edge, resolved once per
        // world instead of re-hashed for every out-edge scanned.
        std::vector<EdgeId> lt_choice;
        for (size_t world = begin; world < end; ++world) {
          const uint32_t w = static_cast<uint32_t>(world);
          WorldBuild& build = builds[world];
          build.offsets.assign(static_cast<size_t>(n) + 1, 0);
          if (options_.model == DiffusionModel::kLinearThreshold) {
            lt_choice.resize(n);
            for (NodeId v = 0; v < n; ++v) {
              lt_choice[v] = sampler.LinearThresholdChoice(w, v);
            }
          }
          for (NodeId v = 0; v < n; ++v) {
            for (const AdjacentEdge& edge : graph_->OutEdges(v)) {
              const bool live =
                  options_.model == DiffusionModel::kLinearThreshold
                      ? lt_choice[edge.node] == edge.edge_id
                      : sampler.IsLive(w, edge.edge_id);
              if (!live) continue;
              LiveEdge materialized;
              materialized.target = edge.node;
              materialized.delay = static_cast<int32_t>(
                  options_.delays.Delay(w, edge.edge_id, options_.delay_cap));
              build.edges.push_back(materialized);
            }
            build.offsets[static_cast<size_t>(v) + 1] = build.edges.size();
          }
        }
      });

  uint64_t total = 0;
  for (const WorldBuild& build : builds) total += build.edges.size();
  offsets_.resize(static_cast<size_t>(num_worlds) * (n + 1));
  edges_.resize(total);

  uint64_t base = 0;
  size_t offset_cursor = 0;
  for (WorldBuild& build : builds) {
    for (const uint64_t rel : build.offsets) {
      offsets_[offset_cursor++] = base + rel;
    }
    std::copy(build.edges.begin(), build.edges.end(), edges_.begin() + base);
    base += build.edges.size();
    build.edges.clear();
    build.edges.shrink_to_fit();
  }
}

size_t WorldEnsemble::EstimateBytes(const Graph& graph, DiffusionModel model,
                                    int num_worlds) {
  const size_t offset_bytes = static_cast<size_t>(num_worlds) *
                              (static_cast<size_t>(graph.num_nodes()) + 1) *
                              sizeof(uint64_t);
  double expected_live = 0.0;
  if (model == DiffusionModel::kLinearThreshold) {
    // At most one live in-edge per node per world.
    expected_live = static_cast<double>(graph.num_nodes());
  } else {
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      expected_live += graph.EdgeProbability(e);
    }
  }
  return offset_bytes + static_cast<size_t>(expected_live * num_worlds *
                                            sizeof(LiveEdge));
}

}  // namespace tcim
