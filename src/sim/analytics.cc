#include "sim/analytics.h"

#include <algorithm>
#include <mutex>

#include "common/check.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "sim/cascade.h"
#include "sim/live_edge.h"

namespace tcim {

double ArrivalCurves::NormalizedAt(GroupId g, int t,
                                   const GroupAssignment& groups) const {
  TCIM_CHECK(g >= 0 && g < static_cast<GroupId>(cumulative.size()));
  TCIM_CHECK(t >= 0 && t <= horizon);
  return cumulative[g][t] / groups.GroupSize(g);
}

int ArrivalCurves::TimeToReach(GroupId g, double fraction,
                               const GroupAssignment& groups) const {
  TCIM_CHECK(g >= 0 && g < static_cast<GroupId>(cumulative.size()));
  for (int t = 0; t <= horizon; ++t) {
    if (NormalizedAt(g, t, groups) + 1e-12 >= fraction) return t;
  }
  return -1;
}

std::string ArrivalCurves::ToCsv(const GroupAssignment& groups) const {
  std::string out = "t";
  for (size_t g = 0; g < cumulative.size(); ++g) {
    out += StrFormat(",group%zu", g);
  }
  out += '\n';
  for (int t = 0; t <= horizon; ++t) {
    out += StrFormat("%d", t);
    for (size_t g = 0; g < cumulative.size(); ++g) {
      out += ',';
      out += FormatDouble(
          NormalizedAt(static_cast<GroupId>(g), t, groups), 6);
    }
    out += '\n';
  }
  return out;
}

ArrivalCurves ComputeArrivalCurves(const Graph& graph,
                                   const GroupAssignment& groups,
                                   const std::vector<NodeId>& seeds,
                                   int horizon,
                                   const OracleOptions& options) {
  TCIM_CHECK(graph.num_nodes() == groups.num_nodes());
  TCIM_CHECK(horizon >= 0);
  TCIM_CHECK(options.num_worlds > 0);
  const int k = groups.num_groups();

  ArrivalCurves curves;
  curves.horizon = horizon;
  curves.cumulative.assign(k, std::vector<double>(horizon + 1, 0.0));

  WorldSampler sampler(&graph, options.model, options.seed);
  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::Default();
  std::mutex merge_mutex;

  pool.ParallelFor(
      static_cast<size_t>(options.num_worlds),
      [&](size_t begin, size_t end) {
        // Per-shard: new-activation counts per (group, time), merged once.
        std::vector<std::vector<double>> local(
            k, std::vector<double>(horizon + 1, 0.0));
        for (size_t world = begin; world < end; ++world) {
          const CascadeResult result = SimulateInWorld(
              graph, seeds, sampler, static_cast<uint32_t>(world), horizon);
          for (NodeId v = 0; v < graph.num_nodes(); ++v) {
            const int t = result.activation_time[v];
            if (t >= 0 && t <= horizon) {
              local[groups.GroupOf(v)][t] += 1.0;
            }
          }
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        for (int g = 0; g < k; ++g) {
          for (int t = 0; t <= horizon; ++t) {
            curves.cumulative[g][t] += local[g][t];
          }
        }
      });

  // New activations -> cumulative counts, averaged over worlds.
  const double scale = 1.0 / options.num_worlds;
  for (int g = 0; g < k; ++g) {
    double running = 0.0;
    for (int t = 0; t <= horizon; ++t) {
      running += curves.cumulative[g][t] * scale;
      curves.cumulative[g][t] = running;
    }
  }
  return curves;
}

}  // namespace tcim
