// WorldEnsemble — materialized live-edge worlds, the shareable asset behind
// a reusable solve session (api/engine.h).
//
// WorldSampler (sim/live_edge.h) makes liveness a pure hash of
// (seed, world, edge): worlds cost no memory, but every BFS/Dijkstra edge
// visit re-pays the hash, and every edge is visited whether it is live or
// not. A WorldEnsemble flips that trade: it samples all R worlds ONCE into
// per-world CSR adjacency lists of the live edges only (with their
// transmission delays), so
//
//   * traversal touches live edges only — for Independent Cascade with
//     activation probability p that is a ~1/p reduction in edges examined,
//     each examined edge now a plain array read instead of a hash;
//   * the sampled worlds become an immutable, const-query-safe object that
//     any number of per-solve oracle cursors can share concurrently.
//
// Live-edge order within a node equals the graph's out-edge order, so a
// traversal over an ensemble visits nodes in exactly the same order as the
// equivalent hash-on-the-fly traversal — oracles produce bit-identical
// results with and without an ensemble (tested in
// tests/world_ensemble_test.cc).
//
// An ensemble is DEADLINE-PARAMETRIC: liveness coins are deadline-
// independent and every live edge's transmission delay (its per-edge
// arrival step) is recorded at build time, so the oracle cursors over it
// (sim/influence_oracle.h, sim/arrival_oracle.h) apply any effective
// deadline τ' at query time — one cached build answers every deadline of a
// sweep. The only caveat is delay truncation: stored delays are capped at
// delay_cap, so horizon-bounded traversals are exact for any τ' with
// delay_cap > τ' (DeadlineExact below). The default cap is "uncapped", i.e.
// exact for every deadline.

#ifndef TCIM_SIM_WORLD_ENSEMBLE_H_
#define TCIM_SIM_WORLD_ENSEMBLE_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "graph/graph.h"
#include "sim/live_edge.h"
#include "sim/temporal.h"

namespace tcim {

struct WorldEnsembleOptions {
  int num_worlds = 200;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  uint64_t seed = 0x9b97f4a7c15ull;
  // Transmission delays to materialize alongside each live edge; Unit()
  // stores 1 everywhere (classic IC / the montecarlo oracle, which ignores
  // delays).
  DelaySampler delays = DelaySampler::Unit();
  // Delays are stored capped at this value. Horizon-bounded traversals
  // (sim/arrival_oracle.h) never distinguish delays beyond horizon + 1, so
  // an ensemble built with delay_cap >= horizon + 1 is exact for them.
  int delay_cap = std::numeric_limits<int32_t>::max();
  // Worker pool for the (parallel-over-worlds) build; nullptr uses
  // ThreadPool::Default().
  ThreadPool* pool = nullptr;
};

class WorldEnsemble {
 public:
  // One live edge as seen from its source in a fixed world.
  struct LiveEdge {
    NodeId target = 0;
    int32_t delay = 1;
  };

  // Samples every world eagerly; `graph` must outlive the ensemble.
  WorldEnsemble(const Graph* graph, const WorldEnsembleOptions& options);

  WorldEnsemble(const WorldEnsemble&) = delete;
  WorldEnsemble& operator=(const WorldEnsemble&) = delete;

  const Graph& graph() const { return *graph_; }
  int num_worlds() const { return options_.num_worlds; }
  DiffusionModel model() const { return options_.model; }
  uint64_t seed() const { return options_.seed; }
  const DelaySampler& delays() const { return options_.delays; }
  int delay_cap() const { return options_.delay_cap; }

  // True when a traversal bounded by `deadline` sees exactly the delays a
  // cap-free build would have stored: any transmission longer than the
  // deadline is indistinguishable from "too late" either way.
  bool DeadlineExact(int deadline) const {
    return options_.delay_cap > deadline;
  }

  // The live out-edges of `v` in `world`, in graph out-edge order.
  std::span<const LiveEdge> OutEdges(uint32_t world, NodeId v) const {
    TCIM_DCHECK(world < static_cast<uint32_t>(options_.num_worlds));
    TCIM_DCHECK(v >= 0 && v < graph_->num_nodes());
    const size_t base =
        static_cast<size_t>(world) * (graph_->num_nodes() + 1);
    const uint64_t begin = offsets_[base + v];
    const uint64_t end = offsets_[base + v + 1];
    return {edges_.data() + begin, static_cast<size_t>(end - begin)};
  }

  // Live edges summed over all worlds.
  uint64_t total_live_edges() const { return edges_.size(); }

  // Actual heap footprint of the materialized arrays, measured the same
  // way as RrSketch::ApproxBytes (allocated capacity of every owned
  // array): the two backend kinds compete in ONE unified byte budget
  // (api/engine.h max_ensemble_bytes, EngineRegistry's global budget), so
  // their accounting must be directly comparable.
  size_t ApproxBytes() const {
    return edges_.capacity() * sizeof(LiveEdge) +
           offsets_.capacity() * sizeof(uint64_t);
  }

  // Expected footprint of an ensemble BEFORE building it, so callers can
  // gate materialization (api/engine.h's max_ensemble_bytes). IC uses the
  // sum of edge probabilities; LT has at most one live in-edge per node.
  static size_t EstimateBytes(const Graph& graph, DiffusionModel model,
                              int num_worlds);

 private:
  const Graph* graph_;
  WorldEnsembleOptions options_;
  // offsets_[world * (n + 1) + v] .. [.. + v + 1]: range of v's live
  // out-edges of `world` in edges_.
  std::vector<uint64_t> offsets_;
  std::vector<LiveEdge> edges_;
};

}  // namespace tcim

#endif  // TCIM_SIM_WORLD_ENSEMBLE_H_
