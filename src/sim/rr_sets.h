// Time-critical, group-aware reverse-reachable (RR) sketches.
//
// A scalable alternative to the stateful Monte-Carlo oracle (Borgs et al. /
// Tang et al. RIS technique, adapted to the deadline and to groups):
//
//   * an RR set for root v is every node that reaches v within τ hops over
//     the live edges of one world (reverse BFS over in-edges, flipping the
//     SAME per-edge coins as forward simulation — see sim/live_edge.h);
//   * P[v activated within τ | seeds S] = P[S hits RR(v)], hence with R_i
//     roots drawn uniformly from group V_i,
//       f̂_τ(S; V_i) = |V_i| · (#hit sets with roots in V_i) / R_i ;
//   * seed selection is weighted max-coverage over the sketch — plain for
//     P1, through a concave wrapper for P4, and per-group quota for P6.
//
// The sketch is DEADLINE-PARAMETRIC: the reverse BFS records every member's
// hop distance to its root, so one sketch built at deadline τ answers any
// effective deadline τ' ≤ τ exactly — the τ'-bounded RR set is precisely
// {members with hop ≤ τ'}, over the same per-set coins a fresh τ' build
// would flip (property-tested in tests/rr_sets_test.cc). Queries take the
// effective deadline through RrSelectOptions / an explicit argument;
// kNoDeadline (the default) means "the full build deadline". This is what
// lets a deadline sweep (api/engine.h SolveSweep) serve every τ' off one
// cached build.
//
// This module is the paper's "future work: developing new optimization
// methods" direction and is benchmarked against the MC oracle in
// bench/bench_ablation.cc (agreement is property-tested).

#ifndef TCIM_SIM_RR_SETS_H_
#define TCIM_SIM_RR_SETS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/graph.h"
#include "graph/groups.h"
#include "sim/cascade.h"
#include "sim/influence_oracle.h"
#include "sim/live_edge.h"

namespace tcim {

struct RrSketchOptions {
  // RR sets per group (roots are sampled uniformly inside each group, so
  // minority-group estimates do not starve).
  int sets_per_group = 5000;
  int deadline = kNoDeadline;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  uint64_t seed = 0x51ce1ull;
  ThreadPool* pool = nullptr;
};

// Per-query knobs of the sketch's selection / estimation entry points.
struct RrSelectOptions {
  // Effective deadline τ': only members within τ' hops of their root count
  // as covering. Clamped to the sketch's build deadline; kNoDeadline (the
  // default) uses the full build deadline.
  int deadline = kNoDeadline;
  // Restrict selection to these nodes; nullptr allows every node.
  // Duplicates are tolerated (each node is considered once). Must outlive
  // the call.
  const std::vector<NodeId>* candidates = nullptr;
};

// IMM-style adaptive sketch sizing (Tang, Shi, Xiao, SIGMOD'15, adapted to
// the time-critical setting): returns a per-group set count sufficient for
// a (1−1/e−ε) guarantee at budget B with probability 1−δ, by iteratively
// halving a lower-bound guess for OPT and probing it with greedy on
// progressively larger sketches. Far fewer sets than a conservative fixed
// count when OPT is large; more when influence is scarce.
int ComputeAdaptiveSetsPerGroup(const Graph& graph,
                                const GroupAssignment& groups, int budget,
                                double epsilon, double delta,
                                const RrSketchOptions& base_options);

class RrSketch {
 public:
  // Builds the sketch; `graph` and `groups` must outlive it.
  RrSketch(const Graph* graph, const GroupAssignment* groups,
           const RrSketchOptions& options);

  int num_sets() const { return static_cast<int>(set_members_.size()); }
  int num_groups() const { return groups_->num_groups(); }
  const RrSketchOptions& options() const { return options_; }

  // The deadline the reverse BFS ran to; every effective deadline τ' up to
  // this value is answered exactly by hop filtering.
  int build_deadline() const { return options_.deadline; }

  // Estimated f̂_τ'(S; V_i) for every group at the effective deadline
  // `select.deadline` (candidates are ignored here).
  GroupVector EstimateGroupCoverage(const std::vector<NodeId>& seeds,
                                    const RrSelectOptions& select) const;
  // Back-compat shorthand at the full build deadline.
  GroupVector EstimateGroupCoverage(const std::vector<NodeId>& seeds) const {
    return EstimateGroupCoverage(seeds, RrSelectOptions());
  }

  // Greedy weighted max-coverage for Σ_i H(f_i): concavity is supplied by
  // the caller through `wrap` (identity reproduces P1, log reproduces P4).
  // Returns seeds in selection order.
  std::vector<NodeId> SelectSeedsBudget(
      int budget, const std::function<double(double)>& wrap,
      const RrSelectOptions& select = RrSelectOptions()) const;

  // Greedy for P6: grow the seed set maximizing Σ_i min(f_i/|V_i|, quota)
  // until every group's estimated normalized coverage reaches `quota` or
  // `max_seeds` is hit. Returns seeds in selection order.
  std::vector<NodeId> SelectSeedsCover(
      double quota, int max_seeds,
      const RrSelectOptions& select = RrSelectOptions()) const;

  // Members of RR set `index` (exposed for tests). members[0] is the root.
  const std::vector<NodeId>& SetMembers(int index) const {
    return set_members_[index];
  }
  // Hop distance (over live in-edges) of each member to its root, aligned
  // with SetMembers(index); the root's entry is 0.
  const std::vector<int32_t>& SetMemberHops(int index) const {
    return set_member_hops_[index];
  }
  GroupId SetRootGroup(int index) const { return set_root_group_[index]; }

  // RR-set ids whose member list contains `v` — the inverted index behind
  // both the built-in SelectSeeds* paths and the incremental RrOracle
  // adapter (sim/rr_oracle.h): a node's marginal coverage is a walk over
  // exactly these sets.
  const std::vector<int32_t>& SetsContaining(NodeId v) const {
    return sets_containing_[v];
  }
  // v's hop distance to the root of each set in SetsContaining(v), aligned
  // index-for-index: v covers set SetsContaining(v)[i] at effective
  // deadline τ' iff SetsContainingHops(v)[i] <= τ'.
  const std::vector<int32_t>& SetsContainingHops(NodeId v) const {
    return sets_containing_hops_[v];
  }

  // Per-group scaling factor |V_i| / R_i: one newly hit set with a root in
  // group g is worth this many expected influenced nodes.
  double GroupWeight(GroupId g) const { return group_weight_[g]; }

  // Actual heap footprint of the sketch arrays (members + hop annotations
  // + inverted index), measured the same way as
  // WorldEnsemble::ApproxBytes (allocated capacity of every owned array):
  // sketch bytes count toward the Engine's unified max_ensemble_bytes
  // budget and the EngineRegistry's cross-tenant budget, so the two
  // backend kinds' accounting must be directly comparable.
  size_t ApproxBytes() const;

 private:
  // counts[v*k + g]: uncovered RR sets of group g containing v within
  // `deadline` hops — the state both SelectSeeds* greedy loops start from.
  std::vector<int32_t> BuildFilteredCounts(int32_t deadline) const;

  // Marks every ≤-deadline set of `chosen` covered, crediting group_cov
  // and decrementing counts for each covered set's ≤-deadline members
  // (only those were ever counted).
  void CoverAndDecrement(NodeId chosen, int32_t deadline,
                         std::vector<uint8_t>& covered, GroupVector& group_cov,
                         std::vector<int32_t>& counts) const;

  const Graph* graph_;
  const GroupAssignment* groups_;
  RrSketchOptions options_;

  std::vector<std::vector<NodeId>> set_members_;
  // set_member_hops_[s][i]: hop distance of set_members_[s][i] to root s.
  std::vector<std::vector<int32_t>> set_member_hops_;
  std::vector<GroupId> set_root_group_;
  std::vector<double> group_weight_;
  // Inverted index: sets_containing_[v] lists RR-set ids that contain v;
  // sets_containing_hops_[v] carries v's hop to each of those roots.
  std::vector<std::vector<int32_t>> sets_containing_;
  std::vector<std::vector<int32_t>> sets_containing_hops_;
};

}  // namespace tcim

#endif  // TCIM_SIM_RR_SETS_H_
