#include "sim/arrival_oracle.h"

#include <algorithm>
#include <mutex>

#include "common/check.h"

namespace tcim {

ArrivalOracle::ArrivalOracle(const Graph* graph, const GroupAssignment* groups,
                             TemporalWeight weight, DelaySampler delays,
                             const ArrivalOracleOptions& options)
    : graph_(graph),
      groups_(groups),
      weight_(std::move(weight)),
      delays_(delays),
      options_(options),
      sampler_(graph, options.model, options.seed),
      worlds_(options.worlds.get()) {
  TCIM_CHECK(graph != nullptr && groups != nullptr);
  TCIM_CHECK(graph->num_nodes() == groups->num_nodes())
      << "graph/groups node count mismatch";
  TCIM_CHECK(options.num_worlds > 0) << "need at least one world";
  if (worlds_ != nullptr) {
    TCIM_CHECK(&worlds_->graph() == graph &&
               worlds_->num_worlds() == options.num_worlds &&
               worlds_->model() == options.model &&
               worlds_->seed() == options.seed)
        << "world ensemble was built for a different oracle configuration";
    TCIM_CHECK(worlds_->delays().is_unit() == delays_.is_unit() &&
               worlds_->delays().meeting_probability() ==
                   delays_.meeting_probability() &&
               (delays_.is_unit() ||
                worlds_->delays().seed() == delays_.seed()))
        << "world ensemble carries a different delay distribution";
    // Delays were stored capped; any cap beyond the horizon is equivalent
    // (a transmission longer than the horizon can never matter).
    TCIM_CHECK(worlds_->DeadlineExact(weight_.horizon()))
        << "world ensemble delay_cap is below this oracle's horizon";
  }
  arrival_.assign(
      static_cast<size_t>(options.num_worlds) * graph->num_nodes(),
      Unreached());
  group_coverage_.assign(groups->num_groups(), 0.0);
}

ThreadPool& ArrivalOracle::pool() const {
  return options_.pool != nullptr ? *options_.pool : ThreadPool::Default();
}

int ArrivalOracle::ArrivalTime(uint32_t world, NodeId v) const {
  TCIM_CHECK(world < static_cast<uint32_t>(options_.num_worlds));
  TCIM_CHECK(v >= 0 && v < graph_->num_nodes());
  const int32_t t =
      arrival_[static_cast<size_t>(world) * graph_->num_nodes() + v];
  return t >= Unreached() ? -1 : t;
}

GroupVector ArrivalOracle::EvaluateCandidate(NodeId candidate, bool commit) {
  TCIM_CHECK(candidate >= 0 && candidate < graph_->num_nodes())
      << "candidate out of range: " << candidate;
  const NodeId n = graph_->num_nodes();
  const int k = groups_->num_groups();
  const int horizon = weight_.horizon();
  const int32_t unreached = Unreached();

  GroupVector gain(k, 0.0);
  std::mutex merge_mutex;
  pool().ParallelFor(
      static_cast<size_t>(options_.num_worlds),
      [&](size_t begin, size_t end) {
        DialScratch scratch;
        scratch.dist.assign(n, 0);
        scratch.stamp.assign(n, 0);
        scratch.buckets.assign(horizon + 1, {});
        GroupVector local(k, 0.0);

        for (size_t world = begin; world < end; ++world) {
          const uint32_t w = static_cast<uint32_t>(world);
          int32_t* arrival =
              arrival_.data() + static_cast<size_t>(world) * n;
          ++scratch.epoch;
          const int32_t epoch = scratch.epoch;

          // Dial's algorithm from the candidate: integer delays >= 1,
          // bounded by the weight horizon. Buckets were drained by the
          // previous world, so they start empty.
          scratch.dist[candidate] = 0;
          scratch.stamp[candidate] = epoch;
          scratch.buckets[0].push_back(candidate);

          for (int t = 0; t <= horizon; ++t) {
            auto& bucket = scratch.buckets[t];
            for (size_t i = 0; i < bucket.size(); ++i) {
              const NodeId v = bucket[i];
              // Stale entry: v was settled at a smaller time already.
              if (scratch.stamp[v] != epoch || scratch.dist[v] != t) continue;
              scratch.dist[v] = t - 1;  // mark settled (dist < t sentinel)

              // Candidate reaches v at time t; credit any improvement
              // over the committed arrival time.
              const int32_t old_arrival = arrival[v];
              if (t < old_arrival) {
                const double old_weight =
                    old_arrival >= unreached ? 0.0 : weight_(old_arrival);
                local[groups_->GroupOf(v)] += weight_(t) - old_weight;
                if (commit) arrival[v] = t;
              }

              if (worlds_ != nullptr) {
                // Materialized path: live edges with stored delays only.
                for (const WorldEnsemble::LiveEdge& edge :
                     worlds_->OutEdges(w, v)) {
                  const int nt = t + edge.delay;
                  if (nt > horizon) continue;
                  const NodeId target = edge.target;
                  if (scratch.stamp[target] == epoch &&
                      scratch.dist[target] <= nt) {
                    continue;  // already settled or tentatively closer
                  }
                  scratch.stamp[target] = epoch;
                  scratch.dist[target] = nt;
                  scratch.buckets[nt].push_back(target);
                }
                continue;
              }
              for (const AdjacentEdge& edge : graph_->OutEdges(v)) {
                if (!sampler_.IsLive(w, edge.edge_id)) continue;
                const int nt =
                    t + delays_.Delay(w, edge.edge_id, horizon + 1);
                if (nt > horizon) continue;
                const NodeId target = edge.node;
                if (scratch.stamp[target] == epoch &&
                    scratch.dist[target] <= nt) {
                  continue;  // already settled or tentatively closer
                }
                scratch.stamp[target] = epoch;
                scratch.dist[target] = nt;
                scratch.buckets[nt].push_back(target);
              }
            }
            bucket.clear();
          }
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        for (int g = 0; g < k; ++g) gain[g] += local[g];
      });
  const double scale = 1.0 / options_.num_worlds;
  for (double& g : gain) g *= scale;
  return gain;
}

GroupVector ArrivalOracle::MarginalGain(NodeId candidate) {
  return EvaluateCandidate(candidate, /*commit=*/false);
}

GroupVector ArrivalOracle::AddSeed(NodeId candidate) {
  GroupVector gain = EvaluateCandidate(candidate, /*commit=*/true);
  seeds_.push_back(candidate);
  for (int g = 0; g < num_groups(); ++g) group_coverage_[g] += gain[g];
  return gain;
}

void ArrivalOracle::Reset() {
  seeds_.clear();
  std::fill(arrival_.begin(), arrival_.end(), Unreached());
  std::fill(group_coverage_.begin(), group_coverage_.end(), 0.0);
}

}  // namespace tcim
