#include "sim/rr_oracle.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace tcim {

RrOracle::RrOracle(const Graph* graph, const GroupAssignment* groups,
                   std::shared_ptr<const RrSketch> sketch,
                   int effective_deadline)
    : graph_(graph), groups_(groups), sketch_(std::move(sketch)) {
  TCIM_CHECK(graph_ != nullptr && groups_ != nullptr && sketch_ != nullptr);
  TCIM_CHECK(graph_->num_nodes() == groups_->num_nodes());
  TCIM_CHECK(sketch_->num_groups() == groups_->num_groups());
  TCIM_CHECK(effective_deadline >= 0)
      << "effective deadline must be >= 0 (kNoDeadline for the full build)";
  effective_deadline_ = static_cast<int32_t>(
      std::min(effective_deadline, sketch_->build_deadline()));
  covered_.assign(sketch_->num_sets(), 0);
  group_coverage_.assign(groups_->num_groups(), 0.0);
}

GroupVector RrOracle::EvaluateCandidate(NodeId candidate, bool commit) {
  TCIM_CHECK(candidate >= 0 && candidate < graph_->num_nodes());
  GroupVector gain(groups_->num_groups(), 0.0);
  const std::vector<int32_t>& sets = sketch_->SetsContaining(candidate);
  const std::vector<int32_t>& hops = sketch_->SetsContainingHops(candidate);
  for (size_t i = 0; i < sets.size(); ++i) {
    if (hops[i] > effective_deadline_) continue;
    const int32_t set_id = sets[i];
    if (covered_[set_id]) continue;
    const GroupId g = sketch_->SetRootGroup(set_id);
    gain[g] += sketch_->GroupWeight(g);
    if (commit) covered_[set_id] = 1;
  }
  if (commit) {
    seeds_.push_back(candidate);
    for (GroupId g = 0; g < groups_->num_groups(); ++g) {
      group_coverage_[g] += gain[g];
    }
  }
  return gain;
}

GroupVector RrOracle::MarginalGain(NodeId candidate) {
  return EvaluateCandidate(candidate, /*commit=*/false);
}

GroupVector RrOracle::AddSeed(NodeId candidate) {
  return EvaluateCandidate(candidate, /*commit=*/true);
}

void RrOracle::Reset() {
  seeds_.clear();
  covered_.assign(covered_.size(), 0);
  group_coverage_.assign(group_coverage_.size(), 0.0);
}

}  // namespace tcim
