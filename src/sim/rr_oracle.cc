#include "sim/rr_oracle.h"

#include <utility>

#include "common/check.h"

namespace tcim {

RrOracle::RrOracle(const Graph* graph, const GroupAssignment* groups,
                   std::shared_ptr<const RrSketch> sketch)
    : graph_(graph), groups_(groups), sketch_(std::move(sketch)) {
  TCIM_CHECK(graph_ != nullptr && groups_ != nullptr && sketch_ != nullptr);
  TCIM_CHECK(graph_->num_nodes() == groups_->num_nodes());
  TCIM_CHECK(sketch_->num_groups() == groups_->num_groups());
  covered_.assign(sketch_->num_sets(), 0);
  group_coverage_.assign(groups_->num_groups(), 0.0);
}

GroupVector RrOracle::EvaluateCandidate(NodeId candidate, bool commit) {
  TCIM_CHECK(candidate >= 0 && candidate < graph_->num_nodes());
  GroupVector gain(groups_->num_groups(), 0.0);
  for (const int32_t set_id : sketch_->SetsContaining(candidate)) {
    if (covered_[set_id]) continue;
    const GroupId g = sketch_->SetRootGroup(set_id);
    gain[g] += sketch_->GroupWeight(g);
    if (commit) covered_[set_id] = 1;
  }
  if (commit) {
    seeds_.push_back(candidate);
    for (GroupId g = 0; g < groups_->num_groups(); ++g) {
      group_coverage_[g] += gain[g];
    }
  }
  return gain;
}

GroupVector RrOracle::MarginalGain(NodeId candidate) {
  return EvaluateCandidate(candidate, /*commit=*/false);
}

GroupVector RrOracle::AddSeed(NodeId candidate) {
  return EvaluateCandidate(candidate, /*commit=*/true);
}

void RrOracle::Reset() {
  seeds_.clear();
  covered_.assign(covered_.size(), 0);
  group_coverage_.assign(group_coverage_.size(), 0.0);
}

}  // namespace tcim
