// IMM-style adaptive set-count computation for RrSketch.
//
// Follows the two-phase structure of Tang–Shi–Xiao (SIGMOD'15): phase 1
// searches a lower bound LB for OPT_B by testing guesses x = n/2^i with a
// sketch of θ_i = λ' / x sets; phase 2 sizes the final sketch as
// θ = λ* / LB. Constants use the standard λ', λ* with ln C(n, B)
// approximated by B·ln n (the usual upper bound). The guarantee transfers
// to the time-critical setting because a τ-bounded RR set is still an
// unbiased reachability witness for the τ-bounded process.

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "sim/rr_sets.h"

namespace tcim {

namespace {

// Greedy max-coverage value (expected influenced nodes) of the best
// B-seed set on the given sketch.
double GreedyCoverageOnSketch(const RrSketch& sketch, int budget) {
  const std::vector<NodeId> seeds =
      sketch.SelectSeedsBudget(budget, [](double z) { return z; });
  return GroupVectorTotal(sketch.EstimateGroupCoverage(seeds));
}

}  // namespace

int ComputeAdaptiveSetsPerGroup(const Graph& graph,
                                const GroupAssignment& groups, int budget,
                                double epsilon, double delta,
                                const RrSketchOptions& base_options) {
  TCIM_CHECK(budget >= 1);
  TCIM_CHECK(epsilon > 0.0 && epsilon < 1.0) << "epsilon must be in (0,1)";
  TCIM_CHECK(delta > 0.0 && delta < 1.0) << "delta must be in (0,1)";
  const double n = static_cast<double>(graph.num_nodes());
  TCIM_CHECK(n >= 2);
  const int k = groups.num_groups();

  // ln C(n, B) <= B ln n; log2(n) levels in the search.
  const double log_choose = budget * std::log(n);
  const double log_levels = std::log(std::max(2.0, std::log2(n)));
  const double eps_prime = epsilon * std::sqrt(2.0);

  // λ' of IMM phase 1.
  const double lambda_prime =
      (2.0 + 2.0 / 3.0 * eps_prime) *
      (log_choose + std::log(1.0 / delta) + log_levels) * n /
      (eps_prime * eps_prime);

  // Phase 1: halving search for a lower bound on OPT.
  double lower_bound = 1.0;
  const int max_level = std::max(1, static_cast<int>(std::log2(n)) - 1);
  for (int level = 1; level <= max_level; ++level) {
    const double x = n / std::pow(2.0, level);
    const double theta = lambda_prime / x;
    RrSketchOptions options = base_options;
    options.sets_per_group = std::max(
        1, static_cast<int>(std::ceil(theta / k)));
    // Decorrelate each level's sketch from the final one.
    options.seed = HashCombine(base_options.seed, 0x1e7e1ull + level);
    RrSketch sketch(&graph, &groups, options);
    const double coverage = GreedyCoverageOnSketch(sketch, budget);
    if (coverage >= (1.0 + eps_prime) * x) {
      lower_bound = coverage / (1.0 + eps_prime);
      break;
    }
    lower_bound = std::max(lower_bound, static_cast<double>(budget));
  }

  // Phase 2: λ* and the final count.
  const double alpha = std::sqrt(std::log(1.0 / delta));
  const double beta = std::sqrt((1.0 - 1.0 / M_E) *
                                (log_choose + std::log(1.0 / delta)));
  const double lambda_star = 2.0 * n *
                             std::pow((1.0 - 1.0 / M_E) * alpha + beta, 2.0) /
                             (epsilon * epsilon);
  const double theta = lambda_star / lower_bound;
  return std::max(1, static_cast<int>(std::ceil(theta / k)));
}

}  // namespace tcim
