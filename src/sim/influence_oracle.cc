#include "sim/influence_oracle.h"

#include <algorithm>
#include <mutex>

#include "common/check.h"

namespace tcim {

InfluenceOracle::InfluenceOracle(const Graph* graph,
                                 const GroupAssignment* groups,
                                 const OracleOptions& options)
    : graph_(graph),
      groups_(groups),
      options_(options),
      sampler_(graph, options.model, options.seed),
      worlds_(options.worlds.get()) {
  TCIM_CHECK(graph != nullptr && groups != nullptr);
  TCIM_CHECK(graph->num_nodes() == groups->num_nodes())
      << "graph/groups node count mismatch";
  TCIM_CHECK(options.num_worlds > 0) << "need at least one world";
  TCIM_CHECK(options.deadline >= 0) << "deadline must be >= 0 (or kNoDeadline)";
  if (worlds_ != nullptr) {
    TCIM_CHECK(&worlds_->graph() == graph &&
               worlds_->num_worlds() == options.num_worlds &&
               worlds_->model() == options.model &&
               worlds_->seed() == options.seed)
        << "world ensemble was built for a different oracle configuration";
  }
  words_per_world_ = (static_cast<size_t>(graph->num_nodes()) + 63) / 64;
  covered_.assign(words_per_world_ * options.num_worlds, 0);
  group_coverage_.assign(groups->num_groups(), 0.0);
}

ThreadPool& InfluenceOracle::pool() const {
  return options_.pool != nullptr ? *options_.pool : ThreadPool::Default();
}

void InfluenceOracle::CollectNewlyCovered(uint32_t world, NodeId candidate,
                                          TraversalScratch& scratch) const {
  const NodeId n = graph_->num_nodes();
  if (scratch.stamp.size() != static_cast<size_t>(n)) {
    scratch.stamp.assign(n, 0);
    scratch.epoch = 0;
  }
  // A fresh epoch invalidates all previous stamps in O(1); wraparound resets.
  if (++scratch.epoch == INT32_MAX) {
    scratch.stamp.assign(n, 0);
    scratch.epoch = 1;
  }
  const int32_t epoch = scratch.epoch;
  scratch.queue.clear();
  scratch.reached.clear();

  // τ-bounded BFS over live edges; depth tracked via level boundaries.
  scratch.stamp[candidate] = epoch;
  scratch.queue.push_back(candidate);
  if (!IsCovered(world, candidate)) scratch.reached.push_back(candidate);

  size_t level_begin = 0;
  size_t level_end = scratch.queue.size();
  int depth = 0;
  while (level_begin < level_end && depth < options_.deadline) {
    ++depth;
    for (size_t i = level_begin; i < level_end; ++i) {
      const NodeId v = scratch.queue[i];
      if (worlds_ != nullptr) {
        // Materialized path: only live edges, no per-edge coin hashing.
        for (const WorldEnsemble::LiveEdge& edge : worlds_->OutEdges(world, v)) {
          if (scratch.stamp[edge.target] == epoch) continue;
          scratch.stamp[edge.target] = epoch;
          scratch.queue.push_back(edge.target);
          if (!IsCovered(world, edge.target)) {
            scratch.reached.push_back(edge.target);
          }
        }
        continue;
      }
      for (const AdjacentEdge& edge : graph_->OutEdges(v)) {
        if (scratch.stamp[edge.node] == epoch) continue;
        if (!sampler_.IsLive(world, edge.edge_id)) continue;
        scratch.stamp[edge.node] = epoch;
        scratch.queue.push_back(edge.node);
        if (!IsCovered(world, edge.node)) {
          scratch.reached.push_back(edge.node);
        }
      }
    }
    level_begin = level_end;
    level_end = scratch.queue.size();
  }
}

GroupVector InfluenceOracle::EvaluateCandidate(NodeId candidate, bool commit) {
  TCIM_CHECK(candidate >= 0 && candidate < graph_->num_nodes())
      << "candidate out of range: " << candidate;
  const int k = num_groups();
  GroupVector gain(k, 0.0);
  std::mutex merge_mutex;
  pool().ParallelFor(
      static_cast<size_t>(options_.num_worlds),
      [&](size_t begin, size_t end) {
        TraversalScratch scratch;
        GroupVector local(k, 0.0);
        for (size_t world = begin; world < end; ++world) {
          const uint32_t w = static_cast<uint32_t>(world);
          CollectNewlyCovered(w, candidate, scratch);
          for (const NodeId v : scratch.reached) {
            local[groups_->GroupOf(v)] += 1.0;
            // Different worlds own disjoint 64-bit words (words_per_world_
            // stride), so concurrent commits are race-free.
            if (commit) SetCovered(w, v);
          }
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        for (int g = 0; g < k; ++g) gain[g] += local[g];
      });
  const double scale = 1.0 / options_.num_worlds;
  for (double& g : gain) g *= scale;
  return gain;
}

GroupVector InfluenceOracle::MarginalGain(NodeId candidate) {
  // commit=false leaves all logical state unchanged.
  return EvaluateCandidate(candidate, /*commit=*/false);
}

GroupVector InfluenceOracle::AddSeed(NodeId candidate) {
  GroupVector gain = EvaluateCandidate(candidate, /*commit=*/true);
  seeds_.push_back(candidate);
  for (int g = 0; g < num_groups(); ++g) group_coverage_[g] += gain[g];
  return gain;
}

void InfluenceOracle::Reset() {
  seeds_.clear();
  std::fill(covered_.begin(), covered_.end(), 0);
  std::fill(group_coverage_.begin(), group_coverage_.end(), 0.0);
}

GroupVector InfluenceOracle::EstimateGroupCoverage(
    const std::vector<NodeId>& set) const {
  const int k = num_groups();
  const NodeId n = graph_->num_nodes();
  GroupVector coverage(k, 0.0);
  std::mutex merge_mutex;
  pool().ParallelFor(
      static_cast<size_t>(options_.num_worlds),
      [&](size_t begin, size_t end) {
        TraversalScratch scratch;
        scratch.stamp.assign(n, 0);
        GroupVector local(k, 0.0);
        for (size_t world = begin; world < end; ++world) {
          const uint32_t w = static_cast<uint32_t>(world);
          if (++scratch.epoch == INT32_MAX) {
            scratch.stamp.assign(n, 0);
            scratch.epoch = 1;
          }
          const int32_t epoch = scratch.epoch;
          scratch.queue.clear();
          // Multi-source τ-bounded BFS from the whole set, independent of
          // the committed covered state.
          for (const NodeId s : set) {
            TCIM_CHECK(s >= 0 && s < n) << "seed out of range";
            if (scratch.stamp[s] != epoch) {
              scratch.stamp[s] = epoch;
              scratch.queue.push_back(s);
              local[groups_->GroupOf(s)] += 1.0;
            }
          }
          size_t level_begin = 0;
          size_t level_end = scratch.queue.size();
          int depth = 0;
          while (level_begin < level_end && depth < options_.deadline) {
            ++depth;
            for (size_t i = level_begin; i < level_end; ++i) {
              const NodeId v = scratch.queue[i];
              if (worlds_ != nullptr) {
                for (const WorldEnsemble::LiveEdge& edge :
                     worlds_->OutEdges(w, v)) {
                  if (scratch.stamp[edge.target] == epoch) continue;
                  scratch.stamp[edge.target] = epoch;
                  scratch.queue.push_back(edge.target);
                  local[groups_->GroupOf(edge.target)] += 1.0;
                }
                continue;
              }
              for (const AdjacentEdge& edge : graph_->OutEdges(v)) {
                if (scratch.stamp[edge.node] == epoch) continue;
                if (!sampler_.IsLive(w, edge.edge_id)) continue;
                scratch.stamp[edge.node] = epoch;
                scratch.queue.push_back(edge.node);
                local[groups_->GroupOf(edge.node)] += 1.0;
              }
            }
            level_begin = level_end;
            level_end = scratch.queue.size();
          }
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        for (int g = 0; g < k; ++g) coverage[g] += local[g];
      });
  const double scale = 1.0 / options_.num_worlds;
  for (double& c : coverage) c *= scale;
  return coverage;
}

}  // namespace tcim
