#include "sim/live_edge.h"

#include "common/check.h"

namespace tcim {

const char* DiffusionModelName(DiffusionModel model) {
  switch (model) {
    case DiffusionModel::kIndependentCascade:
      return "IC";
    case DiffusionModel::kLinearThreshold:
      return "LT";
  }
  return "UNKNOWN";
}

Result<DiffusionModel> ParseDiffusionModel(const std::string& text) {
  if (text == "ic" || text == "IC") return DiffusionModel::kIndependentCascade;
  if (text == "lt" || text == "LT") return DiffusionModel::kLinearThreshold;
  return InvalidArgumentError("unknown diffusion model \"" + text +
                              "\"; expected ic or lt");
}

WorldSampler::WorldSampler(const Graph* graph, DiffusionModel model,
                           uint64_t seed)
    : graph_(graph), model_(model), seed_(seed) {
  TCIM_CHECK(graph != nullptr);
}

EdgeId WorldSampler::LinearThresholdChoice(uint32_t world, NodeId node) const {
  TCIM_CHECK(model_ == DiffusionModel::kLinearThreshold)
      << "LinearThresholdChoice is only defined for the LT model";
  const double threshold = NodeCoin(world, node);
  double cumulative = 0.0;
  for (const AdjacentEdge& in_edge : graph_->InEdges(node)) {
    cumulative += in_edge.probability;
    if (threshold < cumulative) return in_edge.edge_id;
  }
  return -1;  // Σ weights < 1 and the threshold fell in the "no edge" mass.
}

}  // namespace tcim
