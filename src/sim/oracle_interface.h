// Abstract interface for stateful per-group coverage oracles.
//
// The greedy engine (core/greedy.h) only needs four operations: query a
// candidate's marginal per-group gain, commit a seed, reset, and read the
// current per-group coverage. Two backends implement it:
//
//   * InfluenceOracle (sim/influence_oracle.h) — the step utility
//     1(t_v ≤ τ) of the paper, as bit-packed covered sets;
//   * ArrivalOracle (sim/arrival_oracle.h) — general nonincreasing
//     temporal weights w(t) (e.g. exponential discounting, the paper's
//     future-work direction) over earliest arrival times, with optional
//     per-edge transmission delays (the IC-M model of Chen et al. 2012).

#ifndef TCIM_SIM_ORACLE_INTERFACE_H_
#define TCIM_SIM_ORACLE_INTERFACE_H_

#include <vector>

#include "graph/graph.h"
#include "graph/groups.h"

namespace tcim {

// Per-group expected-weight vector, indexed by GroupId.
using GroupVector = std::vector<double>;

// Σ_i vec[i].
double GroupVectorTotal(const GroupVector& vec);

class GroupCoverageOracle {
 public:
  virtual ~GroupCoverageOracle() = default;

  virtual const Graph& graph() const = 0;
  virtual const GroupAssignment& groups() const = 0;
  int num_groups() const { return groups().num_groups(); }

  // Seeds committed so far, in insertion order.
  virtual const std::vector<NodeId>& seeds() const = 0;

  // Estimated per-group utility of the committed seed set.
  virtual const GroupVector& group_coverage() const = 0;
  double total_coverage() const { return GroupVectorTotal(group_coverage()); }

  // Estimated per-group marginal utility of adding `candidate`. Must not
  // change logical state.
  virtual GroupVector MarginalGain(NodeId candidate) = 0;

  // Commits `candidate`; returns its realized per-group marginal utility.
  virtual GroupVector AddSeed(NodeId candidate) = 0;

  // Clears the committed seed set.
  virtual void Reset() = 0;
};

}  // namespace tcim

#endif  // TCIM_SIM_ORACLE_INTERFACE_H_
