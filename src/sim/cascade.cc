#include "sim/cascade.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "common/string_util.h"

namespace tcim {

int CascadeResult::CountActivatedBy(int deadline) const {
  int count = 0;
  for (const int t : activation_time) {
    if (t >= 0 && t <= deadline) ++count;
  }
  return count;
}

std::vector<int> CascadeResult::ActivationHistogram() const {
  int max_time = -1;
  for (const int t : activation_time) max_time = std::max(max_time, t);
  std::vector<int> histogram(max_time + 1, 0);
  for (const int t : activation_time) {
    if (t >= 0) histogram[t]++;
  }
  return histogram;
}

std::string CascadeToDot(const CascadeResult& result,
                         const GroupAssignment* groups) {
  // A small qualitative palette cycled by group id.
  static const char* const kColors[] = {"lightblue", "salmon",  "palegreen",
                                        "gold",      "orchid", "gray80"};
  std::string out = "digraph cascade {\n  rankdir=LR;\n";
  for (NodeId v = 0; v < static_cast<NodeId>(result.activation_time.size());
       ++v) {
    const int t = result.activation_time[v];
    if (t < 0) continue;
    out += StrFormat("  n%d [label=\"%d@%d\"", v, v, t);
    if (groups != nullptr) {
      const int color_count =
          static_cast<int>(sizeof(kColors) / sizeof(kColors[0]));
      out += StrFormat(", style=filled, fillcolor=%s",
                       kColors[groups->GroupOf(v) % color_count]);
    }
    if (t == 0) out += ", shape=doublecircle";  // seeds stand out
    out += "];\n";
  }
  for (NodeId v = 0; v < static_cast<NodeId>(result.activated_by.size());
       ++v) {
    if (result.activated_by[v] >= 0) {
      out += StrFormat("  n%d -> n%d;\n", result.activated_by[v], v);
    }
  }
  out += "}\n";
  return out;
}

namespace {

// Seeds -> initial frontier; every seed activates at t = 0.
void InitializeSeeds(const Graph& graph, const std::vector<NodeId>& seeds,
                     CascadeResult* result, std::vector<NodeId>* frontier) {
  result->activation_time.assign(graph.num_nodes(), -1);
  result->activated_by.assign(graph.num_nodes(), -1);
  for (const NodeId s : seeds) {
    TCIM_CHECK(s >= 0 && s < graph.num_nodes()) << "seed out of range: " << s;
    if (result->activation_time[s] == -1) {
      result->activation_time[s] = 0;
      result->num_activated++;
      frontier->push_back(s);
    }
  }
}

}  // namespace

CascadeResult SimulateIc(const Graph& graph, const std::vector<NodeId>& seeds,
                         Rng& rng) {
  CascadeResult result;
  std::vector<NodeId> frontier;
  InitializeSeeds(graph, seeds, &result, &frontier);

  int time = 0;
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    ++time;
    next.clear();
    for (const NodeId v : frontier) {
      for (const AdjacentEdge& edge : graph.OutEdges(v)) {
        if (result.activation_time[edge.node] != -1) continue;
        if (rng.Bernoulli(edge.probability)) {
          result.activation_time[edge.node] = time;
          result.activated_by[edge.node] = v;
          result.num_activated++;
          next.push_back(edge.node);
        }
      }
    }
    frontier.swap(next);
  }
  return result;
}

CascadeResult SimulateLt(const Graph& graph, const std::vector<NodeId>& seeds,
                         Rng& rng) {
  CascadeResult result;
  std::vector<NodeId> frontier;
  InitializeSeeds(graph, seeds, &result, &frontier);

  // Random thresholds; node v activates when the accumulated weight of its
  // active in-neighbors reaches threshold[v].
  std::vector<double> threshold(graph.num_nodes());
  for (double& t : threshold) t = rng.NextDouble();
  std::vector<double> accumulated(graph.num_nodes(), 0.0);

  int time = 0;
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    ++time;
    next.clear();
    for (const NodeId v : frontier) {
      for (const AdjacentEdge& edge : graph.OutEdges(v)) {
        const NodeId w = edge.node;
        if (result.activation_time[w] != -1) continue;
        accumulated[w] += edge.probability;
        if (accumulated[w] >= threshold[w]) {
          result.activation_time[w] = time;
          result.activated_by[w] = v;  // the tipping neighbor
          result.num_activated++;
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  return result;
}

CascadeResult SimulateInWorld(const Graph& graph,
                              const std::vector<NodeId>& seeds,
                              const WorldSampler& sampler, uint32_t world,
                              int max_time) {
  CascadeResult result;
  std::vector<NodeId> frontier;
  InitializeSeeds(graph, seeds, &result, &frontier);

  int time = 0;
  std::vector<NodeId> next;
  while (!frontier.empty() && time < max_time) {
    ++time;
    next.clear();
    for (const NodeId v : frontier) {
      for (const AdjacentEdge& edge : graph.OutEdges(v)) {
        if (result.activation_time[edge.node] != -1) continue;
        if (sampler.IsLive(world, edge.edge_id)) {
          result.activation_time[edge.node] = time;
          result.activated_by[edge.node] = v;
          result.num_activated++;
          next.push_back(edge.node);
        }
      }
    }
    frontier.swap(next);
  }
  return result;
}

}  // namespace tcim
