// Cascade analytics: expected per-group arrival curves.
//
// An arrival curve is the time series F_i(t) = E[#{v ∈ V_i : t_v ≤ t}] for
// t = 0..horizon — the paper's "the majority gets influenced FASTER than
// the minority" phenomenon made quantitative (§1: "if one group of people
// gets influenced faster than other groups, it could end up exacerbating
// the inequality in information access"). The curve at t = τ equals the
// Eq. 1 utility, so curves subsume every deadline at once.

#ifndef TCIM_SIM_ANALYTICS_H_
#define TCIM_SIM_ANALYTICS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/groups.h"
#include "sim/influence_oracle.h"

namespace tcim {

struct ArrivalCurves {
  // cumulative[g][t]: expected count of group-g nodes activated by time t.
  std::vector<std::vector<double>> cumulative;
  int horizon = 0;

  // Normalized value F_g(t) / |V_g|; requires the matching `groups`.
  double NormalizedAt(GroupId g, int t, const GroupAssignment& groups) const;

  // Earliest t at which group g's normalized curve reaches `fraction`, or
  // -1 if it never does within the horizon. The "time to reach" gap
  // between groups measures speed inequality directly.
  int TimeToReach(GroupId g, double fraction,
                  const GroupAssignment& groups) const;

  // CSV rendering: header "t,group0,group1,..." and one row per time step
  // with normalized values.
  std::string ToCsv(const GroupAssignment& groups) const;
};

// Computes expected arrival curves of `seeds` over `options.num_worlds`
// live-edge worlds up to `horizon` steps (inclusive). Uses the same world
// construction as InfluenceOracle, so curves are consistent with oracle
// estimates: curve[g][τ] == f̂_τ(S; V_g) for every τ ≤ horizon.
ArrivalCurves ComputeArrivalCurves(const Graph& graph,
                                   const GroupAssignment& groups,
                                   const std::vector<NodeId>& seeds,
                                   int horizon, const OracleOptions& options);

}  // namespace tcim

#endif  // TCIM_SIM_ANALYTICS_H_
