// RrOracle — the RR-set sketch as a stateful GroupCoverageOracle.
//
// Adapts an immutable, shareable RrSketch (sim/rr_sets.h) to the oracle
// interface the greedy engine, saturate-cover, and SATURATE consume
// (sim/oracle_interface.h), so every registry solver runs unchanged on
// sketches. Where the Monte-Carlo oracle pays a τ-bounded BFS per world
// for each marginal-gain query, this adapter walks the sketch's inverted
// index instead:
//
//   MarginalGain(v) = Σ over uncovered RR sets containing v of the set's
//                     group weight |V_g| / R_g
//
// which is O(|SetsContaining(v)|) = O(Δcover) with no graph traversal at
// all. AddSeed additionally marks those sets covered. The sketch itself is
// never mutated — any number of concurrent solves can hold cursors over
// one cached sketch (api/engine.h), mirroring the WorldEnsemble contract.
//
// The cursor is deadline-parametric: it carries an effective deadline
// τ' ≤ the sketch's build deadline and only counts members within τ' hops
// of their root, so one cached sketch serves every deadline of a sweep
// (sim/rr_sets.h explains why hop filtering is exact).
//
// Estimates agree with the Monte-Carlo oracle in expectation (both are
// unbiased estimators of f̂_τ(S; V_i); property-tested in
// tests/rr_agreement_test.cc) but are computed from different randomness,
// so seed sets can differ within the sketch's ε tolerance.

#ifndef TCIM_SIM_RR_ORACLE_H_
#define TCIM_SIM_RR_ORACLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "graph/groups.h"
#include "sim/oracle_interface.h"
#include "sim/rr_sets.h"

namespace tcim {

class RrOracle : public GroupCoverageOracle {
 public:
  // Keeps pointers to `graph` and `groups` (must outlive the oracle) and
  // shares ownership of the sketch. The sketch must have been built from
  // the same graph/groups. `effective_deadline` is the τ' this cursor
  // answers at (clamped to the sketch's build deadline; kNoDeadline = the
  // full build deadline).
  RrOracle(const Graph* graph, const GroupAssignment* groups,
           std::shared_ptr<const RrSketch> sketch,
           int effective_deadline = kNoDeadline);

  RrOracle(const RrOracle&) = delete;
  RrOracle& operator=(const RrOracle&) = delete;

  const Graph& graph() const override { return *graph_; }
  const GroupAssignment& groups() const override { return *groups_; }
  const RrSketch& sketch() const { return *sketch_; }
  // The τ' this cursor filters at (already clamped to the build deadline).
  int effective_deadline() const { return effective_deadline_; }

  const std::vector<NodeId>& seeds() const override { return seeds_; }
  const GroupVector& group_coverage() const override {
    return group_coverage_;
  }

  // Estimated per-group marginal coverage of `candidate`: the weight of
  // the not-yet-covered RR sets it belongs to. Does not modify state.
  GroupVector MarginalGain(NodeId candidate) override;

  // Commits `candidate`, covering its RR sets; returns the realized
  // per-group marginal coverage.
  GroupVector AddSeed(NodeId candidate) override;

  void Reset() override;

 private:
  // Shared walk of MarginalGain (commit=false) and AddSeed (commit=true).
  GroupVector EvaluateCandidate(NodeId candidate, bool commit);

  const Graph* graph_;
  const GroupAssignment* groups_;
  std::shared_ptr<const RrSketch> sketch_;
  int32_t effective_deadline_ = 0;

  std::vector<NodeId> seeds_;
  std::vector<uint8_t> covered_;  // per RR set, hit by a committed seed
  GroupVector group_coverage_;
};

}  // namespace tcim

#endif  // TCIM_SIM_RR_ORACLE_H_
