#include "sim/oracle_interface.h"

namespace tcim {

double GroupVectorTotal(const GroupVector& vec) {
  double total = 0.0;
  for (const double v : vec) total += v;
  return total;
}

}  // namespace tcim
