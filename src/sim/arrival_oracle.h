// Monte-Carlo oracle for *weighted* time-critical influence:
//
//   U_w(S; V_i) = E[ Σ_{v ∈ V_i, t_v >= 0} w(t_v) ]
//
// with w a nonincreasing TemporalWeight (step w reproduces the paper's
// Eq. 1; exponential discounting implements its future-work suggestion),
// and optional per-edge transmission delays (unit = classic IC; geometric =
// IC-M of Chen et al. 2012, where activation times are delay-weighted
// shortest paths over live edges).
//
// Over fixed worlds, U_w(S) = (1/R) Σ_r Σ_v w(dist_r(S, v)) where dist_r is
// the live-edge delay-shortest-path distance. Because dist_r(S∪{u}, v) =
// min(dist_r(S,v), dist_r(u,v)) and w is nonincreasing, U_w is monotone
// submodular as estimated — the same greedy machinery and guarantees apply
// (property-tested in tests/arrival_oracle_test.cc).
//
// State per world is the earliest arrival time per node; a marginal-gain
// query runs one horizon-bounded Dial (bucket-queue Dijkstra) per world
// from the candidate. Queries are parallelized over worlds.

#ifndef TCIM_SIM_ARRIVAL_ORACLE_H_
#define TCIM_SIM_ARRIVAL_ORACLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "graph/graph.h"
#include "graph/groups.h"
#include "sim/live_edge.h"
#include "sim/oracle_interface.h"
#include "sim/temporal.h"
#include "sim/world_ensemble.h"

namespace tcim {

struct ArrivalOracleOptions {
  int num_worlds = 200;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  uint64_t seed = 0xa55171ull;
  ThreadPool* pool = nullptr;
  // Pre-materialized live-edge worlds (with delays) to traverse instead of
  // hashing coins/delays on the fly; see OracleOptions::worlds. Must match
  // model/seed/num_worlds, carry this oracle's delay distribution, and have
  // delay_cap > the weight horizon so capped delays stay indistinguishable.
  std::shared_ptr<const WorldEnsemble> worlds;
};

class ArrivalOracle : public GroupCoverageOracle {
 public:
  // `graph` and `groups` must outlive the oracle.
  ArrivalOracle(const Graph* graph, const GroupAssignment* groups,
                TemporalWeight weight, DelaySampler delays,
                const ArrivalOracleOptions& options);

  ArrivalOracle(const ArrivalOracle&) = delete;
  ArrivalOracle& operator=(const ArrivalOracle&) = delete;

  const Graph& graph() const override { return *graph_; }
  const GroupAssignment& groups() const override { return *groups_; }
  const std::vector<NodeId>& seeds() const override { return seeds_; }
  const GroupVector& group_coverage() const override {
    return group_coverage_;
  }

  const TemporalWeight& weight() const { return weight_; }
  int num_worlds() const { return options_.num_worlds; }

  GroupVector MarginalGain(NodeId candidate) override;
  GroupVector AddSeed(NodeId candidate) override;
  void Reset() override;

  // Earliest arrival time of `v` in `world` under the committed seeds, or
  // -1 when unreached within the horizon. Exposed for tests.
  int ArrivalTime(uint32_t world, NodeId v) const;

 private:
  // Sentinel "not reached within horizon" arrival value.
  int32_t Unreached() const { return weight_.horizon() + 1; }

  // Per-shard scratch for the bucket-queue Dijkstra.
  struct DialScratch {
    std::vector<int32_t> dist;              // tentative distance, epoch-stamped
    std::vector<int32_t> stamp;
    int32_t epoch = 0;
    std::vector<std::vector<NodeId>> buckets;  // index = arrival time
  };

  // Shared implementation of MarginalGain / AddSeed.
  GroupVector EvaluateCandidate(NodeId candidate, bool commit);

  ThreadPool& pool() const;

  const Graph* graph_;
  const GroupAssignment* groups_;
  TemporalWeight weight_;
  DelaySampler delays_;
  ArrivalOracleOptions options_;
  WorldSampler sampler_;
  // Raw pointer view of options_.worlds (nullptr = hash worlds on the fly).
  const WorldEnsemble* worlds_ = nullptr;

  std::vector<NodeId> seeds_;
  // arrival_[world * n + v]: earliest arrival under committed seeds.
  std::vector<int32_t> arrival_;
  GroupVector group_coverage_;
};

}  // namespace tcim

#endif  // TCIM_SIM_ARRIVAL_ORACLE_H_
