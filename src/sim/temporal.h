// Temporal utility weights and transmission delays — the paper's stated
// future-work direction ("more complex models of time-criticality in
// information propagation (such as discounting with time)") plus the
// time-delayed diffusion model of the paper's time-critical reference
// (Chen, Lu, Zhang, AAAI'12: IC-M, where an active node only *meets* each
// neighbor per step with a meeting probability m, so transmission takes a
// Geometric(m) number of steps).
//
// A TemporalWeight maps an activation time t to a utility weight w(t) with
// w nonincreasing and w(t) = 0 beyond a finite horizon. Nonincreasing
// weights over earliest-arrival times keep the estimated objective monotone
// submodular (tested in tests/arrival_oracle_test.cc), so all solvers and
// guarantees carry over.

#ifndef TCIM_SIM_TEMPORAL_H_
#define TCIM_SIM_TEMPORAL_H_

#include <cmath>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace tcim {

class TemporalWeight {
 public:
  // The paper's step utility: w(t) = 1 for t <= deadline, else 0.
  static TemporalWeight Step(int deadline);

  // Exponential discounting truncated at a horizon: w(t) = gamma^t for
  // t <= horizon, else 0. gamma in (0, 1].
  static TemporalWeight ExponentialDiscount(double gamma, int horizon);

  // Linear decay: w(t) = max(0, 1 - t / horizon).
  static TemporalWeight LinearDecay(int horizon);

  // Largest t with w(t) > 0; propagation beyond it is worthless.
  int horizon() const { return horizon_; }

  // w(t); t must be >= 0. Zero beyond the horizon.
  double operator()(int t) const {
    TCIM_DCHECK(t >= 0);
    return t <= horizon_ ? weights_[t] : 0.0;
  }

  bool IsStep() const { return is_step_; }
  const std::string& name() const { return name_; }

 private:
  TemporalWeight(std::vector<double> weights, bool is_step, std::string name);

  std::vector<double> weights_;  // index t in [0, horizon_]
  int horizon_;
  bool is_step_;
  std::string name_;
};

// Per-(world, edge) transmission delays. Classic IC has delay 1 on every
// edge; IC-M draws delay ~ 1 + Geometric(meeting_probability) (number of
// steps until the first successful meeting). Delays are pure functions of
// (seed, world, edge), like live-edge coins.
class DelaySampler {
 public:
  // Classic IC: every transmission takes exactly one step.
  static DelaySampler Unit();

  // IC-M with meeting probability m in (0, 1]: P(delay = k) = m(1-m)^{k-1}.
  static DelaySampler Geometric(double meeting_probability, uint64_t seed);

  // Transmission delay (>= 1) of `edge_id` in `world`, capped at `cap` so
  // bounded traversals can bucket by time.
  int Delay(uint32_t world, EdgeId edge_id, int cap) const {
    if (unit_) return 1;
    const double u = ToUnitDouble(HashCombine(
        seed_ ^ 0xde1a7ull, HashCombine(world, static_cast<uint64_t>(edge_id))));
    // Inverse CDF of Geometric(m) on {1, 2, ...}.
    const int delay =
        1 + static_cast<int>(std::floor(std::log1p(-u) / log_one_minus_m_));
    return delay < cap ? delay : cap;
  }

  bool is_unit() const { return unit_; }
  double meeting_probability() const { return meeting_probability_; }
  uint64_t seed() const { return seed_; }

 private:
  DelaySampler(bool unit, double meeting_probability, uint64_t seed);

  bool unit_;
  double meeting_probability_;
  double log_one_minus_m_ = 0.0;
  uint64_t seed_;
};

}  // namespace tcim

#endif  // TCIM_SIM_TEMPORAL_H_
