// Forward cascade simulation with activation timestamps.
//
// Two entry points:
//   * SimulateIc / SimulateLt — fresh-randomness simulations driven by an
//     Rng, used for evaluation, examples and tests;
//   * SimulateInWorld — deterministic simulation inside a WorldSampler
//     world, used to cross-validate the influence oracle (the oracle's
//     covered set for world r must equal the nodes this function activates
//     within the deadline).
//
// Timestamps follow the paper's §3.1: seeds activate at t=0; a node
// activated at t-1 gets one chance to activate each out-neighbor at t.

#ifndef TCIM_SIM_CASCADE_H_
#define TCIM_SIM_CASCADE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "graph/groups.h"
#include "sim/live_edge.h"

namespace tcim {

// The deadline value meaning "no deadline" (τ = ∞).
inline constexpr int kNoDeadline = 1 << 29;

struct CascadeResult {
  // activation_time[v] >= 0 when v was activated; -1 otherwise (the paper's
  // t_v = -1 convention).
  std::vector<int> activation_time;
  // activated_by[v]: the neighbor whose influence attempt activated v
  // (provenance); -1 for seeds and never-activated nodes.
  std::vector<NodeId> activated_by;
  int num_activated = 0;

  // Nodes activated no later than `deadline`.
  int CountActivatedBy(int deadline) const;

  // Number of activated nodes per time step t = 0..max time (index = t).
  std::vector<int> ActivationHistogram() const;
};

// GraphViz DOT rendering of a cascade's activation forest: activated nodes
// become vertices labeled "id@t" (colored by group when `groups` is
// non-null) and provenance edges parent -> child. For small graphs /
// debugging / the examples.
std::string CascadeToDot(const CascadeResult& result,
                         const GroupAssignment* groups = nullptr);

// One Independent Cascade realization from `seeds` (fresh coins from rng).
CascadeResult SimulateIc(const Graph& graph, const std::vector<NodeId>& seeds,
                         Rng& rng);

// One Linear Threshold realization: each node draws a threshold θ ~ U[0,1]
// and activates at time t once the weight sum of in-neighbors active at
// times < t reaches θ.
CascadeResult SimulateLt(const Graph& graph, const std::vector<NodeId>& seeds,
                         Rng& rng);

// Deterministic cascade in the given live-edge world. Activation times are
// live-edge hop distances from the seed set; propagation is cut off at
// `max_time` steps (pass kNoDeadline for no cutoff).
CascadeResult SimulateInWorld(const Graph& graph,
                              const std::vector<NodeId>& seeds,
                              const WorldSampler& sampler, uint32_t world,
                              int max_time = kNoDeadline);

}  // namespace tcim

#endif  // TCIM_SIM_CASCADE_H_
