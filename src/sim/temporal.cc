#include "sim/temporal.h"

#include <algorithm>

#include "common/string_util.h"
#include "sim/cascade.h"

namespace tcim {

TemporalWeight::TemporalWeight(std::vector<double> weights, bool is_step,
                               std::string name)
    : weights_(std::move(weights)),
      horizon_(static_cast<int>(weights_.size()) - 1),
      is_step_(is_step),
      name_(std::move(name)) {
  TCIM_CHECK(!weights_.empty());
  for (size_t t = 1; t < weights_.size(); ++t) {
    TCIM_CHECK(weights_[t] <= weights_[t - 1] + 1e-12)
        << "temporal weights must be nonincreasing";
  }
  TCIM_CHECK(weights_.back() >= 0.0);
}

TemporalWeight TemporalWeight::Step(int deadline) {
  TCIM_CHECK(deadline >= 0);
  // Cap the table at a practical horizon; kNoDeadline would not fit and a
  // step weight with no deadline is just "reachability", horizon n - 1 at
  // most — callers with τ = ∞ should use the step InfluenceOracle instead.
  TCIM_CHECK(deadline < (1 << 20))
      << "step horizon too large for a weight table; use InfluenceOracle";
  return TemporalWeight(std::vector<double>(deadline + 1, 1.0),
                        /*is_step=*/true, StrFormat("step(%d)", deadline));
}

TemporalWeight TemporalWeight::ExponentialDiscount(double gamma, int horizon) {
  TCIM_CHECK(gamma > 0.0 && gamma <= 1.0) << "gamma must be in (0,1]";
  TCIM_CHECK(horizon >= 0 && horizon < (1 << 20));
  std::vector<double> weights(horizon + 1);
  double w = 1.0;
  for (int t = 0; t <= horizon; ++t) {
    weights[t] = w;
    w *= gamma;
  }
  return TemporalWeight(
      std::move(weights), /*is_step=*/false,
      StrFormat("discount(%s,%d)", FormatDouble(gamma, 3).c_str(), horizon));
}

TemporalWeight TemporalWeight::LinearDecay(int horizon) {
  TCIM_CHECK(horizon >= 1 && horizon < (1 << 20));
  std::vector<double> weights(horizon + 1);
  for (int t = 0; t <= horizon; ++t) {
    weights[t] = 1.0 - static_cast<double>(t) / horizon;
  }
  // w(horizon) = 0 is allowed (still nonincreasing, horizon unchanged).
  return TemporalWeight(std::move(weights), /*is_step=*/false,
                        StrFormat("linear(%d)", horizon));
}

DelaySampler::DelaySampler(bool unit, double meeting_probability,
                           uint64_t seed)
    : unit_(unit), meeting_probability_(meeting_probability), seed_(seed) {
  if (!unit_) {
    log_one_minus_m_ = std::log1p(-meeting_probability_);
  }
}

DelaySampler DelaySampler::Unit() {
  return DelaySampler(/*unit=*/true, 1.0, 0);
}

DelaySampler DelaySampler::Geometric(double meeting_probability,
                                     uint64_t seed) {
  TCIM_CHECK(meeting_probability > 0.0 && meeting_probability <= 1.0)
      << "meeting probability must be in (0,1]";
  if (meeting_probability == 1.0) return Unit();
  return DelaySampler(/*unit=*/false, meeting_probability, seed);
}

}  // namespace tcim
