// Live-edge "worlds" — the Monte-Carlo foundation of the influence oracle.
//
// Kempe et al. (2003): a realization of the Independent Cascade process is
// equivalent to flipping one coin per edge up front (edge (u,v) is "live"
// with probability p_uv) and activating everything reachable from the seed
// set via live edges; the activation time of v equals its live-edge hop
// distance from the seed set. The Linear Threshold model has the same
// equivalence where each node keeps at most ONE live in-edge, chosen with
// probability proportional to the incoming weights.
//
// A "world" here is one such joint coin-flip outcome. Instead of
// materializing R live-edge graphs, liveness is a pure hash function of
// (sampler seed, world index, edge id) — worlds are reproducible, cost no
// memory, and forward BFS (influence oracle) and reverse BFS (RR sets)
// automatically agree on the same coin for the same edge.

#ifndef TCIM_SIM_LIVE_EDGE_H_
#define TCIM_SIM_LIVE_EDGE_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"

namespace tcim {

enum class DiffusionModel {
  kIndependentCascade,
  kLinearThreshold,
};

const char* DiffusionModelName(DiffusionModel model);

// Parses "ic" / "lt" (also accepts the display names "IC" / "LT"); the
// error message lists the accepted spellings.
Result<DiffusionModel> ParseDiffusionModel(const std::string& text);

class WorldSampler {
 public:
  // The sampler keeps a pointer to `graph`; the graph must outlive it.
  WorldSampler(const Graph* graph, DiffusionModel model, uint64_t seed);

  DiffusionModel model() const { return model_; }
  uint64_t seed() const { return seed_; }

  // True if the directed edge `edge_id` is live in `world`.
  //
  // IC: an independent Bernoulli(p_e) coin per (world, edge).
  // LT: live iff this edge is the unique in-edge its target selected in
  //     this world (selection probability proportional to edge weight;
  //     with probability max(0, 1 - Σ weights) the target selects none).
  bool IsLive(uint32_t world, EdgeId edge_id) const {
    if (model_ == DiffusionModel::kIndependentCascade) {
      return UnitCoin(world, edge_id) <
             graph_->EdgeProbability(edge_id);
    }
    return LinearThresholdChoice(world, graph_->EdgeTarget(edge_id)) ==
           edge_id;
  }

  // LT helper: the in-edge chosen by `node` in `world`, or -1 when the node
  // selects no in-edge. For IC this is meaningless (checked).
  EdgeId LinearThresholdChoice(uint32_t world, NodeId node) const;

  // Uniform [0,1) value for (world, edge) — the IC coin. Exposed for tests.
  double UnitCoin(uint32_t world, EdgeId edge_id) const {
    return ToUnitDouble(
        HashCombine(seed_, HashCombine(world, static_cast<uint64_t>(edge_id))));
  }

  // Uniform [0,1) value for (world, node) — the LT threshold.
  double NodeCoin(uint32_t world, NodeId node) const {
    return ToUnitDouble(HashCombine(
        seed_ ^ 0x5bf0'3635'dcf5'9e11ull,
        HashCombine(world, static_cast<uint64_t>(node))));
  }

 private:
  const Graph* graph_;
  DiffusionModel model_;
  uint64_t seed_;
};

}  // namespace tcim

#endif  // TCIM_SIM_LIVE_EDGE_H_
