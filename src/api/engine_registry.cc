#include "api/engine_registry.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"

namespace tcim {
namespace {

// Field-wise accumulation of one tenant's CacheStats into the totals.
void Accumulate(const CacheStats& tenant, CacheStats& totals) {
  totals.hits += tenant.hits;
  totals.misses += tenant.misses;
  totals.constructions += tenant.constructions;
  totals.evictions += tenant.evictions;
  totals.invalidations += tenant.invalidations;
  totals.entries += tenant.entries;
  totals.ensemble_bytes += tenant.ensemble_bytes;
  totals.world_entries += tenant.world_entries;
  totals.sketch_entries += tenant.sketch_entries;
  totals.sketch_bytes += tenant.sketch_bytes;
  totals.world_constructions += tenant.world_constructions;
  totals.sketch_constructions += tenant.sketch_constructions;
}

}  // namespace

std::string RegistryStats::DebugString() const {
  std::string out = StrFormat(
      "tenants=%zu resident_bytes=%zu", tenants.size(), resident_bytes);
  if (max_total_bytes != std::numeric_limits<size_t>::max()) {
    out += StrFormat("/%zu", max_total_bytes);
  }
  out += StrFormat(" cross_tenant_evictions=%lld totals: %s",
                   static_cast<long long>(cross_tenant_evictions),
                   totals.DebugString().c_str());
  for (const Tenant& tenant : tenants) {
    out += StrFormat("\n  %s: resident_bytes=%zu floor=%zu %s",
                     tenant.id.c_str(), tenant.resident_bytes,
                     tenant.min_resident_bytes,
                     tenant.cache.DebugString().c_str());
  }
  return out;
}

// One tenant: the registry's copy of the network, its engine, and the
// bookkeeping that lets the registry destructor wait for stragglers. The
// LiveToken is declared FIRST so it is destroyed LAST — the "tenant gone"
// signal fires only after ~Engine has drained the tenant's pending async
// solves (which may still invoke registry callbacks).
struct EngineRegistry::Tenant {
  struct LiveToken {
    EngineRegistry* registry;
    explicit LiveToken(EngineRegistry* r) : registry(r) {
      registry->OnTenantCreated();
    }
    ~LiveToken() { registry->OnTenantDestroyed(); }
    LiveToken(const LiveToken&) = delete;
    LiveToken& operator=(const LiveToken&) = delete;
  };

  LiveToken token;
  std::string id;
  TenantOptions options;
  Graph graph;
  GroupAssignment groups;
  // Engine keeps references into graph/groups above, so it is constructed
  // only once they sit at their final address (and destroyed before them).
  std::optional<Engine> engine;

  Tenant(EngineRegistry* registry, std::string tenant_id, Graph g,
         GroupAssignment gr, const TenantOptions& tenant_options)
      : token(registry),
        id(std::move(tenant_id)),
        options(tenant_options),
        graph(std::move(g)),
        groups(std::move(gr)) {
    EngineOptions engine_options = options.engine;
    engine_options.pool = &registry->pool_;
    engine_options.lru_clock = &registry->lru_clock_;
    engine_options.resident_bytes_changed = [registry] {
      registry->EnforceGlobalBudget();
    };
    if (!engine_options.backend_build_hook_for_test) {
      engine_options.backend_build_hook_for_test =
          registry->options_.backend_build_hook_for_test;
    }
    engine.emplace(graph, groups, engine_options);
  }
};

EngineRegistry::EngineRegistry(const RegistryOptions& options)
    : options_(options),
      pool_(options.num_threads > 0 ? static_cast<size_t>(options.num_threads)
                                    : 0) {
  TCIM_CHECK(options_.num_threads >= 0) << "num_threads must be >= 0";
}

EngineRegistry::~EngineRegistry() {
  // Drop the registry's references OUTSIDE mutex_: a tenant destroyed here
  // drains its async solves, whose builds may call EnforceGlobalBudget —
  // which takes mutex_.
  std::map<std::string, std::shared_ptr<Tenant>> drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    drained.swap(tenants_);
  }
  drained.clear();
  // Now wait out tenants still pinned by caller-held handles; engine
  // callbacks capture `this`, so the registry must outlive every tenant.
  std::unique_lock<std::mutex> live(live_mutex_);
  live_cv_.wait(live, [this] { return live_tenants_ == 0; });
}

void EngineRegistry::OnTenantCreated() {
  std::lock_guard<std::mutex> lock(live_mutex_);
  ++live_tenants_;
}

void EngineRegistry::OnTenantDestroyed() {
  std::lock_guard<std::mutex> lock(live_mutex_);
  --live_tenants_;
  live_cv_.notify_all();
}

Status EngineRegistry::Register(const std::string& id, Graph graph,
                                GroupAssignment groups,
                                const TenantOptions& tenant_options) {
  if (id.empty()) {
    return InvalidArgumentError("tenant id must not be empty");
  }
  if (groups.num_nodes() != graph.num_nodes()) {
    return InvalidArgumentError(StrFormat(
        "tenant \"%s\": group assignment covers %d nodes but the graph has "
        "%d",
        id.c_str(), groups.num_nodes(), graph.num_nodes()));
  }
  // Constructed outside the lock (engine construction samples nothing);
  // a losing race below just destroys it again.
  auto tenant = std::make_shared<Tenant>(this, id, std::move(graph),
                                         std::move(groups), tenant_options);
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inserted = tenants_.emplace(id, tenant).second;
  }
  if (inserted) return Status::Ok();
  // The losing tenant is destroyed when `tenant` goes out of scope here —
  // outside mutex_, like every other tenant teardown.
  return FailedPreconditionError(StrFormat(
      "tenant \"%s\" is already registered; Unregister it first", id.c_str()));
}

Status EngineRegistry::Unregister(const std::string& id) {
  std::shared_ptr<Tenant> victim;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenants_.find(id);
    if (it == tenants_.end()) return UnknownTenantError(id);
    victim = std::move(it->second);
    tenants_.erase(it);
  }
  // `victim` released outside mutex_ — when this was the last handle, the
  // engine destructor (draining async solves whose builds can re-enter
  // EnforceGlobalBudget) runs here.
  return Status::Ok();
}

std::shared_ptr<EngineRegistry::Tenant> EngineRegistry::FindTenant(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second;
}

Status EngineRegistry::UnknownTenantError(const std::string& id) const {
  return NotFoundError(
      StrFormat("no tenant \"%s\" is registered", id.c_str()));
}

std::shared_ptr<Engine> EngineRegistry::Get(const std::string& id) const {
  std::shared_ptr<Tenant> tenant = FindTenant(id);
  if (tenant == nullptr) return nullptr;
  // Aliasing handle: exposes the engine, owns the whole tenant.
  return std::shared_ptr<Engine>(tenant, &*tenant->engine);
}

size_t EngineRegistry::num_tenants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenants_.size();
}

std::vector<std::string> EngineRegistry::TenantIds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) ids.push_back(id);
  return ids;
}

Result<Solution> EngineRegistry::Solve(const std::string& id,
                                       const ProblemSpec& spec,
                                       const SolveOptions& options) {
  std::shared_ptr<Tenant> tenant = FindTenant(id);
  if (tenant == nullptr) return UnknownTenantError(id);
  return tenant->engine->Solve(spec, options);
}

Result<GroupUtilityReport> EngineRegistry::EvaluateSeeds(
    const std::string& id, const std::vector<NodeId>& seeds,
    const ProblemSpec& spec, const SolveOptions& options) {
  std::shared_ptr<Tenant> tenant = FindTenant(id);
  if (tenant == nullptr) return UnknownTenantError(id);
  return tenant->engine->EvaluateSeeds(seeds, spec, options);
}

std::vector<Result<Solution>> EngineRegistry::SolveBatch(
    const std::string& id, std::span<const ProblemSpec> specs,
    const SolveOptions& options) {
  std::shared_ptr<Tenant> tenant = FindTenant(id);
  if (tenant != nullptr) return tenant->engine->SolveBatch(specs, options);
  // Mirror Engine::SolveBatch's shape: one status per spec.
  return std::vector<Result<Solution>>(specs.size(),
                                       Result<Solution>(UnknownTenantError(id)));
}

Engine::SweepResult EngineRegistry::SolveSweep(const std::string& id,
                                               const ProblemSpec& spec,
                                               const std::vector<int>& deadlines,
                                               const SolveOptions& options) {
  std::shared_ptr<Tenant> tenant = FindTenant(id);
  if (tenant != nullptr) {
    return tenant->engine->SolveSweep(spec, deadlines, options);
  }
  // Mirror the rejected-sweep shape: at least one failed, zip-aligned pair.
  Engine::SweepResult result;
  result.deadlines = deadlines;
  result.solutions.assign(std::max<size_t>(deadlines.size(), 1),
                          Result<Solution>(UnknownTenantError(id)));
  if (result.deadlines.empty()) result.deadlines.assign(1, 0);
  return result;
}

std::future<Result<Solution>> EngineRegistry::SubmitSolve(
    const std::string& id, const ProblemSpec& spec,
    const SolveOptions& options) {
  std::shared_ptr<Tenant> tenant = FindTenant(id);
  if (tenant == nullptr) {
    std::promise<Result<Solution>> rejected;
    rejected.set_value(UnknownTenantError(id));
    return rejected.get_future();
  }
  // The tenant handle rides in the scheduled task, so an Unregister racing
  // this submission cannot destroy the engine under the queued solve.
  Engine& engine = *tenant->engine;
  return engine.SubmitSolve(spec, options, std::move(tenant));
}

Status EngineRegistry::Invalidate(const std::string& id) {
  std::shared_ptr<Tenant> tenant = FindTenant(id);
  if (tenant == nullptr) return UnknownTenantError(id);
  tenant->engine->Invalidate();
  return Status::Ok();
}

RegistryStats EngineRegistry::Stats() const {
  RegistryStats stats;
  std::lock_guard<std::mutex> lock(mutex_);
  stats.max_total_bytes = options_.max_total_bytes;
  stats.cross_tenant_evictions = cross_tenant_evictions_;
  stats.tenants.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) {
    RegistryStats::Tenant entry;
    entry.id = id;
    entry.cache = tenant->engine->cache_stats();
    // Derived from the same snapshot (not a second engine lock), so the
    // documented resident == ensemble + sketch equality always holds
    // within one Stats() result.
    entry.resident_bytes =
        entry.cache.ensemble_bytes + entry.cache.sketch_bytes;
    entry.min_resident_bytes = tenant->options.min_resident_bytes;
    stats.resident_bytes += entry.resident_bytes;
    Accumulate(entry.cache, stats.totals);
    stats.tenants.push_back(std::move(entry));
  }
  return stats;
}

size_t EngineRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& [id, tenant] : tenants_) {
    total += tenant->engine->resident_bytes();
  }
  return total;
}

void EngineRegistry::EnforceGlobalBudget() {
  std::lock_guard<std::mutex> lock(mutex_);
  // One total per pass, decremented by the bytes each eviction frees;
  // concurrent builds can drift it, and the drift is settled by the pass
  // their own landing triggers.
  size_t total = 0;
  for (const auto& [id, tenant] : tenants_) {
    total += tenant->engine->resident_bytes();
  }
  while (total > options_.max_total_bytes) {
    // Global LRU with per-tenant floors: each tenant nominates its own
    // least-recently-used evictable entry; the stalest nomination loses.
    Tenant* victim = nullptr;
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (const auto& [id, tenant] : tenants_) {
      const Engine::ResidentEntry candidate =
          tenant->engine->OldestEvictable(tenant->options.min_resident_bytes);
      if (candidate.found && candidate.last_used < oldest) {
        oldest = candidate.last_used;
        victim = tenant.get();
      }
    }
    if (victim == nullptr) return;  // every remaining byte is floor-protected
    const size_t freed = victim->engine->EvictOldestEvictable(
        victim->options.min_resident_bytes);
    if (freed == 0) {
      return;  // raced away between nomination and eviction; the next
               // build's pass will settle it
    }
    total -= std::min(freed, total);
    ++cross_tenant_evictions_;
  }
}

}  // namespace tcim
