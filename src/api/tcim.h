// tcim.h — umbrella header for the TCIM public API.
//
// Quickstart:
//
//   #include "api/tcim.h"
//
//   tcim::Rng rng(42);
//   const tcim::GroupedGraph gg = tcim::datasets::SyntheticDefault(rng);
//   const tcim::ProblemSpec spec =
//       tcim::ProblemSpec::FairBudget(/*budget=*/30, /*deadline=*/20);
//   const tcim::Result<tcim::Solution> solution =
//       tcim::Solve(gg.graph, gg.groups, spec);
//   if (!solution.ok()) { /* solution.status() says what was wrong */ }
//   for (tcim::NodeId seed : solution->seeds) { /* ... */ }
//   // solution->evaluation holds the independent fresh-world report.
//
// Everything a client needs — ProblemSpec, Solve(), Solution, the
// serving-oriented Engine (cached backends, batched and async solves), the
// multi-tenant EngineRegistry (many graphs, one pool, one byte budget),
// the SolverRegistry (for custom solvers), the CLI flag bridge, datasets,
// and graph/group IO — is reachable from this one include; link `tcim_api`.

#ifndef TCIM_API_TCIM_H_
#define TCIM_API_TCIM_H_

#include "api/engine.h"
#include "api/engine_registry.h"
#include "api/problem_spec.h"
#include "api/solution.h"
#include "api/solve.h"
#include "api/solver_registry.h"
#include "api/spec_flags.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/io.h"

#endif  // TCIM_API_TCIM_H_
