#include "api/solve.h"

#include <memory>
#include <utility>

#include "api/solver_registry.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "sim/arrival_oracle.h"
#include "sim/influence_oracle.h"
#include "sim/temporal.h"

namespace tcim {
namespace {

// Builds the selection- or evaluation-time oracle named by spec.oracle.
// Callers have already run spec.Validate(), so the names and parameter
// ranges here are trusted.
std::unique_ptr<GroupCoverageOracle> MakeOracle(
    const Graph& graph, const GroupAssignment& groups, const ProblemSpec& spec,
    const SolveOptions& options, bool evaluation) {
  const int num_worlds =
      evaluation && options.eval_num_worlds > 0 ? options.eval_num_worlds
                                                : options.num_worlds;
  const uint64_t seed =
      evaluation ? options.evaluation_seed : options.selection_seed;
  if (spec.oracle == "arrival") {
    TemporalWeight weight = TemporalWeight::Step(spec.deadline);
    if (spec.temporal_weight == "exponential") {
      weight =
          TemporalWeight::ExponentialDiscount(spec.discount_gamma, spec.deadline);
    } else if (spec.temporal_weight == "linear") {
      weight = TemporalWeight::LinearDecay(spec.deadline);
    }
    DelaySampler delays =
        spec.meeting_probability >= 1.0
            ? DelaySampler::Unit()
            : DelaySampler::Geometric(spec.meeting_probability, seed ^ 0xd31a5ull);
    ArrivalOracleOptions oracle_options;
    oracle_options.num_worlds = num_worlds;
    oracle_options.model = spec.model;
    oracle_options.seed = seed;
    oracle_options.pool = options.pool;
    return std::make_unique<ArrivalOracle>(&graph, &groups, std::move(weight),
                                           std::move(delays), oracle_options);
  }
  OracleOptions oracle_options;
  oracle_options.num_worlds = num_worlds;
  oracle_options.deadline = spec.deadline;
  oracle_options.model = spec.model;
  oracle_options.seed = seed;
  oracle_options.pool = options.pool;
  return std::make_unique<InfluenceOracle>(&graph, &groups, oracle_options);
}

Status ValidateSeedSet(const Graph& graph, const std::vector<NodeId>& seeds) {
  for (const NodeId seed : seeds) {
    if (seed < 0 || seed >= graph.num_nodes()) {
      return InvalidArgumentError(StrFormat(
          "seed node %d is outside the graph's %d nodes", seed,
          graph.num_nodes()));
    }
  }
  return Status::Ok();
}

// Coverage of `seeds` on the evaluation worlds of the spec's backend.
GroupVector EvaluationCoverage(const Graph& graph,
                               const GroupAssignment& groups,
                               const std::vector<NodeId>& seeds,
                               const ProblemSpec& spec,
                               const SolveOptions& options) {
  std::unique_ptr<GroupCoverageOracle> oracle =
      MakeOracle(graph, groups, spec, options, /*evaluation=*/true);
  if (auto* influence = dynamic_cast<InfluenceOracle*>(oracle.get())) {
    // Cheaper one-shot path; identical to committing seed by seed.
    return influence->EstimateGroupCoverage(seeds);
  }
  for (const NodeId seed : seeds) oracle->AddSeed(seed);
  return oracle->group_coverage();
}

}  // namespace

Result<Solution> Solve(const Graph& graph, const GroupAssignment& groups,
                       const ProblemSpec& spec, const SolveOptions& options) {
  TCIM_RETURN_IF_ERROR(spec.ValidateFor(graph, groups));
  TCIM_RETURN_IF_ERROR(options.Validate(graph));

  const std::string solver_name =
      spec.solver.empty() ? DefaultSolverName(spec.kind) : spec.solver;
  const SolverRegistry& registry = SolverRegistry::Global();
  const Solver* solver = registry.Find(solver_name);
  if (solver == nullptr) {
    std::string names;
    for (const std::string& name : registry.RegisteredNames()) {
      if (!names.empty()) names += ", ";
      names += name;
    }
    return NotFoundError("unknown solver \"" + solver_name +
                         "\"; registered solvers: " + names);
  }
  if (!solver->Supports(spec.kind)) {
    return InvalidArgumentError(
        StrFormat("solver \"%s\" does not support problem \"%s\"",
                  solver_name.c_str(), ProblemKindName(spec.kind)));
  }

  SolverContext context(graph, groups, spec, options,
                        [&graph, &groups, &spec, &options] {
                          return MakeOracle(graph, groups, spec, options,
                                            /*evaluation=*/false);
                        });
  Stopwatch select_watch;
  Result<Solution> result = solver->Run(context);
  if (!result.ok()) return result;

  Solution solution = std::move(result).value();
  solution.selection_seconds = select_watch.ElapsedSeconds();
  solution.problem = ProblemKindName(spec.kind);
  solution.solver = solver_name;
  solution.oracle = spec.oracle;
  solution.diagnostics.num_worlds = options.num_worlds;
  solution.diagnostics.eval_num_worlds =
      options.eval_num_worlds > 0 ? options.eval_num_worlds : options.num_worlds;

  if (options.evaluate) {
    Stopwatch eval_watch;
    solution.evaluation = MakeGroupUtilityReport(
        EvaluationCoverage(graph, groups, solution.seeds, spec, options),
        groups);
    solution.evaluation_seconds = eval_watch.ElapsedSeconds();
    if (solution.coverage.empty()) {
      // Oracle-free solvers (the baselines) skip the selection-worlds
      // estimate when an evaluation runs anyway; surface its numbers,
      // with objective_value under the spec's own objective so it stays
      // comparable to other solvers run on the same spec.
      solution.coverage = solution.evaluation->coverage;
      solution.normalized = solution.evaluation->normalized;
      solution.objective_value = internal::BudgetObjectiveValue(
          spec, groups, solution.coverage);
    }
  }
  return solution;
}

Result<GroupUtilityReport> EvaluateSeeds(const Graph& graph,
                                         const GroupAssignment& groups,
                                         const std::vector<NodeId>& seeds,
                                         const ProblemSpec& spec,
                                         const SolveOptions& options) {
  // Only the evaluation-relevant spec fields are validated: a pure audit
  // must not reject because of solver-only fields like budget or quota.
  TCIM_RETURN_IF_ERROR(spec.ValidateForEvaluation(graph, groups));
  TCIM_RETURN_IF_ERROR(options.Validate(graph));
  TCIM_RETURN_IF_ERROR(ValidateSeedSet(graph, seeds));
  return MakeGroupUtilityReport(
      EvaluationCoverage(graph, groups, seeds, spec, options), groups);
}

}  // namespace tcim
