#include "api/solve.h"

#include "api/engine.h"

namespace tcim {

// The one-shot entry points are thin wrappers over a throwaway Engine
// (api/engine.h): one call, one session, identical results. Long-lived
// callers answering repeated queries over the same graph should hold an
// Engine instead and let its backend cache amortize world sampling.

Result<Solution> Solve(const Graph& graph, const GroupAssignment& groups,
                       const ProblemSpec& spec, const SolveOptions& options) {
  Engine engine(graph, groups);
  return engine.Solve(spec, options);
}

Result<GroupUtilityReport> EvaluateSeeds(const Graph& graph,
                                         const GroupAssignment& groups,
                                         const std::vector<NodeId>& seeds,
                                         const ProblemSpec& spec,
                                         const SolveOptions& options) {
  // A one-shot audit traverses its worlds exactly once, so materializing
  // them first can't amortize; a zero byte budget keeps the classic
  // hash-on-the-fly worlds (identical numbers either way). RR sketches
  // are exempt from the cap — for oracle = "rr" the sketch IS the
  // estimator, so it is built regardless.
  EngineOptions engine_options;
  engine_options.max_ensemble_bytes = 0;
  Engine engine(graph, groups, engine_options);
  return engine.EvaluateSeeds(seeds, spec, options);
}

}  // namespace tcim
