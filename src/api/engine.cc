#include "api/engine.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "api/solver_registry.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "sim/arrival_oracle.h"
#include "sim/influence_oracle.h"
#include "sim/rr_oracle.h"
#include "sim/temporal.h"

namespace tcim {
namespace {

// The world-backend identity: specs agreeing on every field here can share
// one sampled world set. The deadline is canonicalized OUT of the key —
// liveness coins are deadline-independent and delays are stored uncapped,
// so the ensemble is deadline-parametric and every oracle cursor applies
// its own τ' at query time. That also drops the oracle kind from the key:
// a unit-delay ensemble serves montecarlo and unit-delay arrival alike.
// The geometric-delay arrival backend materializes different per-edge
// delays, so its meeting probability joins the key (the delay seed is
// derived from `seed`, which is already included).
std::string BackendKey(const ProblemSpec& spec, int num_worlds,
                       uint64_t seed) {
  std::string key = StrFormat(
      "worlds|%s|R=%d|seed=%llu", DiffusionModelName(spec.model), num_worlds,
      static_cast<unsigned long long>(seed));
  if (spec.oracle == "arrival" && spec.meeting_probability < 1.0) {
    // Exact bit pattern, not a decimal rendering: two specs whose meeting
    // probabilities differ only past the printed precision must NOT share
    // a key (the oracle's compatibility check compares the raw doubles).
    uint64_t bits = 0;
    std::memcpy(&bits, &spec.meeting_probability, sizeof(bits));
    key += StrFormat("|m=%llx", static_cast<unsigned long long>(bits));
  }
  return key;
}

// The deadline an RR sketch is BUILT at. Fixed-size sketches: the spec's
// deadline (floored by SolveOptions::min_backend_deadline, which
// SolveSweep raises to the sweep's maximum) rounded up to the next power
// of two — one cached build per class serves every smaller deadline
// exactly via hop filtering (sim/rr_sets.h), so a τ=5 query and a τ=7
// query share the τ=8 build. Adaptively-sized (IMM) sketches build at the
// spec's EXACT deadline instead: the (1−1/e−ε, δ) guarantee sizes θ
// against OPT at the deadline actually queried, and OPT only grows with
// the deadline, so sizing at a deeper class could undersize the sketch
// for the real τ. (Their keys are already spec-specific through the IMM
// inputs, so class sharing bought them little anyway.)
int SketchBuildDeadline(const ProblemSpec& spec, const SolveOptions& options,
                        bool adaptive) {
  if (adaptive) return std::min(spec.deadline, kNoDeadline);
  int deadline = spec.deadline;
  if (options.min_backend_deadline > deadline) {
    deadline = options.min_backend_deadline;
  }
  if (deadline >= kNoDeadline) return kNoDeadline;
  int cls = 1;
  while (cls < deadline) cls <<= 1;
  return cls;
}

// The caller-determined sets-per-group count, or 0 when the IMM adaptive
// sizing must run (budget-family problems with rr_sets_per_group unset).
// Cover problems have no a-priori seed budget for the IMM bound, so an
// unset count falls back to the RrSketchOptions fixed default — which also
// lets every cover spec share one sketch regardless of quota. Evaluation
// sketches take the fixed default too: the IMM bound is a *selection*
// guarantee, and the audit path must not read solver-only fields like
// budget (ValidateForEvaluation deliberately skips them, so an
// evaluation-time dependence would turn an unvalidated budget into a
// crash instead of a Status).
int ResolvedFixedSetsPerGroup(const ProblemSpec& spec,
                              const SolveOptions& options, bool evaluation) {
  if (options.rr_sets_per_group > 0) return options.rr_sets_per_group;
  if (evaluation || !UsesBudget(spec.kind)) {
    return RrSketchOptions().sets_per_group;
  }
  return 0;
}

// The sketch-backend identity. A fixed-size sketch is reusable by any spec
// agreeing on (model, max-τ class, count, seed); an adaptively-sized one
// also depends on the IMM inputs (budget, ε, δ), which therefore join the
// key. ε and δ enter as exact bit patterns for the same reason as the
// arrival backend's meeting probability above.
std::string SketchKey(const ProblemSpec& spec, const SolveOptions& options,
                      uint64_t seed, bool evaluation) {
  const int fixed = ResolvedFixedSetsPerGroup(spec, options, evaluation);
  std::string key =
      StrFormat("rr|%s|tauclass=%d|", DiffusionModelName(spec.model),
                SketchBuildDeadline(spec, options, /*adaptive=*/fixed == 0));
  if (fixed > 0) {
    key += StrFormat("spg=%d", fixed);
  } else {
    uint64_t eps_bits = 0;
    uint64_t delta_bits = 0;
    std::memcpy(&eps_bits, &options.rr_epsilon, sizeof(eps_bits));
    std::memcpy(&delta_bits, &options.rr_delta, sizeof(delta_bits));
    key += StrFormat("imm|B=%d|eps=%llx|delta=%llx", spec.budget,
                     static_cast<unsigned long long>(eps_bits),
                     static_cast<unsigned long long>(delta_bits));
  }
  key += StrFormat("|seed=%llu", static_cast<unsigned long long>(seed));
  return key;
}

// Heap footprint of a finished backend, for the cache's byte accounting.
// A world entry that fell back to hash-on-the-fly sampling holds nothing.
size_t BackendBytes(
    const std::variant<std::shared_ptr<const WorldEnsemble>,
                       std::shared_ptr<const RrSketch>>& value) {
  if (const auto* worlds =
          std::get_if<std::shared_ptr<const WorldEnsemble>>(&value)) {
    return *worlds != nullptr ? (*worlds)->ApproxBytes() : 0;
  }
  const auto& sketch = std::get<std::shared_ptr<const RrSketch>>(value);
  return sketch != nullptr ? sketch->ApproxBytes() : 0;
}

Status ValidateSeedSet(const Graph& graph, const std::vector<NodeId>& seeds) {
  for (const NodeId seed : seeds) {
    if (seed < 0 || seed >= graph.num_nodes()) {
      return InvalidArgumentError(
          StrFormat("seed node %d is outside the graph's %d nodes", seed,
                    graph.num_nodes()));
    }
  }
  return Status::Ok();
}

}  // namespace

std::string CacheStats::DebugString() const {
  return StrFormat(
      "hits=%lld misses=%lld constructions=%lld (worlds=%lld sketches=%lld) "
      "evictions=%lld invalidations=%lld entries=%zu (worlds=%zu "
      "sketches=%zu) ensemble_bytes=%zu sketch_bytes=%zu",
      static_cast<long long>(hits), static_cast<long long>(misses),
      static_cast<long long>(constructions),
      static_cast<long long>(world_constructions),
      static_cast<long long>(sketch_constructions),
      static_cast<long long>(evictions),
      static_cast<long long>(invalidations), entries, world_entries,
      sketch_entries, ensemble_bytes, sketch_bytes);
}

Engine::Engine(const Graph& graph, const GroupAssignment& groups,
               const EngineOptions& options)
    : graph_(graph), groups_(groups), options_(options) {
  TCIM_CHECK(options_.max_cached_backends >= 1)
      << "max_cached_backends must be >= 1";
  TCIM_CHECK(options_.num_threads >= 0) << "num_threads must be >= 0";
  if (options_.pool == nullptr && options_.num_threads > 0) {
    owned_pool_ =
        std::make_unique<ThreadPool>(static_cast<size_t>(options_.num_threads));
  }
}

Engine::~Engine() {
  std::unique_lock<std::mutex> lock(pending_mutex_);
  pending_cv_.wait(lock, [this] { return pending_ == 0; });
}

ThreadPool& Engine::PoolFor(const SolveOptions& options) const {
  if (options.pool != nullptr) return *options.pool;
  if (options_.pool != nullptr) return *options_.pool;
  if (owned_pool_ != nullptr) return *owned_pool_;
  return ThreadPool::Default();
}

Engine::ResolvedPool Engine::ResolvePool(const SolveOptions& options) const {
  ResolvedPool resolved;
  if (options.pool == nullptr && options.num_threads > 0) {
    resolved.dedicated =
        std::make_unique<ThreadPool>(static_cast<size_t>(options.num_threads));
    resolved.pool = resolved.dedicated.get();
  } else {
    resolved.pool = &PoolFor(options);
  }
  return resolved;
}

uint64_t Engine::NextTick() const {
  std::atomic<uint64_t>& clock =
      options_.lru_clock != nullptr ? *options_.lru_clock : local_clock_;
  return clock.fetch_add(1, std::memory_order_relaxed) + 1;
}

void Engine::EvictEntryLocked(
    std::map<std::string, CacheEntry>::iterator it) {
  resident_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_position);
  cache_.erase(it);
  ++stats_.evictions;
}

void Engine::EnforceByteBudgetLocked(const std::string& protect_key) {
  auto pos = lru_.end();
  while (resident_bytes_ > options_.max_ensemble_bytes &&
         pos != lru_.begin()) {
    --pos;
    if (*pos == protect_key) continue;
    auto it = cache_.find(*pos);
    if (it->second.bytes == 0) continue;  // still building, or a 0-byte
                                          // world-fallback marker entry
    // Step off the doomed element first (list::erase only invalidates the
    // erased iterator), so the scan can keep walking toward the front.
    ++pos;
    EvictEntryLocked(it);
  }
}

std::shared_future<Engine::BackendValue> Engine::AcquireBackend(
    const std::string& key, BackendKind kind,
    const std::function<BackendValue()>& build) {
  std::promise<BackendValue> promise;
  std::shared_future<BackendValue> ready;
  bool builder = false;
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.hits;
      it->second.last_used = NextTick();
      lru_.splice(lru_.begin(), lru_, it->second.lru_position);
      ready = it->second.backend;
    } else {
      ++stats_.misses;
      builder = true;
      generation = ++next_generation_;
      ready = promise.get_future().share();
      lru_.push_front(key);
      cache_.emplace(key, CacheEntry{lru_.begin(), kind, generation,
                                     /*bytes=*/0, NextTick(), ready});
      while (cache_.size() >
             static_cast<size_t>(options_.max_cached_backends)) {
        EvictEntryLocked(cache_.find(lru_.back()));
      }
    }
  }
  if (builder) {
    // Built outside the lock; the shared_future makes every concurrent
    // requester of one key wait on a single construction instead of
    // sampling duplicate backends.
    try {
      if (options_.backend_build_hook_for_test) {
        options_.backend_build_hook_for_test();
      }
      BackendValue value = build();
      const size_t bytes = BackendBytes(value);
      bool recorded = false;
      {
        // Record the finished build's bytes (generation-checked: the entry
        // may have been evicted or invalidated mid-build, in which case it
        // no longer participates in the accounting) and bring the cache
        // back under its unified byte budget — everything, RR sketches
        // included, counts; only the entry just built is safe from its own
        // enforcement pass.
        std::lock_guard<std::mutex> lock(cache_mutex_);
        auto it = cache_.find(key);
        if (it != cache_.end() && it->second.generation == generation) {
          it->second.bytes = bytes;
          resident_bytes_ += bytes;
          recorded = bytes > 0;
          if (recorded) EnforceByteBudgetLocked(key);
        }
      }
      promise.set_value(std::move(value));
      if (recorded && options_.resident_bytes_changed) {
        // Outside every engine lock: the registry's global-budget pass may
        // re-enter this engine's accounting API.
        options_.resident_bytes_changed();
      }
    } catch (...) {
      // A failed build (e.g. bad_alloc on an oversized sketch) must not
      // poison the cache: drop the entry so the next request rebuilds,
      // and hand waiters the real exception instead of broken_promise.
      // The generation check keeps this from erasing a healthy entry that
      // replaced ours after an eviction or Invalidate().
      {
        std::lock_guard<std::mutex> lock(cache_mutex_);
        auto it = cache_.find(key);
        if (it != cache_.end() && it->second.generation == generation) {
          lru_.erase(it->second.lru_position);
          cache_.erase(it);
        }
      }
      promise.set_exception(std::current_exception());
      throw;
    }
  }
  return ready;
}

std::shared_ptr<const WorldEnsemble> Engine::AcquireEnsemble(
    const ProblemSpec& spec, int num_worlds, uint64_t seed,
    ThreadPool& build_pool) {
  const std::string key = BackendKey(spec, num_worlds, seed);
  const auto build = [&]() -> BackendValue {
    std::shared_ptr<const WorldEnsemble> built;
    if (WorldEnsemble::EstimateBytes(graph_, spec.model, num_worlds) <=
        options_.max_ensemble_bytes) {
      WorldEnsembleOptions ensemble_options;
      ensemble_options.num_worlds = num_worlds;
      ensemble_options.model = spec.model;
      ensemble_options.seed = seed;
      ensemble_options.pool = &build_pool;
      if (spec.oracle == "arrival" && spec.meeting_probability < 1.0) {
        ensemble_options.delays = DelaySampler::Geometric(
            spec.meeting_probability, seed ^ 0xd31a5ull);
      }
      // Delays stay uncapped (the default), so the ensemble is exact for
      // EVERY deadline — that is what lets the key drop the deadline.
      built = std::make_shared<const WorldEnsemble>(&graph_, ensemble_options);
      std::lock_guard<std::mutex> lock(cache_mutex_);
      ++stats_.constructions;
      ++stats_.world_constructions;
    }
    return built;
  };
  return std::get<std::shared_ptr<const WorldEnsemble>>(
      AcquireBackend(key, BackendKind::kWorlds, build).get());
}

std::shared_ptr<const RrSketch> Engine::AcquireSketch(
    const ProblemSpec& spec, const SolveOptions& options, uint64_t seed,
    bool evaluation, ThreadPool& build_pool) {
  const std::string key = SketchKey(spec, options, seed, evaluation);
  const auto build = [&]() -> BackendValue {
    int per_group = ResolvedFixedSetsPerGroup(spec, options, evaluation);
    RrSketchOptions sketch_options;
    sketch_options.model = spec.model;
    sketch_options.deadline =
        SketchBuildDeadline(spec, options, /*adaptive=*/per_group == 0);
    sketch_options.seed = seed;
    sketch_options.pool = &build_pool;
    if (per_group == 0) {
      // IMM adaptive sizing, paid once per cache residency of this key;
      // warm solves of the same (budget, ε, δ) shape reuse the result.
      per_group = ComputeAdaptiveSetsPerGroup(graph_, groups_, spec.budget,
                                              options.rr_epsilon,
                                              options.rr_delta, sketch_options);
    }
    sketch_options.sets_per_group = per_group;
    std::shared_ptr<const RrSketch> built =
        std::make_shared<const RrSketch>(&graph_, &groups_, sketch_options);
    std::lock_guard<std::mutex> lock(cache_mutex_);
    ++stats_.constructions;
    ++stats_.sketch_constructions;
    return built;
  };
  return std::get<std::shared_ptr<const RrSketch>>(
      AcquireBackend(key, BackendKind::kSketch, build).get());
}

std::unique_ptr<GroupCoverageOracle> Engine::MakeOracle(
    const ProblemSpec& spec, const SolveOptions& options, bool evaluation,
    ThreadPool& pool) {
  const int num_worlds =
      evaluation && options.eval_num_worlds > 0 ? options.eval_num_worlds
                                                : options.num_worlds;
  const uint64_t seed =
      evaluation ? options.evaluation_seed : options.selection_seed;
  if (spec.oracle == "rr") {
    // The sketch plays the role the world ensemble plays for the other
    // backends — including an independent evaluation-seeded sketch for the
    // §6.1 fresh-randomness audit. num_worlds does not apply; the sketch
    // size comes from rr_sets_per_group / the IMM sizing. The cursor
    // filters the (possibly deeper-built) sketch at the spec's deadline.
    return std::make_unique<RrOracle>(
        &graph_, &groups_, AcquireSketch(spec, options, seed, evaluation, pool),
        spec.deadline);
  }
  std::shared_ptr<const WorldEnsemble> worlds =
      AcquireEnsemble(spec, num_worlds, seed, pool);
  if (spec.oracle == "arrival") {
    TemporalWeight weight = TemporalWeight::Step(spec.deadline);
    if (spec.temporal_weight == "exponential") {
      weight =
          TemporalWeight::ExponentialDiscount(spec.discount_gamma, spec.deadline);
    } else if (spec.temporal_weight == "linear") {
      weight = TemporalWeight::LinearDecay(spec.deadline);
    }
    DelaySampler delays =
        spec.meeting_probability >= 1.0
            ? DelaySampler::Unit()
            : DelaySampler::Geometric(spec.meeting_probability, seed ^ 0xd31a5ull);
    ArrivalOracleOptions oracle_options;
    oracle_options.num_worlds = num_worlds;
    oracle_options.model = spec.model;
    oracle_options.seed = seed;
    oracle_options.pool = &pool;
    oracle_options.worlds = std::move(worlds);
    return std::make_unique<ArrivalOracle>(&graph_, &groups_, std::move(weight),
                                           std::move(delays), oracle_options);
  }
  OracleOptions oracle_options;
  oracle_options.num_worlds = num_worlds;
  oracle_options.deadline = spec.deadline;
  oracle_options.model = spec.model;
  oracle_options.seed = seed;
  oracle_options.pool = &pool;
  oracle_options.worlds = std::move(worlds);
  return std::make_unique<InfluenceOracle>(&graph_, &groups_, oracle_options);
}

GroupVector Engine::EvaluationCoverage(const std::vector<NodeId>& seeds,
                                       const ProblemSpec& spec,
                                       const SolveOptions& options,
                                       ThreadPool& pool) {
  std::unique_ptr<GroupCoverageOracle> oracle =
      MakeOracle(spec, options, /*evaluation=*/true, pool);
  if (auto* influence = dynamic_cast<InfluenceOracle*>(oracle.get())) {
    // Cheaper one-shot path; identical to committing seed by seed.
    return influence->EstimateGroupCoverage(seeds);
  }
  if (auto* rr = dynamic_cast<RrOracle*>(oracle.get())) {
    RrSelectOptions select;
    select.deadline = rr->effective_deadline();
    return rr->sketch().EstimateGroupCoverage(seeds, select);
  }
  for (const NodeId seed : seeds) oracle->AddSeed(seed);
  return oracle->group_coverage();
}

Result<Solution> Engine::SolveImpl(const ProblemSpec& spec,
                                   const SolveOptions& options,
                                   ThreadPool& pool) {
  TCIM_RETURN_IF_ERROR(spec.ValidateFor(graph_, groups_));
  TCIM_RETURN_IF_ERROR(options.Validate(graph_));

  const std::string solver_name =
      spec.solver.empty() ? DefaultSolverName(spec.kind) : spec.solver;
  const SolverRegistry& registry = SolverRegistry::Global();
  const Solver* solver = registry.Find(solver_name);
  if (solver == nullptr) {
    std::string names;
    for (const std::string& name : registry.RegisteredNames()) {
      if (!names.empty()) names += ", ";
      names += name;
    }
    return NotFoundError("unknown solver \"" + solver_name +
                         "\"; registered solvers: " + names);
  }
  if (!solver->Supports(spec.kind)) {
    return InvalidArgumentError(
        StrFormat("solver \"%s\" does not support problem \"%s\"",
                  solver_name.c_str(), ProblemKindName(spec.kind)));
  }

  SolverContext context(graph_, groups_, spec, options,
                        [this, &spec, &options, &pool] {
                          return MakeOracle(spec, options,
                                            /*evaluation=*/false, pool);
                        });
  Stopwatch select_watch;
  Result<Solution> result = solver->Run(context);
  if (!result.ok()) return result;

  Solution solution = std::move(result).value();
  solution.selection_seconds = select_watch.ElapsedSeconds();
  solution.problem = ProblemKindName(spec.kind);
  solution.solver = solver_name;
  solution.oracle = spec.oracle;
  solution.diagnostics.num_worlds = options.num_worlds;
  solution.diagnostics.eval_num_worlds =
      options.eval_num_worlds > 0 ? options.eval_num_worlds : options.num_worlds;

  if (options.evaluate) {
    Stopwatch eval_watch;
    solution.evaluation = MakeGroupUtilityReport(
        EvaluationCoverage(solution.seeds, spec, options, pool), groups_);
    solution.evaluation_seconds = eval_watch.ElapsedSeconds();
    if (solution.coverage.empty()) {
      // Oracle-free solvers (the baselines) skip the selection-worlds
      // estimate when an evaluation runs anyway; surface its numbers,
      // with objective_value under the spec's own objective so it stays
      // comparable to other solvers run on the same spec.
      solution.coverage = solution.evaluation->coverage;
      solution.normalized = solution.evaluation->normalized;
      solution.objective_value =
          internal::BudgetObjectiveValue(spec, groups_, solution.coverage);
    }
  }
  return solution;
}

Result<GroupUtilityReport> Engine::EvaluateSeedsImpl(
    const std::vector<NodeId>& seeds, const ProblemSpec& spec,
    const SolveOptions& options, ThreadPool& pool) {
  // Only the evaluation-relevant spec fields are validated: a pure audit
  // must not reject because of solver-only fields like budget or quota.
  TCIM_RETURN_IF_ERROR(spec.ValidateForEvaluation(graph_, groups_));
  TCIM_RETURN_IF_ERROR(options.Validate(graph_));
  TCIM_RETURN_IF_ERROR(ValidateSeedSet(graph_, seeds));
  return MakeGroupUtilityReport(EvaluationCoverage(seeds, spec, options, pool),
                                groups_);
}

Result<Solution> Engine::Solve(const ProblemSpec& spec,
                               const SolveOptions& options) {
  const ResolvedPool resolved = ResolvePool(options);
  return SolveImpl(spec, options, *resolved.pool);
}

Result<GroupUtilityReport> Engine::EvaluateSeeds(
    const std::vector<NodeId>& seeds, const ProblemSpec& spec,
    const SolveOptions& options) {
  const ResolvedPool resolved = ResolvePool(options);
  return EvaluateSeedsImpl(seeds, spec, options, *resolved.pool);
}

std::vector<Result<Solution>> Engine::SolveBatch(
    std::span<const ProblemSpec> specs, const SolveOptions& options) {
  std::vector<Result<Solution>> results;
  results.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    results.emplace_back(InternalError("SolveBatch task did not run"));
  }
  if (specs.empty()) return results;

  const Status options_status = options.Validate(graph_);
  if (!options_status.ok()) {
    for (auto& result : results) result = options_status;
    return results;
  }

  // Parallelism moves from worlds to specs: the fan-out runs on a worker
  // pool while each solve queries its oracle serially (running every
  // solve's world-level ParallelFor on the same pool would deadlock once
  // all workers wait on shards nobody is free to run).
  SolveOptions per_solve = options;
  per_solve.pool = nullptr;
  per_solve.num_threads = 0;
  const auto run = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      results[i] = SolveImpl(specs[i], per_solve, ThreadPool::Inline());
    }
  };
  const ResolvedPool resolved = ResolvePool(options);
  resolved.pool->ParallelFor(specs.size(), run);
  return results;
}

Engine::SweepResult Engine::SolveSweep(const ProblemSpec& spec,
                                       const std::vector<int>& deadlines,
                                       const SolveOptions& options) {
  SweepResult result;
  result.deadlines = deadlines;
  result.before = cache_stats();
  if (const Status status = ValidateSweepDeadlines(deadlines); !status.ok()) {
    // At least one failed entry even for an empty list, so callers who
    // scan solutions for errors cannot mistake a rejected sweep for a
    // successful empty one; deadlines is padded alongside (0 = rejected
    // sentinel) to preserve the solutions[i] ~ deadlines[i] zip contract.
    result.solutions.assign(std::max<size_t>(deadlines.size(), 1),
                            Result<Solution>(status));
    if (result.deadlines.empty()) result.deadlines.assign(1, 0);
    result.after = result.before;
    return result;
  }

  // Every point builds at (at least) the sweep's largest deadline, so the
  // whole sweep shares one backend build per kind — kNoDeadline dominates.
  int max_deadline = 0;
  for (const int deadline : deadlines) {
    max_deadline = std::max(max_deadline, std::min(deadline, kNoDeadline));
  }
  SolveOptions sweep_options = options;
  sweep_options.min_backend_deadline =
      std::max(options.min_backend_deadline, max_deadline);

  std::vector<ProblemSpec> specs(deadlines.size(), spec);
  for (size_t i = 0; i < deadlines.size(); ++i) {
    specs[i].deadline = deadlines[i];
  }
  result.solutions = SolveBatch(specs, sweep_options);
  result.after = cache_stats();
  return result;
}

std::future<Result<Solution>> Engine::SubmitSolve(
    const ProblemSpec& spec, const SolveOptions& options,
    std::shared_ptr<const void> keepalive) {
  if (const Status status = options.Validate(graph_); !status.ok()) {
    std::promise<Result<Solution>> rejected;
    rejected.set_value(status);
    return rejected.get_future();
  }
  SolveOptions per_solve = options;
  per_solve.pool = nullptr;
  const int num_threads = std::exchange(per_solve.num_threads, 0);
  auto task = std::make_shared<std::packaged_task<Result<Solution>()>>(
      [this, spec, per_solve, num_threads] {
        // Runs ON a pool worker, so the oracle must not re-enter the same
        // pool (deadlock); by default it runs serially. An explicit
        // num_threads is honored with a dedicated (distinct) pool.
        if (num_threads > 0) {
          ThreadPool dedicated(static_cast<size_t>(num_threads));
          return SolveImpl(spec, per_solve, dedicated);
        }
        return SolveImpl(spec, per_solve, ThreadPool::Inline());
      });
  std::future<Result<Solution>> future = task->get_future();
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    ++pending_;
  }
  // `keepalive` rides in the scheduled closure and is released only after
  // the pending count drops, so when it holds the last reference to this
  // engine's owner (the registry's tenant handle), the engine destructor
  // it triggers finds this task already accounted done. Tasks each hold
  // their own copy; the owner can only die with the LAST of them.
  PoolFor(options).Schedule([this, task, keepalive = std::move(keepalive)] {
    (*task)();
    std::lock_guard<std::mutex> lock(pending_mutex_);
    --pending_;
    pending_cv_.notify_all();
  });
  return future;
}

CacheStats Engine::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  CacheStats stats = stats_;
  stats.entries = cache_.size();
  for (const auto& [key, entry] : cache_) {
    // Bytes come from the incremental accounting (recorded when a build
    // lands); an entry still building counts as an entry with 0 bytes,
    // exactly as the old walk-the-futures snapshot reported it.
    if (entry.kind == BackendKind::kWorlds) {
      ++stats.world_entries;
      stats.ensemble_bytes += entry.bytes;
    } else {
      ++stats.sketch_entries;
      stats.sketch_bytes += entry.bytes;
    }
  }
  return stats;
}

size_t Engine::resident_bytes() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return resident_bytes_;
}

Engine::ResidentEntry Engine::OldestEvictable(size_t min_resident_bytes) const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  for (auto pos = lru_.rbegin(); pos != lru_.rend(); ++pos) {
    const CacheEntry& entry = cache_.find(*pos)->second;
    if (entry.bytes == 0) continue;  // building, or a 0-byte fallback marker
    if (resident_bytes_ - entry.bytes < min_resident_bytes) continue;
    return ResidentEntry{true, entry.last_used, entry.bytes};
  }
  return ResidentEntry{};
}

size_t Engine::EvictOldestEvictable(size_t min_resident_bytes) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  for (auto pos = lru_.rbegin(); pos != lru_.rend(); ++pos) {
    auto it = cache_.find(*pos);
    if (it->second.bytes == 0) continue;
    if (resident_bytes_ - it->second.bytes < min_resident_bytes) continue;
    const size_t freed = it->second.bytes;
    EvictEntryLocked(it);
    return freed;
  }
  return 0;
}

void Engine::Invalidate() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  ++stats_.invalidations;
  cache_.clear();
  lru_.clear();
  resident_bytes_ = 0;
}

}  // namespace tcim
