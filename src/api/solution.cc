#include "api/solution.h"

#include "common/string_util.h"

namespace tcim {

std::string Solution::DebugString() const {
  std::string text = StrFormat(
      "problem=%s solver=%s oracle=%s |S|=%zu objective=%s", problem.c_str(),
      solver.c_str(), oracle.c_str(), seeds.size(),
      FormatDouble(objective_value, 4).c_str());
  if (target_reached) text += " target_reached";
  text += StrFormat(" oracle_calls=%lld select=%.2fs",
                    static_cast<long long>(diagnostics.oracle_calls),
                    selection_seconds);
  if (evaluation.has_value()) {
    text += " eval{" + evaluation->DebugString() + "}";
  }
  return text;
}

}  // namespace tcim
