// Built-in Solver implementations: the shared greedy engine behind
// P1/P2/P4/P6, SATURATE for maximin, and the §4.2 heuristic baselines.
// Each wraps the corresponding core/ path with wiring identical to the
// legacy free functions (tests/api_test.cc asserts seed-for-seed equality).

#include <memory>
#include <utility>
#include <vector>

#include "api/solver_registry.h"
#include "common/rng.h"
#include "core/baselines.h"
#include "core/budget.h"
#include "core/cover.h"
#include "core/fairness.h"
#include "core/greedy.h"
#include "core/maximin.h"
#include "core/objectives.h"
#include "sim/rr_oracle.h"

namespace tcim {
namespace {

Solution FromGreedyResult(GreedyResult result, const GroupAssignment& groups) {
  Solution solution;
  solution.seeds = std::move(result.seeds);
  solution.coverage = std::move(result.coverage);
  solution.normalized = NormalizeCoverage(solution.coverage, groups);
  solution.objective_value = result.objective_value;
  solution.target_reached = result.target_reached;
  solution.trace = std::move(result.trace);
  solution.diagnostics.oracle_calls = result.oracle_calls;
  return solution;
}

// The paper's engine: lazy greedy over the objective matching the problem
// kind — exactly the wiring of SolveTcimBudget / SolveFairTcimBudget /
// SolveTcimCover / SolveFairTcimCover.
class GreedySolver : public Solver {
 public:
  std::string name() const override { return "greedy"; }
  std::string description() const override {
    return "CELF lazy greedy on the problem's submodular (surrogate) "
           "objective";
  }
  bool Supports(ProblemKind kind) const override {
    return kind != ProblemKind::kMaximin;
  }

  Result<Solution> Run(SolverContext& context) const override {
    const ProblemSpec& spec = context.spec();
    const SolveOptions& options = context.options();
    GroupCoverageOracle& oracle = context.oracle();

    GreedyOptions greedy;
    greedy.lazy = options.lazy;
    greedy.stochastic_epsilon = options.stochastic_epsilon;
    greedy.candidates = options.candidates;

    GreedyResult result;
    switch (spec.kind) {
      case ProblemKind::kBudget: {
        TotalInfluenceObjective objective;
        greedy.max_seeds = spec.budget;
        result = RunGreedy(oracle, objective, greedy);
        break;
      }
      case ProblemKind::kFairBudget: {
        ConcaveSumObjective::Options objective_options;
        objective_options.weights = spec.group_policy.weights;
        objective_options.normalize_by_group_size =
            spec.group_policy.normalize_by_group_size;
        ConcaveSumObjective objective(spec.concave, &context.groups(),
                                      std::move(objective_options));
        greedy.max_seeds = spec.budget;
        result = RunGreedy(oracle, objective, greedy);
        break;
      }
      case ProblemKind::kCover: {
        TotalQuotaObjective objective(spec.quota, context.graph().num_nodes());
        greedy.max_seeds = options.max_seeds;
        greedy.target_value = objective.SaturationValue();
        result = RunGreedy(oracle, objective, greedy);
        break;
      }
      case ProblemKind::kFairCover: {
        TruncatedQuotaObjective objective(spec.quota, &context.groups());
        greedy.max_seeds = options.max_seeds;
        greedy.target_value = objective.SaturationValue();
        result = RunGreedy(oracle, objective, greedy);
        break;
      }
      case ProblemKind::kMaximin:
        return InternalError("greedy solver dispatched a maximin spec");
    }
    return FromGreedyResult(std::move(result), context.groups());
  }
};
TCIM_REGISTER_SOLVER(GreedySolver)

// SATURATE (Krause et al., JMLR'08) for the maximin-fairness problem.
class SaturateSolver : public Solver {
 public:
  std::string name() const override { return "saturate"; }
  std::string description() const override {
    return "SATURATE binary search over truncated-quota greedy (maximin "
           "group fairness)";
  }
  bool Supports(ProblemKind kind) const override {
    return kind == ProblemKind::kMaximin;
  }

  Result<Solution> Run(SolverContext& context) const override {
    const ProblemSpec& spec = context.spec();
    MaximinOptions options;
    options.budget = spec.budget;
    options.budget_relaxation = spec.budget_relaxation;
    options.level_tolerance = spec.level_tolerance;
    options.lazy = context.options().lazy;
    options.candidates = context.options().candidates;
    MaximinResult result = SolveMaximinTcim(context.oracle(), options);

    Solution solution;
    solution.seeds = std::move(result.seeds);
    solution.coverage = std::move(result.coverage);
    solution.normalized = NormalizeCoverage(solution.coverage, context.groups());
    solution.objective_value = result.min_group_utility;
    solution.diagnostics.saturation_level = result.saturation_level;
    solution.diagnostics.probes = result.probes;
    return solution;
  }
};
TCIM_REGISTER_SOLVER(SaturateSolver)

// Direct weighted max-coverage on the RR sketch — the optional fast path
// past the RrOracle adapter. Where greedy+CELF re-walks a candidate's
// inverted-index entry on every surfaced heap pop, RrSketch::SelectSeeds*
// maintain exact per-(node, group) uncovered counts, so each iteration is
// one dense argmax sweep. Requires spec.oracle = "rr"; results agree with
// "greedy" on the same sketch up to tie-breaking (both maximize the same
// estimated objective).
class RrSelectSolver : public Solver {
 public:
  std::string name() const override { return "rr_select"; }
  std::string description() const override {
    return "direct weighted max-coverage on the RR sketch "
           "(requires oracle=rr)";
  }
  bool Supports(ProblemKind kind) const override {
    return kind == ProblemKind::kBudget || kind == ProblemKind::kFairBudget ||
           kind == ProblemKind::kFairCover;
  }

  Result<Solution> Run(SolverContext& context) const override {
    const ProblemSpec& spec = context.spec();
    if (spec.oracle != "rr") {
      return InvalidArgumentError(
          "solver \"rr_select\" runs directly on the RR sketch; set "
          "spec.oracle = \"rr\" (or use solver \"greedy\")");
    }
    auto* rr = dynamic_cast<RrOracle*>(&context.oracle());
    if (rr == nullptr) {
      return InternalError("oracle \"rr\" did not produce an RrOracle");
    }
    const RrSketch& sketch = rr->sketch();
    // The sketch may have been built deeper than the spec asks (deadline
    // classes / sweeps); select and score at the spec's own deadline.
    RrSelectOptions select;
    select.deadline = rr->effective_deadline();
    select.candidates = context.options().candidates;

    std::vector<NodeId> seeds;
    switch (spec.kind) {
      case ProblemKind::kBudget:
        seeds = sketch.SelectSeedsBudget(spec.budget,
                                         [](double z) { return z; }, select);
        break;
      case ProblemKind::kFairBudget: {
        if (!spec.group_policy.weights.empty() ||
            spec.group_policy.normalize_by_group_size) {
          return InvalidArgumentError(
              "solver \"rr_select\" supports fair_budget only with the "
              "default group policy (per-group weights and group-size "
              "normalization are not implemented here); use solver "
              "\"greedy\"");
        }
        const ConcaveFunction h = spec.concave;
        seeds = sketch.SelectSeedsBudget(spec.budget,
                                         [h](double z) { return h(z); }, select);
        break;
      }
      case ProblemKind::kFairCover:
        seeds = sketch.SelectSeedsCover(spec.quota, context.options().max_seeds,
                                        select);
        break;
      default:
        return InternalError("rr_select dispatched an unsupported spec");
    }

    Solution solution;
    solution.seeds = std::move(seeds);
    solution.coverage = sketch.EstimateGroupCoverage(solution.seeds, select);
    solution.normalized = NormalizeCoverage(solution.coverage, context.groups());
    if (spec.kind == ProblemKind::kFairCover) {
      const TruncatedQuotaObjective objective(spec.quota, &context.groups());
      solution.objective_value = objective.Value(solution.coverage);
      solution.target_reached =
          solution.objective_value >= objective.SaturationValue() - 1e-9;
    } else {
      solution.objective_value = internal::BudgetObjectiveValue(
          spec, context.groups(), solution.coverage);
    }
    solution.diagnostics.oracle_calls =
        static_cast<int64_t>(solution.seeds.size());
    return solution;
  }
};
TCIM_REGISTER_SOLVER(RrSelectSolver)

// Structure-driven baseline seeders (core/baselines.h). They pick seeds
// without an oracle — when the fresh-world evaluation is on (the default),
// no selection oracle is sampled at all and Solve() backfills the coverage
// numbers from the evaluation report. Only with evaluation disabled do
// they replay the seeds through the selection oracle (which also yields a
// per-seed trace), so Solution still carries estimates.
class BaselineSolver : public Solver {
 public:
  bool Supports(ProblemKind kind) const override {
    return kind == ProblemKind::kBudget || kind == ProblemKind::kFairBudget;
  }

  Result<Solution> Run(SolverContext& context) const override {
    const std::vector<NodeId> seeds = PickSeeds(context);
    Solution solution;
    solution.seeds = seeds;
    if (context.options().evaluate) return solution;

    GroupCoverageOracle& oracle = context.oracle();
    oracle.Reset();
    for (const NodeId seed : seeds) {
      const GroupVector gain = oracle.AddSeed(seed);
      SolutionStep step;
      step.node = seed;
      step.gain = GroupVectorTotal(gain);
      step.coverage = oracle.group_coverage();
      step.objective_value = GroupVectorTotal(step.coverage);
      solution.trace.push_back(std::move(step));
    }
    solution.coverage = oracle.group_coverage();
    solution.normalized = NormalizeCoverage(solution.coverage, context.groups());
    solution.objective_value = internal::BudgetObjectiveValue(
        context.spec(), context.groups(), solution.coverage);
    solution.diagnostics.oracle_calls =
        static_cast<int64_t>(seeds.size());
    return solution;
  }

 protected:
  virtual std::vector<NodeId> PickSeeds(SolverContext& context) const = 0;
};

class DegreeSolver : public BaselineSolver {
 public:
  std::string name() const override { return "degree"; }
  std::string description() const override {
    return "top-B nodes by out-degree (heuristic baseline)";
  }

 protected:
  std::vector<NodeId> PickSeeds(SolverContext& context) const override {
    return TopDegreeSeeds(context.graph(), context.spec().budget);
  }
};
TCIM_REGISTER_SOLVER(DegreeSolver)

class DegreeDiscountSolver : public BaselineSolver {
 public:
  std::string name() const override { return "degree_discount"; }
  std::string description() const override {
    return "DegreeDiscount (Chen et al., KDD'09) heuristic baseline";
  }

 protected:
  std::vector<NodeId> PickSeeds(SolverContext& context) const override {
    return DegreeDiscountSeeds(context.graph(), context.spec().budget);
  }
};
TCIM_REGISTER_SOLVER(DegreeDiscountSolver)

class PageRankSolver : public BaselineSolver {
 public:
  std::string name() const override { return "pagerank"; }
  std::string description() const override {
    return "top-B nodes by PageRank (heuristic baseline)";
  }

 protected:
  std::vector<NodeId> PickSeeds(SolverContext& context) const override {
    return PageRankSeeds(context.graph(), context.spec().budget);
  }
};
TCIM_REGISTER_SOLVER(PageRankSolver)

class RandomSolver : public BaselineSolver {
 public:
  std::string name() const override { return "random"; }
  std::string description() const override {
    return "B uniform-random seeds (baseline; SolveOptions::baseline_seed)";
  }

 protected:
  std::vector<NodeId> PickSeeds(SolverContext& context) const override {
    Rng rng(context.options().baseline_seed);
    return RandomSeeds(context.graph(), context.spec().budget, rng);
  }
};
TCIM_REGISTER_SOLVER(RandomSolver)

class GroupProportionalDegreeSolver : public BaselineSolver {
 public:
  std::string name() const override { return "group_proportional_degree"; }
  std::string description() const override {
    return "top-degree with per-group proportional slots (diversity "
           "heuristic baseline)";
  }

 protected:
  std::vector<NodeId> PickSeeds(SolverContext& context) const override {
    return GroupProportionalDegreeSeeds(context.graph(), context.groups(),
                                        context.spec().budget);
  }
};
TCIM_REGISTER_SOLVER(GroupProportionalDegreeSolver)

}  // namespace

namespace internal {

void AnchorBuiltinSolvers() {}

double BudgetObjectiveValue(const ProblemSpec& spec,
                            const GroupAssignment& groups,
                            const GroupVector& coverage) {
  if (spec.kind == ProblemKind::kFairBudget) {
    ConcaveSumObjective::Options options;
    options.weights = spec.group_policy.weights;
    options.normalize_by_group_size = spec.group_policy.normalize_by_group_size;
    const ConcaveSumObjective objective(spec.concave, &groups,
                                        std::move(options));
    return objective.Value(coverage);
  }
  return GroupVectorTotal(coverage);
}

}  // namespace internal

}  // namespace tcim
