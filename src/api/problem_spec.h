// ProblemSpec — a value-type description of ONE time-critical influence
// maximization problem instance, covering the paper's whole family:
//
//   kBudget      P1  max f_τ(S;V)            s.t. |S| ≤ B
//   kFairBudget  P4  max Σ_i λ_i H(f_τ(S;V_i)) s.t. |S| ≤ B
//   kCover       P2  min |S|                 s.t. f_τ(S;V)/|V| ≥ Q
//   kFairCover   P6  min |S|                 s.t. f_τ(S;V_i)/|V_i| ≥ Q ∀i
//   kMaximin         max min_i f_τ(S;V_i)/|V_i| s.t. |S| ≤ B  (SATURATE)
//
// A spec names WHAT to solve (problem kind, deadline, budget/quota, group
// policy, diffusion model) and WHICH machinery to use (solver registry key,
// oracle backend). HOW hard to work (worlds, seeds, laziness, threads) lives
// in SolveOptions so one spec can be solved at different fidelities.
//
// All user-input validation returns Status (never CHECK-crashes): see
// ProblemSpec::Validate / ValidateFor and SolveOptions::Validate.

#ifndef TCIM_API_PROBLEM_SPEC_H_
#define TCIM_API_PROBLEM_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/concave.h"
#include "graph/graph.h"
#include "graph/groups.h"
#include "sim/cascade.h"
#include "sim/live_edge.h"

namespace tcim {

enum class ProblemKind {
  kBudget = 0,   // P1
  kFairBudget,   // P4
  kCover,        // P2
  kFairCover,    // P6
  kMaximin,
};

// Stable lowercase name: "budget", "fair_budget", "cover", "fair_cover",
// "maximin".
const char* ProblemKindName(ProblemKind kind);

// True for the problems whose primal knob is the seed budget B (P1, P4,
// maximin); false for the quota-driven cover problems (P2, P6). Shared by
// spec validation and the Engine's RR sketch sizing so the two can never
// disagree on what "budget-family" means.
bool UsesBudget(ProblemKind kind);
bool UsesQuota(ProblemKind kind);

// Parses a kind name; also accepts the paper's labels "p1", "p4", "p2",
// "p6". The error message lists every accepted spelling.
Result<ProblemKind> ParseProblemKind(const std::string& text);

// Validates the deadline list of a sweep spec (Engine::SolveSweep,
// --deadlines): non-empty, every deadline positive (kNoDeadline = ∞ is
// allowed), no duplicates. Per-point constraints (e.g. the arrival
// backend's finite-horizon requirement) are still checked per solve.
Status ValidateSweepDeadlines(const std::vector<int>& deadlines);

// Parses a "--deadlines=1,2,5,10,20,inf" style list ("inf"/"none" =
// kNoDeadline); the result is already ValidateSweepDeadlines-checked.
Result<std::vector<int>> ParseDeadlineList(const std::string& text);

// Per-group weighting policy for the fair-budget objective (P4):
// Σ_i λ_i H(s_i · f_i) with λ from `weights` and s_i = 1/|V_i| when
// `normalize_by_group_size`.
struct GroupPolicy {
  // λ_i per group; empty means all 1. Must match num_groups when set.
  std::vector<double> weights;
  bool normalize_by_group_size = false;
};

struct ProblemSpec {
  ProblemKind kind = ProblemKind::kBudget;

  // Time deadline τ; kNoDeadline means τ = ∞.
  int deadline = kNoDeadline;

  // Seed budget B (budget / fair-budget / maximin problems).
  int budget = 30;

  // Coverage quota Q ∈ (0, 1] (cover / fair-cover problems).
  double quota = 0.2;

  // Concave wrapper H for the fair-budget surrogate (P4).
  ConcaveFunction concave = ConcaveFunction::Log();
  GroupPolicy group_policy;

  DiffusionModel model = DiffusionModel::kIndependentCascade;

  // Registry key of the solver; empty picks DefaultSolverName(kind).
  std::string solver;

  // Oracle backend: "montecarlo" (bit-packed covered sets, the paper's
  // Eq. 1 step utility), "arrival" (earliest-arrival times with general
  // temporal weights / IC-M delays), or "rr" (reverse-reachable sketches
  // with IMM-style sizing — the fast backend for repeated cover/budget
  // queries; see sim/rr_sets.h and SolveOptions::rr_*). See api/solve.h.
  std::string oracle = "montecarlo";

  // Arrival-backend temporal weight: "step", "exponential", or "linear"
  // (all need a finite deadline as horizon).
  std::string temporal_weight = "step";
  // Discount factor γ for temporal_weight == "exponential".
  double discount_gamma = 0.98;
  // Meeting probability m of IC-M transmission delays; 1 = classic unit
  // delays (only meaningful for the arrival backend).
  double meeting_probability = 1.0;

  // Maximin (SATURATE) knobs; see core/maximin.h.
  double budget_relaxation = 1.0;
  double level_tolerance = 1e-3;

  // Graph-independent sanity checks with precise messages.
  Status Validate() const;
  // Validate() plus instance-dependent checks (budget vs n, weight arity).
  Status ValidateFor(const Graph& graph, const GroupAssignment& groups) const;
  // The subset of checks evaluation depends on (deadline, oracle backend,
  // graph/groups arity) — solver-only fields like budget and quota are
  // irrelevant when only re-estimating an existing seed set.
  Status ValidateForEvaluation(const Graph& graph,
                               const GroupAssignment& groups) const;

  // Convenience constructors for the five problems.
  static ProblemSpec Budget(int budget, int deadline = kNoDeadline);
  static ProblemSpec FairBudget(int budget, int deadline = kNoDeadline,
                                ConcaveFunction h = ConcaveFunction::Log());
  static ProblemSpec Cover(double quota, int deadline = kNoDeadline);
  static ProblemSpec FairCover(double quota, int deadline = kNoDeadline);
  static ProblemSpec Maximin(int budget, int deadline = kNoDeadline);
};

// Effort/fidelity knobs, independent of what is being solved. Defaults
// reproduce the legacy ExperimentConfig protocol (§6.1): selection on one
// world set, evaluation on an independent one.
struct SolveOptions {
  // Monte-Carlo worlds used for seed selection.
  int num_worlds = 200;
  // Worlds for the fresh-world evaluation; 0 means "same as num_worlds".
  int eval_num_worlds = 0;
  uint64_t selection_seed = 0x5e1ec7ull;
  uint64_t evaluation_seed = 0xe7a1ull;

  // Re-estimate the chosen seeds on independent worlds (Solution.evaluation).
  bool evaluate = true;

  // CELF lazy evaluation (identical output to plain greedy up to ties).
  bool lazy = true;
  // Stochastic greedy ε (Mirzasoleiman et al. AAAI'15); 0 disables.
  double stochastic_epsilon = 0.0;

  // Safety cap on |S| for the cover problems.
  int max_seeds = 500;

  // Restrict selection to these nodes; nullptr allows every node. Must
  // outlive the Solve call.
  const std::vector<NodeId>* candidates = nullptr;

  // RNG seed for randomized baseline solvers (e.g. "random").
  uint64_t baseline_seed = 0xba5e11ull;

  // --- RR-set ("rr") backend knobs. ---------------------------------------
  // RR sets sampled per group. 0 = size automatically: IMM-style adaptive
  // sizing (sim/imm_sizing.cc, driven by rr_epsilon/rr_delta and the
  // spec's budget) for the budget-family problems, the RrSketchOptions
  // default fixed count for the cover problems (whose seed count is an
  // output, not an input, so the IMM budget term does not apply).
  int rr_sets_per_group = 0;
  // Approximation slack ε of the adaptive sizing's (1 − 1/e − ε)
  // guarantee; smaller = bigger sketch. Must be in (0, 1).
  double rr_epsilon = 0.3;
  // Failure probability δ of that guarantee. Must be in (0, 1).
  double rr_delta = 0.05;

  // Floor for the deadline oracle backends are BUILT at (they are
  // deadline-parametric: one build at deadline τ answers every effective
  // deadline τ' ≤ τ, see api/engine.h "Deadline-parametric backends").
  // Engine::SolveSweep sets this to the sweep's largest deadline so every
  // sweep point shares a single build; 0 means "the spec's own deadline
  // class". Accepts 0, a positive deadline, or kNoDeadline.
  int min_backend_deadline = 0;

  // Worker threads for oracle queries (Engine::Solve) and for the
  // solve-level fan-out (Engine::SolveBatch): 0 uses the engine's pool (or
  // the process default); > 0 runs this call on a dedicated pool of that
  // size. Negative values are an InvalidArgument. Ignored when `pool` is
  // set. CLI binaries expose this as --threads.
  int num_threads = 0;

  // Worker pool; nullptr derives one from num_threads as described above.
  ThreadPool* pool = nullptr;

  Status Validate(const Graph& graph) const;
};

}  // namespace tcim

#endif  // TCIM_API_PROBLEM_SPEC_H_
