// tcim::Engine — a reusable solve session over one (graph, groups).
//
// tcim::Solve() is a one-shot: every call samples its oracle backend from
// scratch, which dominates the cost of repeated queries over the same
// network. An Engine is constructed once and answers many queries, keeping
// an LRU cache of materialized oracle backends. A cached backend is one of
//
//   * a WorldEnsemble (sim/world_ensemble.h) — sampled live-edge worlds
//     for the "montecarlo" and "arrival" oracles, keyed by (diffusion
//     model, num_worlds, sampler seed [, delay distribution for the
//     geometric-delay arrival backend]) — deadline-free, since the cursor
//     applies the deadline at query time;
//   * an RrSketch (sim/rr_sets.h) — reverse-reachable sets for the "rr"
//     oracle, keyed by (diffusion model, max-τ class, sets-per-group — or,
//     when sized adaptively, the IMM inputs budget/ε/δ — and sampler
//     seed);
//
// so every spec sharing a backend — repeated Solves, SolveBatch siblings,
// EvaluateSeeds audits — pays sampling once. Backends are immutable; each
// solve queries them through its own freshly-allocated oracle cursor, so
// concurrent solves never race and cached state is never mutated. Results
// are bit-identical to the one-shot path: the free functions tcim::Solve /
// tcim::EvaluateSeeds are now thin wrappers that construct a throwaway
// Engine.
//
//   tcim::Engine engine(graph, groups);
//   auto a = engine.Solve(spec);                  // cold: samples worlds
//   auto b = engine.Solve(spec);                  // warm: cache hit
//   auto batch = engine.SolveBatch(specs);        // parallel over specs
//   auto pending = engine.SubmitSolve(spec);      // async, returns a future
//   engine.cache_stats();                         // hits / misses / bytes
//
// Deadline-parametric backends: every backend answers EVERY effective
// deadline τ' up to the deadline it was built at, so cache keys
// canonicalize the deadline out. World ensembles record per-edge delays
// (liveness coins are deadline-independent) and their oracle cursors apply
// τ' at query time, so their keys carry no deadline at all — a montecarlo
// ensemble even serves the unit-delay arrival oracle. RR sketches record
// each member's hop distance to its root and filter by τ' at query time;
// their keys carry a max-τ CLASS (the deadline rounded up to the next
// power of two, floored by SolveOptions::min_backend_deadline) instead of
// the deadline itself, so nearby deadlines share one build. On top of
// that, Engine::SolveSweep solves one spec at many deadlines off a single
// build per backend kind:
//
//   auto sweep = engine.SolveSweep(spec, {1, 2, 5, 10, 20, kNoDeadline});
//   // sweep.solutions[i] answers deadlines[i];
//   // sweep.after - sweep.before shows constructions == 1 per backend
//   // kind (per selection/evaluation role).
//
// Thread safety: Solve, EvaluateSeeds, SolveBatch, SubmitSolve, SolveSweep,
// cache_stats and Invalidate may all be called concurrently from any
// thread. SolveBatch fans out over specs on a worker pool and runs each
// solve's oracle serially (parallelism moves from worlds to solves);
// SubmitSolve schedules the same way and returns immediately.

#ifndef TCIM_API_ENGINE_H_
#define TCIM_API_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "api/problem_spec.h"
#include "api/solution.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/fairness.h"
#include "graph/graph.h"
#include "graph/groups.h"
#include "sim/oracle_interface.h"
#include "sim/rr_sets.h"
#include "sim/world_ensemble.h"

namespace tcim {

struct EngineOptions {
  // Distinct oracle backends kept warm; least-recently-used beyond this
  // are dropped. Must be >= 1.
  int max_cached_backends = 8;

  // Unified resident-bytes budget for the backend cache — the per-engine
  // (per-tenant, under an EngineRegistry) cache budget. Enforced at two
  // points:
  //   (a) a world ensemble whose ESTIMATED footprint alone exceeds the
  //       budget falls back to hash-on-the-fly world sampling (still
  //       correct, still cached as a 0-byte entry so the decision is made
  //       once);
  //   (b) whenever a build lands, resident bytes — worlds AND RR sketches;
  //       sketches count toward the budget too since the registry refactor
  //       (PR 3 had them exempt) — above the budget evict least-recently-
  //       used entries until back within it. The entry just built is never
  //       evicted by its own enforcement pass, so a single over-budget
  //       sketch still materializes and serves its waiters (a sketch IS the
  //       oracle's data structure; there is nothing to fall back to).
  size_t max_ensemble_bytes = size_t{512} << 20;  // 512 MiB

  // Engine-owned worker pool size for oracle queries and batch fan-out;
  // 0 shares ThreadPool::Default(). Must be >= 0.
  int num_threads = 0;

  // External pool override (wins over num_threads); must outlive the
  // Engine. This is the shared-pool seam: an EngineRegistry injects ONE
  // worker pool here for every tenant engine, so a 64-tenant registry does
  // not spawn 64 x N threads.
  ThreadPool* pool = nullptr;

  // Shared last-use clock for cross-engine LRU comparison. Every cache
  // touch (hit or insert) stamps the entry with a fresh reading, so two
  // engines handed the same clock (EngineRegistry does this) have directly
  // comparable CacheEntry recency — the basis of cross-tenant "the
  // least-recently-used entry ANYWHERE loses" eviction. nullptr uses an
  // engine-local clock; must outlive the Engine when set.
  std::atomic<uint64_t>* lru_clock = nullptr;

  // Invoked on the builder thread — outside every engine lock — right
  // after a finished build's bytes are recorded in the cache accounting.
  // The EngineRegistry hangs its global-budget enforcement pass off this;
  // production single-engine code leaves it empty. Must not call back into
  // this engine's Solve family (it MAY call the byte-accounting queries
  // and eviction entry points below).
  std::function<void()> resident_bytes_changed;

  // Test-only hook, invoked on the builder thread at the start of every
  // backend construction. Tests use it to block a build mid-flight or to
  // throw (simulating a failed build); production code leaves it empty.
  std::function<void()> backend_build_hook_for_test;
};

// Observability snapshot of the backend cache, overall and split by
// backend kind (world ensembles vs RR sketches) so a mixed-oracle workload
// shows where the cache's memory and build work actually go.
struct CacheStats {
  int64_t hits = 0;        // backend requests served from cache
  int64_t misses = 0;      // backend requests that had to build
  int64_t constructions = 0;  // backends actually materialized (== misses
                              // unless max_ensemble_bytes forced world
                              // fallbacks)
  int64_t evictions = 0;   // LRU drops (entry-count cap or byte budget)
  int64_t invalidations = 0;  // Invalidate() calls
  size_t entries = 0;      // backends currently cached (all kinds)
  size_t ensemble_bytes = 0;  // bytes held by cached world ensembles

  // Per-kind split of `entries`, plus the sketch analogue of
  // `ensemble_bytes`.
  size_t world_entries = 0;   // cached entries holding (or building) worlds
  size_t sketch_entries = 0;  // cached entries holding (or building) sketches
  size_t sketch_bytes = 0;    // bytes held by cached RR sketches

  // Per-kind split of `constructions` — the observable proof that a
  // deadline sweep materialized ONE backend per kind (per selection /
  // evaluation role) instead of one per deadline.
  int64_t world_constructions = 0;
  int64_t sketch_constructions = 0;

  // "hits=9 misses=2 ... bytes=1.5MiB" one-liner for logs.
  std::string DebugString() const;
};

class Engine {
 public:
  // Keeps references to `graph` and `groups`; both must outlive the
  // Engine. Construction is cheap — no worlds are sampled until a solve
  // asks for them.
  Engine(const Graph& graph, const GroupAssignment& groups,
         const EngineOptions& options = EngineOptions());
  // Blocks until every SubmitSolve future has been fulfilled.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const Graph& graph() const { return graph_; }
  const GroupAssignment& groups() const { return groups_; }
  const EngineOptions& options() const { return options_; }

  // Solves `spec`, reusing any cached backend. Identical results to
  // tcim::Solve (seed-for-seed); errors are precise Statuses, never
  // crashes.
  Result<Solution> Solve(const ProblemSpec& spec,
                         const SolveOptions& options = SolveOptions());

  // Evaluates an externally chosen seed set on the spec's *evaluation*
  // worlds — the audit path — through the same backend cache, so repeated
  // audits of one spec sample worlds once.
  Result<GroupUtilityReport> EvaluateSeeds(
      const std::vector<NodeId>& seeds, const ProblemSpec& spec,
      const SolveOptions& options = SolveOptions());

  // Solves every spec, fanned out over the engine's worker pool (or a
  // dedicated pool of options.num_threads). results[i] corresponds to
  // specs[i] and is seed-for-seed identical to a sequential Solve(specs[i]).
  std::vector<Result<Solution>> SolveBatch(
      std::span<const ProblemSpec> specs,
      const SolveOptions& options = SolveOptions());

  // One spec solved at many deadlines off one backend build per kind.
  struct SweepResult {
    // Echoes the request; solutions[i] answers deadlines[i]. A rejected
    // EMPTY request still yields one aligned (deadline 0, failed Status)
    // pair so error scans and zips stay well-defined.
    std::vector<int> deadlines;
    std::vector<Result<Solution>> solutions;
    // Engine-wide cache snapshots at entry and exit; on an otherwise idle
    // engine their counter deltas are exactly this sweep's story (e.g.
    // after.sketch_constructions - before.sketch_constructions == 1 for an
    // rr sweep with evaluation off).
    CacheStats before;
    CacheStats after;
  };

  // Solves `spec` once per deadline in `deadlines` (each entry overrides
  // spec.deadline; the spec's own deadline field is ignored). All points
  // run with min_backend_deadline raised to the sweep's largest deadline,
  // so every deadline is answered from ONE cached build per backend kind —
  // the deadline-sweep shape of the paper's fig04c/fig05 at one build's
  // cost. Fan-out and result alignment follow SolveBatch; an invalid
  // deadline list fails every entry (at least one, even when the list is
  // empty) with the same precise Status. One exception to the one-build
  // story: adaptively-sized (IMM) rr sketches build per deadline to keep
  // the (1−1/e−ε, δ) guarantee at each τ — pin
  // SolveOptions::rr_sets_per_group for a one-build rr sweep.
  SweepResult SolveSweep(const ProblemSpec& spec,
                         const std::vector<int>& deadlines,
                         const SolveOptions& options = SolveOptions());

  // Schedules an asynchronous Solve and returns immediately. The future is
  // fulfilled on a worker thread; safe to call concurrently with everything
  // else. `options.candidates` (if set) must stay alive until the future
  // resolves. `keepalive` (optional) is held by the scheduled task and
  // released on the worker AFTER the task has been accounted done — the
  // EngineRegistry passes the tenant handle here so an Unregister cannot
  // destroy the engine under a still-queued async solve.
  std::future<Result<Solution>> SubmitSolve(
      const ProblemSpec& spec, const SolveOptions& options = SolveOptions(),
      std::shared_ptr<const void> keepalive = nullptr);

  // Snapshot of cache counters (thread-safe).
  CacheStats cache_stats() const;

  // --- Byte accounting, the registry-facing face of the cache. -------------
  // An EngineRegistry drives cross-tenant eviction through these three
  // (they are ordinary thread-safe public API — tests use them too).

  // Bytes held by completed cache entries, tracked incrementally (equals
  // cache_stats().ensemble_bytes + sketch_bytes without walking the cache).
  size_t resident_bytes() const;

  // One completed, byte-holding cache entry as the eviction policy sees it.
  struct ResidentEntry {
    bool found = false;
    uint64_t last_used = 0;  // LRU-clock reading at the entry's last touch
    size_t bytes = 0;
  };

  // The least-recently-used completed entry whose eviction would keep
  // resident_bytes() >= min_resident_bytes (the per-tenant floor);
  // found == false when no entry qualifies. Entries still building hold no
  // recorded bytes yet and are never reported.
  ResidentEntry OldestEvictable(size_t min_resident_bytes = 0) const;

  // Evicts the entry OldestEvictable(min_resident_bytes) describes and
  // returns the bytes freed (0 when nothing qualifies, e.g. because the
  // floor blocks every candidate or the cache is empty).
  size_t EvictOldestEvictable(size_t min_resident_bytes = 0);

  // Drops every cached backend; the next solve per key rebuilds. Counters
  // other than `invalidations` are preserved.
  void Invalidate();

 private:
  // What one cache entry materializes: sampled worlds for the montecarlo /
  // arrival oracles (possibly absent when over the bytes cap — oracles
  // then hash worlds on the fly) or an RR sketch for the rr oracle (always
  // present). Published through a shared_future so concurrent requesters
  // of one key build once and wait.
  using BackendValue =
      std::variant<std::shared_ptr<const WorldEnsemble>,
                   std::shared_ptr<const RrSketch>>;
  enum class BackendKind { kWorlds, kSketch };
  struct CacheEntry {
    std::list<std::string>::iterator lru_position;
    BackendKind kind;
    // Monotonic insertion id: a failed builder erases its entry only if
    // the key still holds THIS generation (the entry may have been
    // evicted and re-created by a healthy build in the meantime). The same
    // check gates the post-build byte recording.
    uint64_t generation = 0;
    // Heap footprint recorded when the build finishes (0 while building,
    // and for world entries that fell back to hash-on-the-fly sampling).
    size_t bytes = 0;
    // LRU-clock reading at the last hit/insert; comparable across engines
    // sharing EngineOptions::lru_clock.
    uint64_t last_used = 0;
    std::shared_future<BackendValue> backend;
  };

  // A fresh reading of the LRU clock (shared or engine-local).
  uint64_t NextTick() const;

  // Drops `it`'s entry, maintaining the LRU list, the resident-bytes total
  // and the eviction counter. Requires cache_mutex_.
  void EvictEntryLocked(std::map<std::string, CacheEntry>::iterator it);

  // Evicts least-recently-used byte-holding entries (never `protect_key`)
  // until resident_bytes_ fits options_.max_ensemble_bytes. Requires
  // cache_mutex_.
  void EnforceByteBudgetLocked(const std::string& protect_key);

  // The worker pool for a top-level call: options.pool, else the engine's.
  ThreadPool& PoolFor(const SolveOptions& options) const;

  // PoolFor plus the --threads rule: num_threads > 0 (with no explicit
  // pool) gets a dedicated pool owned for the duration of the call.
  struct ResolvedPool {
    std::unique_ptr<ThreadPool> dedicated;  // set iff num_threads kicked in
    ThreadPool* pool = nullptr;             // never null
  };
  ResolvedPool ResolvePool(const SolveOptions& options) const;

  // Generic cache lookup: returns the (possibly still building) backend
  // for `key`, invoking `build` exactly once per cache residency of the
  // key. `build` runs outside the cache lock.
  std::shared_future<BackendValue> AcquireBackend(
      const std::string& key, BackendKind kind,
      const std::function<BackendValue()>& build);

  // Cache lookup/build of the world backend for (spec, worlds, seed);
  // `build_pool` runs the materialization. Returns nullptr when
  // materialization was skipped (bytes cap) — oracles then hash worlds on
  // the fly.
  std::shared_ptr<const WorldEnsemble> AcquireEnsemble(
      const ProblemSpec& spec, int num_worlds, uint64_t seed,
      ThreadPool& build_pool);

  // Cache lookup/build of the RR-sketch backend for (spec, options, seed).
  // Never null: the sketch is the oracle's data structure. With
  // SolveOptions::rr_sets_per_group == 0 the IMM adaptive sizing runs
  // inside the (cached, once-per-key) build — selection sketches only;
  // evaluation sketches use the fixed default (the IMM bound is a
  // selection guarantee, and the audit path must not depend on
  // solver-only spec fields).
  std::shared_ptr<const RrSketch> AcquireSketch(const ProblemSpec& spec,
                                                const SolveOptions& options,
                                                uint64_t seed, bool evaluation,
                                                ThreadPool& build_pool);

  // Builds the selection- (evaluation=false) or evaluation-time oracle for
  // a validated spec, on a cached backend.
  std::unique_ptr<GroupCoverageOracle> MakeOracle(const ProblemSpec& spec,
                                                  const SolveOptions& options,
                                                  bool evaluation,
                                                  ThreadPool& pool);

  // Coverage of `seeds` on the evaluation worlds of the spec's backend.
  GroupVector EvaluationCoverage(const std::vector<NodeId>& seeds,
                                 const ProblemSpec& spec,
                                 const SolveOptions& options,
                                 ThreadPool& pool);

  // Full solve with an explicit query pool (callers resolve --threads /
  // batch-context rules before this point).
  Result<Solution> SolveImpl(const ProblemSpec& spec,
                             const SolveOptions& options, ThreadPool& pool);
  Result<GroupUtilityReport> EvaluateSeedsImpl(const std::vector<NodeId>& seeds,
                                               const ProblemSpec& spec,
                                               const SolveOptions& options,
                                               ThreadPool& pool);

  const Graph& graph_;
  const GroupAssignment& groups_;
  EngineOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;  // when options_.num_threads > 0

  mutable std::mutex cache_mutex_;
  std::list<std::string> lru_;  // most recently used first
  std::map<std::string, CacheEntry> cache_;
  uint64_t next_generation_ = 0;  // guarded by cache_mutex_
  size_t resident_bytes_ = 0;     // guarded by cache_mutex_
  CacheStats stats_;
  // Engine-local LRU clock, used when options_.lru_clock is unset.
  mutable std::atomic<uint64_t> local_clock_{0};

  // In-flight SubmitSolve tasks; the destructor waits for them.
  mutable std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  int pending_ = 0;
};

}  // namespace tcim

#endif  // TCIM_API_ENGINE_H_
