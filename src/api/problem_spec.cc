#include "api/problem_spec.h"

#include <cctype>

#include "common/string_util.h"

namespace tcim {

bool UsesBudget(ProblemKind kind) {
  return kind == ProblemKind::kBudget || kind == ProblemKind::kFairBudget ||
         kind == ProblemKind::kMaximin;
}

bool UsesQuota(ProblemKind kind) {
  return kind == ProblemKind::kCover || kind == ProblemKind::kFairCover;
}

const char* ProblemKindName(ProblemKind kind) {
  switch (kind) {
    case ProblemKind::kBudget:
      return "budget";
    case ProblemKind::kFairBudget:
      return "fair_budget";
    case ProblemKind::kCover:
      return "cover";
    case ProblemKind::kFairCover:
      return "fair_cover";
    case ProblemKind::kMaximin:
      return "maximin";
  }
  return "unknown";
}

Result<ProblemKind> ParseProblemKind(const std::string& text) {
  if (text == "budget" || text == "p1") return ProblemKind::kBudget;
  if (text == "fair_budget" || text == "p4") return ProblemKind::kFairBudget;
  if (text == "cover" || text == "p2") return ProblemKind::kCover;
  if (text == "fair_cover" || text == "p6") return ProblemKind::kFairCover;
  if (text == "maximin") return ProblemKind::kMaximin;
  return InvalidArgumentError(
      "unknown problem \"" + text +
      "\"; expected budget (p1), fair_budget (p4), cover (p2), "
      "fair_cover (p6), or maximin");
}

Status ValidateSweepDeadlines(const std::vector<int>& deadlines) {
  if (deadlines.empty()) {
    return InvalidArgumentError("a deadline sweep needs at least one deadline");
  }
  for (size_t i = 0; i < deadlines.size(); ++i) {
    if (deadlines[i] <= 0) {
      return InvalidArgumentError(StrFormat(
          "sweep deadline #%zu must be positive (use kNoDeadline for "
          "infinity), got %d",
          i, deadlines[i]));
    }
    for (size_t j = 0; j < i; ++j) {
      // Both kNoDeadline and any value >= it mean "infinity".
      const bool same = deadlines[i] >= kNoDeadline
                            ? deadlines[j] >= kNoDeadline
                            : deadlines[j] == deadlines[i];
      if (same) {
        return InvalidArgumentError(StrFormat(
            "sweep deadline #%zu duplicates #%zu (%s)", i, j,
            deadlines[i] >= kNoDeadline
                ? "infinity"
                : StrFormat("%d", deadlines[i]).c_str()));
      }
    }
  }
  return Status::Ok();
}

Result<std::vector<int>> ParseDeadlineList(const std::string& text) {
  std::vector<int> deadlines;
  std::string token;
  const auto flush = [&]() -> Status {
    if (token.empty()) {
      return InvalidArgumentError("empty deadline entry in \"" + text + "\"");
    }
    if (token == "inf" || token == "none") {
      deadlines.push_back(kNoDeadline);
    } else {
      int64_t value = 0;
      if (!ParseInt64(token, &value)) {
        return InvalidArgumentError("cannot parse deadline \"" + token +
                                    "\" (expected an integer, \"inf\", or "
                                    "\"none\")");
      }
      // Range-check BEFORE narrowing: a wrapped int would silently run
      // the sweep at the wrong deadline.
      if (value <= 0 || value > kNoDeadline) {
        return InvalidArgumentError(StrFormat(
            "deadline \"%s\" is out of range [1, %d]; use \"inf\" for "
            "infinity",
            token.c_str(), kNoDeadline));
      }
      deadlines.push_back(static_cast<int>(value));
    }
    token.clear();
    return Status::Ok();
  };
  // Whitespace is allowed around entries, never inside one: "1 0" must be
  // rejected, not silently read as "10".
  bool token_interrupted = false;
  for (const char c : text) {
    if (c == ',') {
      TCIM_RETURN_IF_ERROR(flush());
      token_interrupted = false;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      if (!token.empty()) token_interrupted = true;
    } else {
      if (token_interrupted) {
        return InvalidArgumentError("unexpected space inside deadline entry "
                                    "near \"" +
                                    token + "\" in \"" + text + "\"");
      }
      token += c;
    }
  }
  TCIM_RETURN_IF_ERROR(flush());
  TCIM_RETURN_IF_ERROR(ValidateSweepDeadlines(deadlines));
  return deadlines;
}

namespace {

// The checks shared by solving and evaluation: deadline and the oracle
// backend configuration.
Status ValidateOracleConfig(const ProblemSpec& spec) {
  if (spec.deadline <= 0) {
    return InvalidArgumentError(
        StrFormat("deadline must be positive (use kNoDeadline for infinity), "
                  "got %d",
                  spec.deadline));
  }
  if (spec.oracle != "montecarlo" && spec.oracle != "arrival" &&
      spec.oracle != "rr") {
    return InvalidArgumentError("unknown oracle \"" + spec.oracle +
                                "\"; known backends: montecarlo, arrival, rr");
  }
  if (spec.oracle == "arrival") {
    if (spec.temporal_weight != "step" && spec.temporal_weight != "exponential" &&
        spec.temporal_weight != "linear") {
      return InvalidArgumentError(
          "unknown temporal_weight \"" + spec.temporal_weight +
          "\"; known weights: step, exponential, linear");
    }
    if (spec.deadline >= kNoDeadline) {
      return InvalidArgumentError(
          "the arrival oracle needs a finite deadline as its horizon; "
          "got deadline = infinity");
    }
    if (spec.temporal_weight == "exponential" &&
        (spec.discount_gamma <= 0.0 || spec.discount_gamma > 1.0)) {
      return InvalidArgumentError(
          StrFormat("discount_gamma must be in (0, 1], got %s",
                    FormatDouble(spec.discount_gamma).c_str()));
    }
    if (spec.meeting_probability <= 0.0 || spec.meeting_probability > 1.0) {
      return InvalidArgumentError(
          StrFormat("meeting_probability must be in (0, 1], got %s",
                    FormatDouble(spec.meeting_probability).c_str()));
    }
  }
  return Status::Ok();
}

// Graph/groups arity checks shared by solving and evaluation.
Status ValidateInstance(const Graph& graph, const GroupAssignment& groups) {
  if (graph.num_nodes() == 0) {
    return InvalidArgumentError("graph has no nodes");
  }
  if (groups.num_nodes() != graph.num_nodes()) {
    return InvalidArgumentError(StrFormat(
        "group assignment covers %d nodes but the graph has %d",
        groups.num_nodes(), graph.num_nodes()));
  }
  return Status::Ok();
}

}  // namespace

Status ProblemSpec::Validate() const {
  TCIM_RETURN_IF_ERROR(ValidateOracleConfig(*this));
  if (UsesBudget(kind) && budget <= 0) {
    return InvalidArgumentError(StrFormat(
        "problem \"%s\" needs a positive budget, got %d", ProblemKindName(kind),
        budget));
  }
  if (UsesQuota(kind) && (quota <= 0.0 || quota > 1.0)) {
    return InvalidArgumentError(
        StrFormat("problem \"%s\" needs a quota in (0, 1], got %s",
                  ProblemKindName(kind), FormatDouble(quota).c_str()));
  }
  if (kind == ProblemKind::kMaximin) {
    if (budget_relaxation < 1.0) {
      return InvalidArgumentError(
          StrFormat("budget_relaxation must be >= 1, got %s",
                    FormatDouble(budget_relaxation).c_str()));
    }
    if (level_tolerance <= 0.0) {
      return InvalidArgumentError(
          StrFormat("level_tolerance must be positive, got %s",
                    FormatDouble(level_tolerance).c_str()));
    }
  }
  return Status::Ok();
}

Status ProblemSpec::ValidateFor(const Graph& graph,
                                const GroupAssignment& groups) const {
  TCIM_RETURN_IF_ERROR(Validate());
  TCIM_RETURN_IF_ERROR(ValidateInstance(graph, groups));
  if (UsesBudget(kind) && budget > graph.num_nodes()) {
    return InvalidArgumentError(
        StrFormat("budget %d exceeds the graph's %d nodes", budget,
                  graph.num_nodes()));
  }
  if (!group_policy.weights.empty() &&
      group_policy.weights.size() !=
          static_cast<size_t>(groups.num_groups())) {
    return InvalidArgumentError(StrFormat(
        "group_policy.weights has %zu entries but there are %d groups",
        group_policy.weights.size(), groups.num_groups()));
  }
  for (const double weight : group_policy.weights) {
    if (weight < 0.0) {
      return InvalidArgumentError(
          StrFormat("group_policy.weights must be nonnegative, got %s",
                    FormatDouble(weight).c_str()));
    }
  }
  return Status::Ok();
}

Status ProblemSpec::ValidateForEvaluation(const Graph& graph,
                                          const GroupAssignment& groups) const {
  TCIM_RETURN_IF_ERROR(ValidateOracleConfig(*this));
  return ValidateInstance(graph, groups);
}

ProblemSpec ProblemSpec::Budget(int budget, int deadline) {
  ProblemSpec spec;
  spec.kind = ProblemKind::kBudget;
  spec.budget = budget;
  spec.deadline = deadline;
  return spec;
}

ProblemSpec ProblemSpec::FairBudget(int budget, int deadline,
                                    ConcaveFunction h) {
  ProblemSpec spec;
  spec.kind = ProblemKind::kFairBudget;
  spec.budget = budget;
  spec.deadline = deadline;
  spec.concave = h;
  return spec;
}

ProblemSpec ProblemSpec::Cover(double quota, int deadline) {
  ProblemSpec spec;
  spec.kind = ProblemKind::kCover;
  spec.quota = quota;
  spec.deadline = deadline;
  return spec;
}

ProblemSpec ProblemSpec::FairCover(double quota, int deadline) {
  ProblemSpec spec;
  spec.kind = ProblemKind::kFairCover;
  spec.quota = quota;
  spec.deadline = deadline;
  return spec;
}

ProblemSpec ProblemSpec::Maximin(int budget, int deadline) {
  ProblemSpec spec;
  spec.kind = ProblemKind::kMaximin;
  spec.budget = budget;
  spec.deadline = deadline;
  return spec;
}

Status SolveOptions::Validate(const Graph& graph) const {
  if (num_worlds <= 0) {
    return InvalidArgumentError(
        StrFormat("num_worlds must be positive, got %d", num_worlds));
  }
  if (eval_num_worlds < 0) {
    return InvalidArgumentError(
        StrFormat("eval_num_worlds must be >= 0, got %d", eval_num_worlds));
  }
  if (stochastic_epsilon < 0.0 || stochastic_epsilon >= 1.0) {
    return InvalidArgumentError(
        StrFormat("stochastic_epsilon must be in [0, 1), got %s",
                  FormatDouble(stochastic_epsilon).c_str()));
  }
  if (max_seeds <= 0) {
    return InvalidArgumentError(
        StrFormat("max_seeds must be positive, got %d", max_seeds));
  }
  if (rr_sets_per_group < 0) {
    return InvalidArgumentError(StrFormat(
        "rr_sets_per_group must be >= 0 (0 = size automatically), got %d",
        rr_sets_per_group));
  }
  if (rr_epsilon <= 0.0 || rr_epsilon >= 1.0) {
    return InvalidArgumentError(
        StrFormat("rr_epsilon must be in (0, 1), got %s",
                  FormatDouble(rr_epsilon).c_str()));
  }
  if (rr_delta <= 0.0 || rr_delta >= 1.0) {
    return InvalidArgumentError(
        StrFormat("rr_delta must be in (0, 1), got %s",
                  FormatDouble(rr_delta).c_str()));
  }
  if (min_backend_deadline < 0) {
    return InvalidArgumentError(StrFormat(
        "min_backend_deadline must be 0 (automatic), a positive deadline, "
        "or kNoDeadline, got %d",
        min_backend_deadline));
  }
  if (num_threads < 0) {
    return InvalidArgumentError(StrFormat(
        "num_threads must be >= 0 (0 = the default worker pool), got %d",
        num_threads));
  }
  if (candidates != nullptr) {
    if (candidates->empty()) {
      return InvalidArgumentError("candidates must be null or non-empty");
    }
    for (const NodeId v : *candidates) {
      if (v < 0 || v >= graph.num_nodes()) {
        return InvalidArgumentError(StrFormat(
            "candidate node %d is outside the graph's %d nodes", v,
            graph.num_nodes()));
      }
    }
  }
  return Status::Ok();
}

}  // namespace tcim
