// tcim::Solve — the single entry point for every problem in the paper's
// family (and the registered baselines / oracle backends around them).
//
//   ProblemSpec spec = ProblemSpec::FairBudget(/*budget=*/30, /*deadline=*/20);
//   Result<Solution> solution = Solve(graph, groups, spec);
//   if (!solution.ok()) { ... solution.status() explains what was invalid ... }
//
// Solve validates the spec (returning Status instead of crashing on bad
// user input), resolves the solver in the SolverRegistry, builds the
// requested oracle backend, runs selection, and — unless disabled — re-
// estimates the chosen seeds on an independent world set (§6.1 protocol).
//
// Both functions are one-shots: each call constructs a throwaway
// tcim::Engine, so the oracle backend is sampled from scratch every time.
// Services answering many queries over one graph should hold a long-lived
// Engine (api/engine.h) and let its backend cache amortize that cost.

#ifndef TCIM_API_SOLVE_H_
#define TCIM_API_SOLVE_H_

#include <vector>

#include "api/problem_spec.h"
#include "api/solution.h"
#include "common/status.h"
#include "core/fairness.h"
#include "graph/graph.h"
#include "graph/groups.h"

namespace tcim {

// Solves `spec` on (graph, groups). Errors are InvalidArgument statuses
// with precise messages (unknown solver names list the registry contents).
Result<Solution> Solve(const Graph& graph, const GroupAssignment& groups,
                       const ProblemSpec& spec,
                       const SolveOptions& options = SolveOptions());

// Evaluates an externally chosen seed set under the spec's deadline /
// model / oracle backend on the *evaluation* worlds — the audit path.
Result<GroupUtilityReport> EvaluateSeeds(const Graph& graph,
                                         const GroupAssignment& groups,
                                         const std::vector<NodeId>& seeds,
                                         const ProblemSpec& spec,
                                         const SolveOptions& options =
                                             SolveOptions());

}  // namespace tcim

#endif  // TCIM_API_SOLVE_H_
