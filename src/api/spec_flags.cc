#include "api/spec_flags.h"

#include "common/string_util.h"

namespace tcim {

void AddProblemSpecFlags(FlagParser& flags) {
  flags.AddChoice("problem", "budget",
                  {"budget", "fair_budget", "cover", "fair_cover", "maximin",
                   "p1", "p2", "p4", "p6"},
                  "which problem of the family to solve");
  flags.AddString("solver", "",
                  "solver registry key; empty picks the problem's default "
                  "(see --list_solvers)");
  flags.AddChoice("oracle", "montecarlo", {"montecarlo", "arrival", "rr"},
                  "coverage oracle backend");
  flags.AddInt("budget", 30, "seed budget B (budget/maximin problems)");
  flags.AddDouble("quota", 0.2, "coverage quota Q (cover problems)");
  flags.AddInt("tau", 20, "time deadline; 0 or negative = infinity");
  flags.AddChoice("h", "log", {"log", "sqrt", "identity", "power", "alpha_fair"},
                  "concave wrapper H for fair_budget");
  flags.AddDouble("alpha", 0.5, "exponent for --h=power / --h=alpha_fair");
  flags.AddChoice("model", "ic", {"ic", "lt"}, "diffusion model");
  flags.AddChoice("weight", "step", {"step", "exponential", "linear"},
                  "temporal weight (arrival oracle)");
  flags.AddDouble("gamma", 0.98, "discount factor for --weight=exponential");
  flags.AddDouble("meeting", 1.0,
                  "IC-M meeting probability; 1 = unit delays (arrival oracle)");
}

Result<ProblemSpec> ProblemSpecFromFlags(const FlagParser& flags) {
  ProblemSpec spec;
  Result<ProblemKind> kind = ParseProblemKind(flags.GetString("problem"));
  if (!kind.ok()) return kind.status();
  spec.kind = *kind;

  const int64_t tau = flags.GetInt("tau");
  spec.deadline = tau <= 0 ? kNoDeadline : static_cast<int>(tau);
  spec.budget = static_cast<int>(flags.GetInt("budget"));
  spec.quota = flags.GetDouble("quota");
  spec.solver = flags.GetString("solver");
  spec.oracle = flags.GetString("oracle");
  spec.temporal_weight = flags.GetString("weight");
  spec.discount_gamma = flags.GetDouble("gamma");
  spec.meeting_probability = flags.GetDouble("meeting");
  const Result<DiffusionModel> model =
      ParseDiffusionModel(flags.GetString("model"));
  if (!model.ok()) return model.status();
  spec.model = *model;

  const std::string h = flags.GetString("h");
  const double alpha = flags.GetDouble("alpha");
  if (h == "log") {
    spec.concave = ConcaveFunction::Log();
  } else if (h == "sqrt") {
    spec.concave = ConcaveFunction::Sqrt();
  } else if (h == "identity") {
    spec.concave = ConcaveFunction::Identity();
  } else if (h == "power") {
    if (alpha <= 0.0 || alpha > 1.0) {
      return InvalidArgumentError(
          "--h=power needs --alpha in (0, 1], got " + FormatDouble(alpha));
    }
    spec.concave = ConcaveFunction::Power(alpha);
  } else {  // alpha_fair (AddChoice already rejected anything else)
    if (alpha < 0.0) {
      return InvalidArgumentError(
          "--h=alpha_fair needs --alpha >= 0, got " + FormatDouble(alpha));
    }
    spec.concave = ConcaveFunction::AlphaFair(alpha);
  }

  TCIM_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

}  // namespace tcim
