#include "api/solver_registry.h"

#include <algorithm>

namespace tcim {

namespace internal {
// Defined in api/solvers.cc. Referencing it from Global() forces the
// linker to pull the built-in solvers' object file out of the static
// library, so their self-registration actually runs.
void AnchorBuiltinSolvers();
}  // namespace internal

GroupCoverageOracle& SolverContext::oracle() {
  if (oracle_ == nullptr) {
    oracle_ = oracle_factory_();
    TCIM_CHECK(oracle_ != nullptr);
  }
  return *oracle_;
}

SolverRegistry& SolverRegistry::Global() {
  internal::AnchorBuiltinSolvers();
  static SolverRegistry* registry = new SolverRegistry();
  return *registry;
}

Status SolverRegistry::Register(std::unique_ptr<Solver> solver) {
  TCIM_CHECK(solver != nullptr);
  const std::string name = solver->name();
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = solvers_.emplace(name, std::move(solver));
  (void)it;
  if (!inserted) {
    return InvalidArgumentError("solver \"" + name + "\" is already registered");
  }
  return Status::Ok();
}

const Solver* SolverRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = solvers_.find(name);
  return it == solvers_.end() ? nullptr : it->second.get();
}

std::vector<std::string> SolverRegistry::RegisteredNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(solvers_.size());
  for (const auto& [name, solver] : solvers_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::string SolverRegistry::ListSolvers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, solver] : solvers_) {
    out += name + " — " + solver->description() + " (problems:";
    for (const ProblemKind kind :
         {ProblemKind::kBudget, ProblemKind::kFairBudget, ProblemKind::kCover,
          ProblemKind::kFairCover, ProblemKind::kMaximin}) {
      if (solver->Supports(kind)) {
        out += std::string(" ") + ProblemKindName(kind);
      }
    }
    out += ")\n";
  }
  return out;
}

const char* DefaultSolverName(ProblemKind kind) {
  return kind == ProblemKind::kMaximin ? "saturate" : "greedy";
}

namespace internal {

bool RegisterSolverOrDie(std::unique_ptr<Solver> solver) {
  const Status status = SolverRegistry::Global().Register(std::move(solver));
  TCIM_CHECK(status.ok()) << status.ToString();
  return true;
}

}  // namespace internal

}  // namespace tcim
