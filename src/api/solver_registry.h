// SolverRegistry — string-keyed registry of Solver implementations behind
// tcim::Solve(). Built-in solvers ("greedy", "saturate", the heuristic
// baselines) register themselves; external code can add its own with
// TCIM_REGISTER_SOLVER and reach it through ProblemSpec::solver.
//
// A Solver sees a SolverContext: the instance (graph, groups, spec,
// options) plus a lazily-built coverage oracle, so oracle-free heuristics
// (degree, pagerank, ...) never pay for Monte-Carlo world sampling unless
// they ask for coverage numbers.

#ifndef TCIM_API_SOLVER_REGISTRY_H_
#define TCIM_API_SOLVER_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/problem_spec.h"
#include "api/solution.h"
#include "common/status.h"
#include "sim/oracle_interface.h"

namespace tcim {

class SolverContext {
 public:
  using OracleFactory =
      std::function<std::unique_ptr<GroupCoverageOracle>()>;

  // All referenced objects must outlive the context.
  SolverContext(const Graph& graph, const GroupAssignment& groups,
                const ProblemSpec& spec, const SolveOptions& options,
                OracleFactory oracle_factory)
      : graph_(graph),
        groups_(groups),
        spec_(spec),
        options_(options),
        oracle_factory_(std::move(oracle_factory)) {}

  const Graph& graph() const { return graph_; }
  const GroupAssignment& groups() const { return groups_; }
  const ProblemSpec& spec() const { return spec_; }
  const SolveOptions& options() const { return options_; }

  // The selection oracle for this instance, built on first use.
  GroupCoverageOracle& oracle();

 private:
  const Graph& graph_;
  const GroupAssignment& groups_;
  const ProblemSpec& spec_;
  const SolveOptions& options_;
  OracleFactory oracle_factory_;
  std::unique_ptr<GroupCoverageOracle> oracle_;
};

class Solver {
 public:
  virtual ~Solver() = default;

  // Registry key ("greedy", "degree", ...). Stable public API.
  virtual std::string name() const = 0;
  // One help line for --list_solvers.
  virtual std::string description() const = 0;
  // Whether this solver can handle `kind`; Solve() rejects mismatches with
  // an InvalidArgument status before doing any work.
  virtual bool Supports(ProblemKind kind) const = 0;

  virtual Result<Solution> Run(SolverContext& context) const = 0;
};

class SolverRegistry {
 public:
  // The process-wide registry, with built-in solvers already present.
  static SolverRegistry& Global();

  // Takes ownership; duplicate names are an error.
  Status Register(std::unique_ptr<Solver> solver);

  // nullptr when unknown.
  const Solver* Find(const std::string& name) const;

  // All registered names, sorted.
  std::vector<std::string> RegisteredNames() const;

  // "name — description (problems: ...)" lines for every solver, sorted.
  std::string ListSolvers() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Solver>> solvers_;
};

// The registry key Solve() uses when ProblemSpec::solver is empty:
// "saturate" for maximin, "greedy" otherwise.
const char* DefaultSolverName(ProblemKind kind);

namespace internal {
// Register() that treats a name collision as a programmer error: aborts
// with the status message instead of silently keeping the first solver.
bool RegisterSolverOrDie(std::unique_ptr<Solver> solver);

// The spec's budget-family objective (total influence for kBudget, the
// concave sum for kFairBudget) evaluated at a coverage vector. Used to
// report objective_value for oracle-free solvers so values stay
// commensurate across solvers run on the same spec.
double BudgetObjectiveValue(const ProblemSpec& spec,
                            const GroupAssignment& groups,
                            const GroupVector& coverage);
}  // namespace internal

// Registers a Solver subclass at load time (the class needs a default
// constructor). Use at namespace scope in a .cc file. A name collision
// aborts at startup — two solvers silently sharing a key would make
// ProblemSpec::solver ambiguous.
#define TCIM_REGISTER_SOLVER(SolverClass)                                \
  namespace {                                                            \
  [[maybe_unused]] const bool tcim_registered_##SolverClass =            \
      ::tcim::internal::RegisterSolverOrDie(                             \
          std::make_unique<SolverClass>());                              \
  }

}  // namespace tcim

#endif  // TCIM_API_SOLVER_REGISTRY_H_
