// tcim::EngineRegistry — a multi-tenant shard of Engines, one per graph.
//
// A service holding many networks (one per campaign / community — the
// fig07–fig10 dataset shapes) used to hand-manage N Engines, N worker
// pools and N unbounded backend caches. The registry owns all three
// concerns at once:
//
//   * a thread-safe map tenant id -> Engine, each tenant owning its graph
//     and group assignment (Register copies or moves them in, so callers
//     need not keep anything alive);
//   * ONE shared worker pool, injected into every tenant engine through
//     the EngineOptions::pool seam — a 64-tenant registry runs on one
//     pool's threads, not 64 x N;
//   * a GLOBAL resident-bytes budget across every tenant's backend cache.
//     All engines stamp cache touches from one shared LRU clock, so when
//     the registry is over budget the least-recently-used entry ANYWHERE
//     loses — except that each tenant keeps at least its
//     TenantOptions::min_resident_bytes floor resident. Enforcement runs
//     synchronously on the thread that finished the build (through
//     EngineOptions::resident_bytes_changed), so a single-threaded caller
//     observes resident_bytes() <= max_total_bytes after every solve
//     (floors permitting: if every remaining entry is floor-protected the
//     budget can stay exceeded — Stats() makes that visible).
//
//   tcim::EngineRegistry registry(options);
//   registry.Register("rice", std::move(rice.graph), std::move(rice.groups));
//   registry.Register("insta", insta.graph, insta.groups, tenant_options);
//   auto solution = registry.Solve("rice", spec);      // == Engine::Solve
//   auto pending = registry.SubmitSolve("insta", spec);
//   registry.Stats();                                  // per-tenant + totals
//
// Results are bit-identical to a standalone Engine over the same graph:
// the registry adds routing, pooling and budget enforcement, never
// numerics (tests/engine_registry_test.cc pins the full problem x oracle
// agreement matrix).
//
// Lifetime: Get() returns a handle that keeps the tenant (graph, groups,
// engine) alive, so solving through a handle is safe against a concurrent
// Unregister — the tenant is destroyed when the registry entry AND the
// last handle are gone. SubmitSolve through the registry rides the tenant
// handle inside the scheduled task for the same reason. Handles must not
// outlive the registry itself: the registry destructor blocks until every
// tenant (registered or draining) has been destroyed.
//
// Thread safety: every member function may be called concurrently from
// any thread (tests/registry_stress_test.cc hammers Solve / SubmitSolve /
// Invalidate / Unregister races under a tiny budget).

#ifndef TCIM_API_ENGINE_REGISTRY_H_
#define TCIM_API_ENGINE_REGISTRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/problem_spec.h"
#include "api/solution.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/graph.h"
#include "graph/groups.h"

namespace tcim {

// Per-tenant configuration, fixed at Register time.
struct TenantOptions {
  // Cache bytes this tenant keeps resident even when the registry evicts
  // across tenants to meet RegistryOptions::max_total_bytes: the global
  // pass never drops an entry that would leave the tenant below this
  // floor. 0 (the default) protects nothing.
  size_t min_resident_bytes = 0;

  // Base Engine configuration for the tenant — max_cached_backends and
  // max_ensemble_bytes act as the PER-TENANT cache budget on top of the
  // registry's global one. The registry overrides `pool` (shared pool),
  // `lru_clock` (shared clock) and `resident_bytes_changed` (global-budget
  // trigger); `backend_build_hook_for_test` falls back to the
  // registry-wide hook when unset.
  EngineOptions engine;
};

struct RegistryOptions {
  // Global resident-bytes budget summed over every registered tenant's
  // backend cache. The default is unbounded (per-tenant budgets still
  // apply). Tenants unregistered but kept alive by outstanding handles no
  // longer count toward (or are evicted for) the global budget.
  size_t max_total_bytes = std::numeric_limits<size_t>::max();

  // Thread count of the ONE worker pool shared by every tenant engine;
  // 0 picks std::thread::hardware_concurrency().
  int num_threads = 0;

  // Installed as backend_build_hook_for_test on every tenant engine that
  // does not bring its own — lets a stress test inject slow / failing
  // builds across the whole registry at once.
  std::function<void()> backend_build_hook_for_test;
};

// Stats() snapshot: per-tenant cache stats plus registry-level aggregates.
struct RegistryStats {
  struct Tenant {
    std::string id;
    CacheStats cache;
    size_t resident_bytes = 0;
    size_t min_resident_bytes = 0;
  };
  std::vector<Tenant> tenants;  // ordered by id

  // Field-wise sum of every tenant's CacheStats.
  CacheStats totals;

  // Sum of per-tenant resident bytes, and the budget it is held under.
  size_t resident_bytes = 0;
  size_t max_total_bytes = 0;

  // Entries the GLOBAL budget pass evicted across tenants (each also
  // counts in its own tenant's cache.evictions, alongside that engine's
  // count-cap and per-tenant-budget drops).
  int64_t cross_tenant_evictions = 0;

  // One-line "tenants=3 resident=1.2MiB/2MiB cross_evictions=4 ..." plus
  // one indented line per tenant.
  std::string DebugString() const;
};

class EngineRegistry {
 public:
  explicit EngineRegistry(const RegistryOptions& options = RegistryOptions());
  // Blocks until every tenant — registered or draining behind outstanding
  // handles — has been destroyed (each Engine destructor in turn waits
  // for its pending async solves).
  ~EngineRegistry();

  EngineRegistry(const EngineRegistry&) = delete;
  EngineRegistry& operator=(const EngineRegistry&) = delete;

  const RegistryOptions& options() const { return options_; }

  // Registers `id` over its own copy of (graph, groups). Fails with
  // FailedPrecondition when the id is already registered, InvalidArgument
  // on an empty id or a graph/groups node-count mismatch.
  Status Register(const std::string& id, Graph graph, GroupAssignment groups,
                  const TenantOptions& tenant_options = TenantOptions());

  // Removes `id` from the registry. Outstanding Get() handles (and queued
  // SubmitSolve tasks) keep the tenant alive until they drain; new lookups
  // fail immediately. NotFound when the id is unknown.
  Status Unregister(const std::string& id);

  // A shared handle on the tenant's engine, or nullptr when `id` is not
  // registered. The handle pins graph, groups and engine — safe against a
  // concurrent Unregister for as long as it is held.
  std::shared_ptr<Engine> Get(const std::string& id) const;

  size_t num_tenants() const;
  std::vector<std::string> TenantIds() const;  // sorted

  // --- Pass-throughs: exactly Engine::X on tenant `id`. --------------------
  // An unknown id fails with the same precise NotFound Status everywhere,
  // shaped like the engine's own error contract for that call (per-spec
  // entries for SolveBatch, an at-least-one aligned pair for SolveSweep, a
  // ready future for SubmitSolve).
  Result<Solution> Solve(const std::string& id, const ProblemSpec& spec,
                         const SolveOptions& options = SolveOptions());
  Result<GroupUtilityReport> EvaluateSeeds(
      const std::string& id, const std::vector<NodeId>& seeds,
      const ProblemSpec& spec, const SolveOptions& options = SolveOptions());
  std::vector<Result<Solution>> SolveBatch(
      const std::string& id, std::span<const ProblemSpec> specs,
      const SolveOptions& options = SolveOptions());
  Engine::SweepResult SolveSweep(const std::string& id,
                                 const ProblemSpec& spec,
                                 const std::vector<int>& deadlines,
                                 const SolveOptions& options = SolveOptions());
  std::future<Result<Solution>> SubmitSolve(
      const std::string& id, const ProblemSpec& spec,
      const SolveOptions& options = SolveOptions());

  // Engine::Invalidate on tenant `id`; NotFound when unknown.
  Status Invalidate(const std::string& id);

  // Per-tenant and aggregate cache observability (thread-safe snapshot).
  RegistryStats Stats() const;

  // Sum of registered tenants' resident cache bytes right now.
  size_t resident_bytes() const;

  // Runs the global budget pass: while the registry is over
  // max_total_bytes, evict the least-recently-used entry across all
  // tenants whose eviction respects its tenant's min_resident_bytes floor;
  // stops when within budget or every candidate is floor-protected.
  // Invoked automatically after every backend build; public so tests and
  // operators can force a pass (idempotent when within budget).
  void EnforceGlobalBudget();

 private:
  struct Tenant;

  std::shared_ptr<Tenant> FindTenant(const std::string& id) const;
  Status UnknownTenantError(const std::string& id) const;

  void OnTenantCreated();
  void OnTenantDestroyed();

  RegistryOptions options_;
  ThreadPool pool_;
  // The shared LRU clock every tenant engine stamps cache touches from.
  mutable std::atomic<uint64_t> lru_clock_{0};

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;
  int64_t cross_tenant_evictions_ = 0;  // guarded by mutex_

  // Live Tenant objects (registered + draining); ~EngineRegistry waits for
  // zero so engine callbacks can capture `this` safely.
  mutable std::mutex live_mutex_;
  std::condition_variable live_cv_;
  int live_tenants_ = 0;  // guarded by live_mutex_
};

}  // namespace tcim

#endif  // TCIM_API_ENGINE_REGISTRY_H_
