// Bridges the CLI flag parser and ProblemSpec: one call declares the
// --problem= / --solver= / --oracle= flag family, one call parses the
// values back into a validated spec. Used by examples/tcim_cli.cpp; any
// other binary can opt into the same flag surface.

#ifndef TCIM_API_SPEC_FLAGS_H_
#define TCIM_API_SPEC_FLAGS_H_

#include "api/problem_spec.h"
#include "cli/flags.h"
#include "common/status.h"

namespace tcim {

// Declares the spec-shaped flags on `flags`:
//   --problem  budget | fair_budget | cover | fair_cover | maximin | p1..p6
//   --solver   registry key; empty picks the kind's default
//   --oracle   montecarlo | arrival
//   --budget --quota --tau --h --alpha --model
//   --weight --gamma --meeting  (arrival backend)
void AddProblemSpecFlags(FlagParser& flags);

// Builds a ProblemSpec from parsed flag values. Returns InvalidArgument
// (not a crash) for bad combinations; the spec is already Validate()d.
Result<ProblemSpec> ProblemSpecFromFlags(const FlagParser& flags);

}  // namespace tcim

#endif  // TCIM_API_SPEC_FLAGS_H_
