// Solution — what tcim::Solve() returns: the chosen seeds, the per-group
// coverage story behind them, estimator diagnostics, and (by default) an
// independent fresh-world evaluation following the paper's §6.1 protocol.

#ifndef TCIM_API_SOLUTION_H_
#define TCIM_API_SOLUTION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/fairness.h"
#include "core/greedy.h"
#include "graph/graph.h"
#include "sim/oracle_interface.h"

namespace tcim {

// One seed-selection step (node picked, gain, objective, coverage after).
using SolutionStep = GreedyStep;

// Estimator / search diagnostics, for logs and regression tracking.
struct SolveDiagnostics {
  // Marginal-gain evaluations spent during selection.
  int64_t oracle_calls = 0;
  // Worlds used for selection / evaluation.
  int num_worlds = 0;
  int eval_num_worlds = 0;
  // Maximin (SATURATE) only: best feasible level and probe count.
  double saturation_level = 0.0;
  int probes = 0;
};

struct Solution {
  // The chosen seed set, in selection order.
  std::vector<NodeId> seeds;

  // Selection-time estimates: per-group expected counts, normalized
  // fractions f_i/|V_i|, and the solved objective's value.
  GroupVector coverage;
  std::vector<double> normalized;
  double objective_value = 0.0;

  // Cover problems: whether the quota was reached on the estimate.
  bool target_reached = false;

  // Per-iteration coverage trace (iteration-style figures; empty for
  // solvers that do not select incrementally).
  std::vector<SolutionStep> trace;

  // Provenance: which problem/solver/oracle produced this.
  std::string problem;
  std::string solver;
  std::string oracle;

  // Wall-clock split.
  double selection_seconds = 0.0;
  double evaluation_seconds = 0.0;

  SolveDiagnostics diagnostics;

  // Fresh-world re-estimate of `seeds` on the independent evaluation
  // worlds; present unless SolveOptions::evaluate was false.
  std::optional<GroupUtilityReport> evaluation;

  // "solver=greedy problem=cover |S|=12 objective=0.2 ..." one-liner.
  std::string DebugString() const;
};

}  // namespace tcim

#endif  // TCIM_API_SOLUTION_H_
