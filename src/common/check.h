// Lightweight assertion macros for programmer errors.
//
// The library does not use exceptions (see DESIGN.md). Invariant violations
// and precondition failures abort the process with a readable message;
// recoverable failures (e.g. file IO) are reported via common/status.h.

#ifndef TCIM_COMMON_CHECK_H_
#define TCIM_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tcim {
namespace internal_check {

// Terminates the process, printing `file:line` and the failed condition
// together with an optional streamed message.
[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* condition,
                                   const std::string& message) {
  std::fprintf(stderr, "[TCIM_CHECK failed] %s:%d: %s%s%s\n", file, line,
               condition, message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

// Accumulates a streamed message for TCIM_CHECK(...) << "context".
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFail(file_, line_, condition_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace tcim

// Aborts with a message when `condition` is false. Usable as a statement:
//   TCIM_CHECK(b <= n) << "budget " << b << " exceeds node count " << n;
#define TCIM_CHECK(condition)                                        \
  while (!(condition))                                               \
  ::tcim::internal_check::CheckMessageBuilder(__FILE__, __LINE__, #condition)

// Debug-only variant; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define TCIM_DCHECK(condition) TCIM_CHECK(true || (condition))
#else
#define TCIM_DCHECK(condition) TCIM_CHECK(condition)
#endif

#endif  // TCIM_COMMON_CHECK_H_
