#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tcim {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      break;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> fields;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    const size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) fields.emplace_back(text.substr(start, i - start));
  }
  return fields;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ParseInt64(std::string_view text, int64_t* value) {
  const std::string buffer(StripWhitespace(text));
  if (buffer.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(buffer.c_str(), &end, 10);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) return false;
  *value = parsed;
  return true;
}

bool ParseDouble(std::string_view text, double* value) {
  const std::string buffer(StripWhitespace(text));
  if (buffer.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(buffer.c_str(), &end);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) return false;
  *value = parsed;
  return true;
}

std::string JoinInts(const std::vector<int>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.append(sep);
    out += StrFormat("%d", items[i]);
  }
  return out;
}

std::string FormatDouble(double value, int max_decimals) {
  std::string out = StrFormat("%.*f", max_decimals, value);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
  }
  return out;
}

}  // namespace tcim
