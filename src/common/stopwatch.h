// Wall-clock stopwatch for coarse timing in benches and examples.

#ifndef TCIM_COMMON_STOPWATCH_H_
#define TCIM_COMMON_STOPWATCH_H_

#include <chrono>

namespace tcim {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tcim

#endif  // TCIM_COMMON_STOPWATCH_H_
