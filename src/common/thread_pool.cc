#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace tcim {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown_ with drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0 && tasks_.empty()) all_done_.notify_all();
    }
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  if (workers_.empty()) {
    // The inline pool has nobody to hand work to; run it here and now.
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    TCIM_CHECK(!shutdown_) << "Schedule() after shutdown";
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0 && tasks_.empty(); });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  const size_t num_shards =
      std::min<size_t>(n, workers_.size() + 1);  // caller participates
  if (num_shards <= 1) {
    body(0, n);
    return;
  }
  const size_t chunk = (n + num_shards - 1) / num_shards;

  // `remaining` is guarded by done_mutex so the last worker cannot touch the
  // condition variable after the waiting caller has already unwound it.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  size_t remaining = num_shards - 1;

  for (size_t shard = 1; shard < num_shards; ++shard) {
    const size_t begin = shard * chunk;
    const size_t end = std::min(n, begin + chunk);
    Schedule([&, begin, end] {
      if (begin < end) body(begin, end);
      std::lock_guard<std::mutex> lock(done_mutex);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  // The caller works on the first shard while workers run the rest.
  body(0, std::min(n, chunk));
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

ThreadPool& ThreadPool::Inline() {
  static ThreadPool* pool = new ThreadPool(InlineTag{});
  return *pool;
}

}  // namespace tcim
