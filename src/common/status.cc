#include "common/status.h"

namespace tcim {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace tcim
