// A fixed-size worker pool with a blocking ParallelFor.
//
// The influence oracle evaluates marginal gains over hundreds to thousands
// of independent Monte-Carlo worlds; ParallelFor shards the world index
// range across workers. The pool is created once and reused so that greedy
// selection (thousands of oracle calls) does not pay thread start-up costs.

#ifndef TCIM_COMMON_THREAD_POOL_H_
#define TCIM_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tcim {

class ThreadPool {
 public:
  // `num_threads` == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Runs body(shard_begin, shard_end) over a partition of [0, n) and blocks
  // until all shards complete. Shards are contiguous and sized ~n/threads.
  // The calling thread participates in the work. `body` must be safe to call
  // concurrently on disjoint ranges.
  void ParallelFor(size_t n,
                   const std::function<void(size_t, size_t)>& body);

  // Enqueues a task for asynchronous execution (used by tests and the
  // experiment harness for coarse-grained parallelism).
  void Schedule(std::function<void()> task);

  // Blocks until every scheduled task has finished.
  void Wait();

  // Process-wide default pool (lazily constructed, never destroyed so that
  // static-destruction order is not an issue).
  static ThreadPool& Default();

  // A pool with NO workers: ParallelFor runs the whole range on the calling
  // thread and Schedule executes the task inline. Hand this to work that
  // already runs ON a pool worker — re-entering the same pool's ParallelFor
  // from all of its workers at once would deadlock (every worker blocks
  // waiting for shards that no free worker exists to run). Used by
  // api/engine.h to collapse per-solve parallelism when solves themselves
  // are the parallel dimension.
  static ThreadPool& Inline();

 private:
  struct InlineTag {};
  explicit ThreadPool(InlineTag) {}

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace tcim

#endif  // TCIM_COMMON_THREAD_POOL_H_
