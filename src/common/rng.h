// Deterministic pseudo-random number generation.
//
// Two facilities:
//   * Rng — a fast, seedable xoshiro256++ stream used for graph generation
//     and forward cascade simulation.
//   * Stateless hashing (SplitMix64Mix / EdgeCoinFlip) — used by the
//     live-edge world sampler so that "is edge e alive in world r?" is a
//     pure function of (seed, world, edge). This makes Monte-Carlo worlds
//     reproducible without materializing them (see sim/live_edge.h).
//
// We implement our own generators rather than <random> engines because (a)
// reproducibility across standard-library versions matters for tests and
// recorded experiment outputs, and (b) the stateless per-edge coin flip has
// no <random> equivalent.

#ifndef TCIM_COMMON_RNG_H_
#define TCIM_COMMON_RNG_H_

#include <cstdint>

namespace tcim {

// SplitMix64 finalizer: a high-quality 64-bit mixing function. Stateless.
inline uint64_t SplitMix64Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Combines two 64-bit values into one well-mixed value. Stateless.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return SplitMix64Mix(a ^ (SplitMix64Mix(b) + 0x9e3779b97f4a7c15ull));
}

// Converts a 64-bit value to a double uniform in [0, 1).
inline double ToUnitDouble(uint64_t x) {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

// xoshiro256++ by Blackman & Vigna: fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  // Seeds the four state words from `seed` via SplitMix64, guaranteeing a
  // non-zero state for any seed value.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bull);

  // Next raw 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble() { return ToUnitDouble(NextU64()); }

  // Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  // multiply-shift rejection method.
  uint64_t NextIndex(uint64_t n);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Standard normal via Box-Muller (the spare value is cached).
  double Gaussian();

  // Returns an independent generator derived from this one's stream; useful
  // for giving worker threads decorrelated streams.
  Rng Split();

 private:
  uint64_t state_[4];
  double gaussian_spare_ = 0.0;
  bool has_gaussian_spare_ = false;
};

}  // namespace tcim

#endif  // TCIM_COMMON_RNG_H_
