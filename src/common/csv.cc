#include "common/csv.h"

#include <cstdio>

#include "common/check.h"
#include "common/string_util.h"

namespace tcim {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  TCIM_CHECK(!header_.empty()) << "CSV header must be non-empty";
}

void CsvWriter::AddRow(std::vector<std::string> row) {
  TCIM_CHECK(row.size() == header_.size())
      << "row arity " << row.size() << " != header arity " << header_.size();
  rows_.push_back(std::move(row));
}

void CsvWriter::AddNumericRow(const std::vector<double>& row) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  for (const double value : row) fields.push_back(FormatDouble(value));
  AddRow(std::move(fields));
}

std::string CsvWriter::ToString() const {
  std::string out;
  for (size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) out += ',';
    out += QuoteField(header_[i]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += QuoteField(row[i]);
    }
    out += '\n';
  }
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return IoError("could not open for writing: " + path);
  const std::string data = ToString();
  const size_t written = std::fwrite(data.data(), 1, data.size(), file);
  std::fclose(file);
  if (written != data.size()) return IoError("short write to: " + path);
  return Status::Ok();
}

TablePrinter::TablePrinter(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {
  TCIM_CHECK(!header_.empty()) << "table header must be non-empty";
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  TCIM_CHECK(row.size() == header_.size())
      << "row arity " << row.size() << " != header arity " << header_.size();
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      line += (i == 0) ? "| " : " | ";
      line += row[i];
      line.append(widths[i] - row[i].size(), ' ');
    }
    line += " |\n";
    return line;
  };

  size_t total = 1;
  for (const size_t w : widths) total += w + 3;

  std::string out;
  if (!title_.empty()) out += "== " + title_ + " ==\n";
  const std::string rule(total, '-');
  out += rule + "\n";
  out += render_row(header_);
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  out += rule + "\n";
  return out;
}

void TablePrinter::Print() const {
  const std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

}  // namespace tcim
