// Minimal Status / Result<T> types for recoverable errors.
//
// The library avoids exceptions (Google style); fallible operations — chiefly
// file IO and input parsing — return Status or Result<T>. Programmer errors
// use TCIM_CHECK (common/check.h) instead.

#ifndef TCIM_COMMON_STATUS_H_
#define TCIM_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace tcim {

// Error taxonomy; deliberately small.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kInternal,
};

// Returns a stable human-readable name ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// Value-type success/error indicator with a message.
class Status {
 public:
  // Success.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "IO_ERROR: could not open file".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status IoError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);

// Holds either a value or an error Status. Accessing the value of an
// error result is a checked programmer error.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    TCIM_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TCIM_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    TCIM_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    TCIM_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace tcim

// Propagates an error Status from an expression returning Status.
#define TCIM_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::tcim::Status tcim_status_ = (expr);     \
    if (!tcim_status_.ok()) return tcim_status_; \
  } while (false)

#endif  // TCIM_COMMON_STATUS_H_
