// Small string helpers shared across the library (no locale dependence).

#ifndef TCIM_COMMON_STRING_UTIL_H_
#define TCIM_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace tcim {

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// Splits on a single character; keeps empty fields.
std::vector<std::string> StrSplit(std::string_view text, char delimiter);

// Splits on arbitrary whitespace runs; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

// Removes leading/trailing whitespace.
std::string_view StripWhitespace(std::string_view text);

// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

// Parses a non-negative integer / double; returns false on malformed input.
bool ParseInt64(std::string_view text, int64_t* value);
bool ParseDouble(std::string_view text, double* value);

// Joins items with a separator, e.g. JoinInts({1,2,3}, ",") == "1,2,3".
std::string JoinInts(const std::vector<int>& items, std::string_view sep);

// Human-readable double: trims trailing zeros ("0.25", "3", "0.001").
std::string FormatDouble(double value, int max_decimals = 6);

}  // namespace tcim

#endif  // TCIM_COMMON_STRING_UTIL_H_
