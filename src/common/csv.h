// Tabular output: CSV files (for post-processing/plotting) and aligned
// console tables (the bench binaries print the same rows the paper plots).

#ifndef TCIM_COMMON_CSV_H_
#define TCIM_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace tcim {

// Accumulates rows and writes an RFC-4180-ish CSV file. Fields containing
// commas, quotes or newlines are quoted.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  const std::vector<std::string>& header() const { return header_; }
  size_t num_rows() const { return rows_.size(); }

  // Adds a row; must match the header arity (checked).
  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with FormatDouble.
  void AddNumericRow(const std::vector<double>& row);

  // Serializes header + rows.
  std::string ToString() const;

  // Writes to `path`, creating/truncating the file.
  Status WriteToFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-width console table with a title, for bench output.
//
//   TablePrinter table("Fig 4a", {"algorithm", "total", "group1", "group2"});
//   table.AddRow({"P1", "0.27", "0.36", "0.05"});
//   table.Print();
class TablePrinter {
 public:
  TablePrinter(std::string title, std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Renders the table (used by Print and by tests).
  std::string ToString() const;

  // Writes ToString() to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tcim

#endif  // TCIM_COMMON_CSV_H_
