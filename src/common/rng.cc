#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace tcim {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 expansion; never yields an all-zero state.
  uint64_t s = seed;
  for (auto& word : state_) {
    s += 0x9e3779b97f4a7c15ull;
    word = SplitMix64Mix(s);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextIndex(uint64_t n) {
  TCIM_CHECK(n > 0) << "NextIndex requires a non-empty range";
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < n) {
    const uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::Gaussian() {
  if (has_gaussian_spare_) {
    has_gaussian_spare_ = false;
    return gaussian_spare_;
  }
  // Box-Muller transform on two uniforms.
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  gaussian_spare_ = radius * std::sin(angle);
  has_gaussian_spare_ = true;
  return radius * std::cos(angle);
}

Rng Rng::Split() { return Rng(NextU64()); }

}  // namespace tcim
