// Objectives over per-group coverage vectors.
//
// The greedy engine (core/greedy.h) works on any monotone submodular set
// function expressible as g(S) = Objective(f̂_τ(S; V_1), ..., f̂_τ(S; V_k)),
// where the per-group coverages come from the influence oracle. Because f̂
// is a nonnegative coverage function per group and each objective below is
// a nondecreasing concave combination, g is monotone submodular (the Lin &
// Bilmes composition rule cited in the paper's Theorem-1 proof).
//
//   TotalInfluenceObjective   Σ_i f_i              — problems P1 / P2
//   ConcaveSumObjective       Σ_i λ_i H(s_i f_i)   — problem P4
//   TruncatedQuotaObjective   Σ_i min(f_i/|V_i|,Q) — problem P6 constraint
//
// ConcaveSumObjective supports per-group weights λ_i (the paper's "one
// could ... increase the weights λ in problem P4 for the under-represented
// group") and optional normalization s_i = 1/|V_i|.

#ifndef TCIM_CORE_OBJECTIVES_H_
#define TCIM_CORE_OBJECTIVES_H_

#include <memory>
#include <string>
#include <vector>

#include "core/concave.h"
#include "graph/groups.h"
#include "sim/influence_oracle.h"

namespace tcim {

class Objective {
 public:
  virtual ~Objective() = default;

  // g evaluated at a per-group coverage vector.
  virtual double Value(const GroupVector& coverage) const = 0;

  // g(coverage + marginal) - g(coverage); both vectors are per-group.
  double Gain(const GroupVector& coverage, const GroupVector& marginal) const;

  virtual std::string name() const = 0;
};

// Σ_i f_i — the unfair total-influence objective of P1 / P2.
class TotalInfluenceObjective : public Objective {
 public:
  TotalInfluenceObjective() = default;
  double Value(const GroupVector& coverage) const override;
  std::string name() const override { return "total_influence"; }
};

// Options for ConcaveSumObjective (namespace scope so it can be a default
// argument — nested classes with member initializers cannot).
struct ConcaveSumOptions {
  // Per-group multipliers λ_i; empty means all 1.
  std::vector<double> weights;
  // Apply H to the group *fraction* f_i/|V_i| instead of the raw count.
  bool normalize_by_group_size = false;
};

// Σ_i λ_i H(s_i · f_i) — the FairTCIM-Budget surrogate of P4.
class ConcaveSumObjective : public Objective {
 public:
  using Options = ConcaveSumOptions;

  // `groups` must outlive the objective.
  ConcaveSumObjective(ConcaveFunction h, const GroupAssignment* groups,
                      Options options = Options());

  double Value(const GroupVector& coverage) const override;
  std::string name() const override;

  const ConcaveFunction& concave() const { return h_; }

 private:
  ConcaveFunction h_;
  const GroupAssignment* groups_;
  Options options_;
};

// Σ_i min(f_i / |V_i|, Q) — the FairTCIM-Cover surrogate constraint of P6.
// Saturates at k·Q exactly when every group meets the quota.
class TruncatedQuotaObjective : public Objective {
 public:
  TruncatedQuotaObjective(double quota, const GroupAssignment* groups);

  double Value(const GroupVector& coverage) const override;
  std::string name() const override;

  double quota() const { return quota_; }
  // The saturation value k·Q.
  double SaturationValue() const;

 private:
  double quota_;
  const GroupAssignment* groups_;
};

// min(f/|V|, Q) over the TOTAL population — the plain TCIM-Cover (P2)
// progress measure, so both cover problems share the greedy loop.
class TotalQuotaObjective : public Objective {
 public:
  TotalQuotaObjective(double quota, NodeId num_nodes);

  double Value(const GroupVector& coverage) const override;
  std::string name() const override;

  double quota() const { return quota_; }
  double SaturationValue() const { return quota_; }

 private:
  double quota_;
  NodeId num_nodes_;
};

}  // namespace tcim

#endif  // TCIM_CORE_OBJECTIVES_H_
