#include "core/concave.h"

#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace tcim {

ConcaveFunction ConcaveFunction::Power(double alpha) {
  TCIM_CHECK(alpha > 0.0 && alpha <= 1.0)
      << "power exponent must be in (0,1], got " << alpha;
  return ConcaveFunction(Kind::kPower, alpha);
}

ConcaveFunction ConcaveFunction::AlphaFair(double alpha) {
  TCIM_CHECK(alpha >= 0.0) << "alpha-fairness needs alpha >= 0, got " << alpha;
  if (alpha == 0.0) return Identity();
  if (alpha == 1.0) return Log();
  return ConcaveFunction(Kind::kAlphaFair, alpha);
}

double ConcaveFunction::operator()(double z) const {
  TCIM_DCHECK(z >= 0.0) << "concave wrapper evaluated at negative " << z;
  switch (kind_) {
    case Kind::kIdentity:
      return z;
    case Kind::kLog:
      return std::log1p(z);
    case Kind::kSqrt:
      return std::sqrt(z);
    case Kind::kPower:
      return std::pow(z, alpha_);
    case Kind::kAlphaFair:
      // ((1+z)^{1-α} - 1) / (1-α); nonnegative, increasing, concave, 0 at 0.
      return (std::pow(1.0 + z, 1.0 - alpha_) - 1.0) / (1.0 - alpha_);
  }
  return z;
}

std::string ConcaveFunction::name() const {
  switch (kind_) {
    case Kind::kIdentity:
      return "identity";
    case Kind::kLog:
      return "log";
    case Kind::kSqrt:
      return "sqrt";
    case Kind::kPower:
      return StrFormat("power(%s)", FormatDouble(alpha_, 3).c_str());
    case Kind::kAlphaFair:
      return StrFormat("alpha_fair(%s)", FormatDouble(alpha_, 3).c_str());
  }
  return "unknown";
}

}  // namespace tcim
