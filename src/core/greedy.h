// Greedy maximization of monotone submodular objectives over the influence
// oracle, with optional CELF lazy evaluation.
//
// This is the single algorithmic engine behind all four problems:
//   P1  — TotalInfluenceObjective, stop at budget
//   P4  — ConcaveSumObjective,     stop at budget
//   P2  — TotalQuotaObjective,     stop at saturation (Q reached)
//   P6  — TruncatedQuotaObjective, stop at saturation (all groups reach Q)
//
// CELF (Leskovec et al. 2007): submodularity makes stale marginal gains
// upper bounds, so candidates are kept in a max-heap and only re-evaluated
// when they surface — typically a >10x reduction in oracle calls, measured
// in bench_ablation.

#ifndef TCIM_CORE_GREEDY_H_
#define TCIM_CORE_GREEDY_H_

#include <limits>
#include <vector>

#include "core/objectives.h"
#include "sim/influence_oracle.h"
#include "sim/oracle_interface.h"

namespace tcim {

struct GreedyOptions {
  // Maximum number of seeds (the budget B for P1/P4; a safety cap for
  // cover problems).
  int max_seeds = 30;
  // Stop once the objective reaches this value (within tolerance); cover
  // problems pass the objective's saturation value. Infinity disables.
  double target_value = std::numeric_limits<double>::infinity();
  double target_tolerance = 1e-9;
  // CELF lazy evaluation (exact same output as plain greedy up to ties).
  bool lazy = true;
  // Restrict selection to these nodes (the Instagram experiment seeds only
  // a 5000-node random candidate set); nullptr allows every node.
  const std::vector<NodeId>* candidates = nullptr;
  // Stochastic greedy (Mirzasoleiman et al., AAAI'15): when > 0, each
  // iteration evaluates only a uniform sample of
  // ceil((n / max_seeds) · ln(1/ε)) unselected candidates, giving a
  // (1 − 1/e − ε) guarantee in expectation at a fraction of the oracle
  // calls. Ignores `lazy`. 0 disables.
  double stochastic_epsilon = 0.0;
  uint64_t stochastic_seed = 0x57ccull;
};

// One selection step, recorded for iteration-style figures (Fig 6a / 8a).
struct GreedyStep {
  NodeId node = -1;
  double gain = 0.0;             // objective gain realized by this seed
  double objective_value = 0.0;  // objective after adding the seed
  GroupVector coverage;          // per-group coverage after adding the seed
};

struct GreedyResult {
  std::vector<NodeId> seeds;
  GroupVector coverage;          // final per-group expected counts
  double objective_value = 0.0;
  bool target_reached = false;
  int64_t oracle_calls = 0;      // marginal-gain evaluations performed
  std::vector<GreedyStep> trace;
};

// Runs greedy selection on `oracle` (which is Reset() first) maximizing
// `objective`. The oracle's committed seed state holds the result when done.
GreedyResult RunGreedy(GroupCoverageOracle& oracle, const Objective& objective,
                       const GreedyOptions& options);

}  // namespace tcim

#endif  // TCIM_CORE_GREEDY_H_
