#include "core/robustness.h"

#include <algorithm>

#include "common/check.h"
#include "sim/influence_oracle.h"

namespace tcim {

RobustnessReport EvaluateUnderSeedDeactivation(
    const Graph& graph, const GroupAssignment& groups,
    const std::vector<NodeId>& seeds, const ExperimentConfig& config,
    const SeedDeactivationOptions& options) {
  TCIM_CHECK(options.survival_probability >= 0.0 &&
             options.survival_probability <= 1.0);
  TCIM_CHECK(options.num_patterns > 0);

  // One oracle reused across patterns (worlds stay fixed; only the seed
  // subset changes per pattern).
  InfluenceOracle oracle(&graph, &groups, EvaluationOracleOptions(config));

  Rng rng(options.pattern_seed);
  GroupVector mean_coverage(groups.num_groups(), 0.0);
  RobustnessReport report;
  report.worst_total_fraction = 1.0;
  report.worst_min_group = 1.0;
  report.worst_disparity = 0.0;

  for (int pattern = 0; pattern < options.num_patterns; ++pattern) {
    std::vector<NodeId> survivors;
    survivors.reserve(seeds.size());
    for (const NodeId s : seeds) {
      if (rng.Bernoulli(options.survival_probability)) survivors.push_back(s);
    }
    const GroupVector coverage = oracle.EstimateGroupCoverage(survivors);
    const GroupUtilityReport pattern_report =
        MakeGroupUtilityReport(coverage, groups);
    for (size_t g = 0; g < mean_coverage.size(); ++g) {
      mean_coverage[g] += coverage[g];
    }
    report.worst_total_fraction =
        std::min(report.worst_total_fraction, pattern_report.total_fraction);
    double min_group = 1.0;
    for (const double fraction : pattern_report.normalized) {
      min_group = std::min(min_group, fraction);
    }
    report.worst_min_group = std::min(report.worst_min_group, min_group);
    report.worst_disparity =
        std::max(report.worst_disparity, pattern_report.disparity);
  }
  for (double& c : mean_coverage) c /= options.num_patterns;
  report.mean = MakeGroupUtilityReport(mean_coverage, groups);
  return report;
}

GroupUtilityReport EvaluateWithScaledProbabilities(
    const Graph& graph, const GroupAssignment& groups,
    const std::vector<NodeId>& seeds, const ExperimentConfig& config,
    double scale) {
  TCIM_CHECK(scale >= 0.0) << "scale must be nonnegative";
  GraphBuilder builder(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const AdjacentEdge& edge : graph.OutEdges(v)) {
      builder.AddEdge(v, edge.node,
                      std::min(1.0, edge.probability * scale));
    }
  }
  const Graph perturbed = builder.Build();
  return EvaluateSeedSet(perturbed, groups, seeds, config);
}

}  // namespace tcim
