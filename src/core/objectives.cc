#include "core/objectives.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace tcim {

double Objective::Gain(const GroupVector& coverage,
                       const GroupVector& marginal) const {
  TCIM_DCHECK(coverage.size() == marginal.size());
  GroupVector after(coverage);
  for (size_t g = 0; g < after.size(); ++g) after[g] += marginal[g];
  return Value(after) - Value(coverage);
}

double TotalInfluenceObjective::Value(const GroupVector& coverage) const {
  return GroupVectorTotal(coverage);
}

ConcaveSumObjective::ConcaveSumObjective(ConcaveFunction h,
                                         const GroupAssignment* groups,
                                         Options options)
    : h_(h), groups_(groups), options_(std::move(options)) {
  TCIM_CHECK(groups != nullptr);
  if (!options_.weights.empty()) {
    TCIM_CHECK(static_cast<int>(options_.weights.size()) ==
               groups->num_groups())
        << "weights arity must equal the number of groups";
    for (const double w : options_.weights) {
      TCIM_CHECK(w >= 0.0) << "group weights must be nonnegative";
    }
  }
}

double ConcaveSumObjective::Value(const GroupVector& coverage) const {
  TCIM_DCHECK(static_cast<int>(coverage.size()) == groups_->num_groups());
  double value = 0.0;
  for (size_t g = 0; g < coverage.size(); ++g) {
    const double scale = options_.normalize_by_group_size
                             ? 1.0 / groups_->GroupSize(static_cast<GroupId>(g))
                             : 1.0;
    const double weight = options_.weights.empty() ? 1.0 : options_.weights[g];
    value += weight * h_(scale * coverage[g]);
  }
  return value;
}

std::string ConcaveSumObjective::name() const {
  return StrFormat("concave_sum(%s)", h_.name().c_str());
}

TruncatedQuotaObjective::TruncatedQuotaObjective(double quota,
                                                 const GroupAssignment* groups)
    : quota_(quota), groups_(groups) {
  TCIM_CHECK(groups != nullptr);
  TCIM_CHECK(quota >= 0.0 && quota <= 1.0) << "quota must be in [0,1]";
}

double TruncatedQuotaObjective::Value(const GroupVector& coverage) const {
  TCIM_DCHECK(static_cast<int>(coverage.size()) == groups_->num_groups());
  double value = 0.0;
  for (size_t g = 0; g < coverage.size(); ++g) {
    const double normalized =
        coverage[g] / groups_->GroupSize(static_cast<GroupId>(g));
    value += std::min(normalized, quota_);
  }
  return value;
}

std::string TruncatedQuotaObjective::name() const {
  return StrFormat("truncated_quota(Q=%s)", FormatDouble(quota_).c_str());
}

double TruncatedQuotaObjective::SaturationValue() const {
  return quota_ * groups_->num_groups();
}

TotalQuotaObjective::TotalQuotaObjective(double quota, NodeId num_nodes)
    : quota_(quota), num_nodes_(num_nodes) {
  TCIM_CHECK(quota >= 0.0 && quota <= 1.0) << "quota must be in [0,1]";
  TCIM_CHECK(num_nodes > 0);
}

double TotalQuotaObjective::Value(const GroupVector& coverage) const {
  return std::min(GroupVectorTotal(coverage) / num_nodes_, quota_);
}

std::string TotalQuotaObjective::name() const {
  return StrFormat("total_quota(Q=%s)", FormatDouble(quota_).c_str());
}

}  // namespace tcim
