// Solvers for the coverage-constrained problems.
//
//   SolveTcimCover      — P2: min |S| s.t. f_τ(S;V)/|V| ≥ Q
//   SolveFairTcimCover  — P6: min |S| s.t. f_τ(S;V_i)/|V_i| ≥ Q for all i
//
// Both run greedy on a truncated (hence still monotone submodular)
// progress objective until it saturates: min(f/|V|, Q) for P2 and
// Σ_i min(f_i/|V_i|, Q) for P6 (the truncation rewrite in the paper's
// Theorem-2 proof). Theorem 2 bounds |Ŝ| by ln(1+|V|)·Σ_i|S*_i|; any
// feasible P6 solution has disparity ≤ 1−Q.

#ifndef TCIM_CORE_COVER_H_
#define TCIM_CORE_COVER_H_

#include <vector>

#include "core/greedy.h"
#include "core/objectives.h"
#include "sim/influence_oracle.h"

namespace tcim {

struct CoverOptions {
  // The coverage quota Q ∈ [0, 1].
  double quota = 0.2;
  // Hard cap on the seed-set size; greedy also stops when no candidate has
  // positive marginal gain (quota unreachable on the estimate).
  int max_seeds = 500;
  bool lazy = true;
  const std::vector<NodeId>* candidates = nullptr;
  // Estimates are Monte-Carlo; accept the quota within this slack.
  double tolerance = 1e-9;
};

// P2 (TCIM-Cover): smallest greedy set with total coverage ≥ Q·|V|.
GreedyResult SolveTcimCover(GroupCoverageOracle& oracle,
                            const CoverOptions& options);

// P6 (FairTCIM-Cover): smallest greedy set with every group's normalized
// coverage ≥ Q.
GreedyResult SolveFairTcimCover(GroupCoverageOracle& oracle,
                                const CoverOptions& options);

}  // namespace tcim

#endif  // TCIM_CORE_COVER_H_
