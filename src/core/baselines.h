// Heuristic seeding baselines used in ablations and examples: the paper's
// §4.2 argument is that structure-driven seeders concentrate on central
// majority nodes; these make that comparison concrete.

#ifndef TCIM_CORE_BASELINES_H_
#define TCIM_CORE_BASELINES_H_

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "graph/groups.h"

namespace tcim {

// Top-B nodes by out-degree.
std::vector<NodeId> TopDegreeSeeds(const Graph& graph, int budget);

// B distinct uniform-random nodes.
std::vector<NodeId> RandomSeeds(const Graph& graph, int budget, Rng& rng);

// Top-B nodes by PageRank.
std::vector<NodeId> PageRankSeeds(const Graph& graph, int budget);

// Degree seeding with a per-group proportional quota: each group receives
// ⌈B·|V_i|/|V|⌉ of the top-degree slots (a common "diversity" heuristic;
// contrast with the principled P4 objective).
std::vector<NodeId> GroupProportionalDegreeSeeds(const Graph& graph,
                                                 const GroupAssignment& groups,
                                                 int budget);

// DegreeDiscount (Chen, Wang, Yang, KDD'09): degree seeding that discounts
// each node's score for neighbors already chosen as seeds — the classic
// near-greedy IC heuristic. Uses the graph's mean edge probability as the
// discount parameter p; much better than raw degree, much cheaper than
// greedy.
std::vector<NodeId> DegreeDiscountSeeds(const Graph& graph, int budget);

}  // namespace tcim

#endif  // TCIM_CORE_BASELINES_H_
