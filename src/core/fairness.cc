#include "core/fairness.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace tcim {

double DisparityOfNormalized(const std::vector<double>& normalized) {
  if (normalized.size() < 2) return 0.0;
  const auto [min_it, max_it] =
      std::minmax_element(normalized.begin(), normalized.end());
  return *max_it - *min_it;
}

double GroupUtilityReport::DisparityAmong(
    const std::vector<GroupId>& group_ids) const {
  double lo = 1.0, hi = 0.0;
  for (const GroupId g : group_ids) {
    TCIM_CHECK(g >= 0 && g < static_cast<GroupId>(normalized.size()))
        << "group id out of range: " << g;
    lo = std::min(lo, normalized[g]);
    hi = std::max(hi, normalized[g]);
  }
  return group_ids.size() < 2 ? 0.0 : hi - lo;
}

std::string GroupUtilityReport::DebugString() const {
  std::string out =
      StrFormat("total=%s groups=[", FormatDouble(total_fraction, 4).c_str());
  for (size_t g = 0; g < normalized.size(); ++g) {
    if (g > 0) out += ", ";
    out += FormatDouble(normalized[g], 4);
  }
  out += StrFormat("] disparity=%s", FormatDouble(disparity, 4).c_str());
  return out;
}

std::vector<double> NormalizeCoverage(const GroupVector& coverage,
                                      const GroupAssignment& groups) {
  TCIM_CHECK(static_cast<int>(coverage.size()) == groups.num_groups());
  std::vector<double> normalized(coverage.size());
  for (size_t g = 0; g < coverage.size(); ++g) {
    normalized[g] = coverage[g] / groups.GroupSize(static_cast<GroupId>(g));
  }
  return normalized;
}

GroupUtilityReport MakeGroupUtilityReport(const GroupVector& coverage,
                                          const GroupAssignment& groups) {
  TCIM_CHECK(static_cast<int>(coverage.size()) == groups.num_groups());
  GroupUtilityReport report;
  report.coverage = coverage;
  report.normalized = NormalizeCoverage(coverage, groups);
  for (size_t g = 0; g < coverage.size(); ++g) {
    report.total += coverage[g];
  }
  report.total_fraction = report.total / groups.num_nodes();
  report.disparity = DisparityOfNormalized(report.normalized);
  return report;
}

std::pair<GroupId, GroupId> MostDisparatePair(
    const GroupUtilityReport& report) {
  TCIM_CHECK(report.normalized.size() >= 2) << "need at least two groups";
  const auto min_it =
      std::min_element(report.normalized.begin(), report.normalized.end());
  const auto max_it =
      std::max_element(report.normalized.begin(), report.normalized.end());
  GroupId lo = static_cast<GroupId>(min_it - report.normalized.begin());
  GroupId hi = static_cast<GroupId>(max_it - report.normalized.begin());
  if (hi > lo) std::swap(lo, hi);
  return {hi, lo};  // (smaller id, larger id)
}

}  // namespace tcim
