#include "core/baselines.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/check.h"
#include "graph/centrality.h"

namespace tcim {

std::vector<NodeId> TopDegreeSeeds(const Graph& graph, int budget) {
  return TopKByScore(DegreeCentrality(graph), budget);
}

std::vector<NodeId> RandomSeeds(const Graph& graph, int budget, Rng& rng) {
  TCIM_CHECK(budget <= graph.num_nodes())
      << "budget exceeds the number of nodes";
  std::unordered_set<NodeId> chosen;
  std::vector<NodeId> seeds;
  while (static_cast<int>(seeds.size()) < budget) {
    const NodeId v = static_cast<NodeId>(rng.NextIndex(graph.num_nodes()));
    if (chosen.insert(v).second) seeds.push_back(v);
  }
  return seeds;
}

std::vector<NodeId> PageRankSeeds(const Graph& graph, int budget) {
  return TopKByScore(PageRank(graph), budget);
}

std::vector<NodeId> GroupProportionalDegreeSeeds(const Graph& graph,
                                                 const GroupAssignment& groups,
                                                 int budget) {
  TCIM_CHECK(graph.num_nodes() == groups.num_nodes());
  const std::vector<double> degree = DegreeCentrality(graph);
  std::vector<NodeId> seeds;
  for (GroupId g = 0; g < groups.num_groups(); ++g) {
    // ⌈B · |V_g| / |V|⌉ slots for group g.
    const int slots = static_cast<int>(
        (static_cast<int64_t>(budget) * groups.GroupSize(g) +
         groups.num_nodes() - 1) /
        groups.num_nodes());
    std::vector<NodeId> members = groups.GroupMembers(g);
    std::sort(members.begin(), members.end(), [&](NodeId a, NodeId b) {
      if (degree[a] != degree[b]) return degree[a] > degree[b];
      return a < b;
    });
    for (int i = 0; i < slots && i < static_cast<int>(members.size()); ++i) {
      seeds.push_back(members[i]);
    }
  }
  // Proportional rounding can overshoot; keep the globally best `budget`.
  if (static_cast<int>(seeds.size()) > budget) {
    std::sort(seeds.begin(), seeds.end(), [&](NodeId a, NodeId b) {
      if (degree[a] != degree[b]) return degree[a] > degree[b];
      return a < b;
    });
    seeds.resize(budget);
  }
  return seeds;
}

std::vector<NodeId> DegreeDiscountSeeds(const Graph& graph, int budget) {
  const NodeId n = graph.num_nodes();
  TCIM_CHECK(budget >= 0);
  // Mean edge probability as the heuristic's p.
  double p = 0.0;
  if (graph.num_edges() > 0) {
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      p += graph.EdgeProbability(e);
    }
    p /= static_cast<double>(graph.num_edges());
  }

  std::vector<double> degree(n);
  std::vector<int> chosen_neighbors(n, 0);  // t_v of the paper
  std::vector<uint8_t> selected(n, 0);
  for (NodeId v = 0; v < n; ++v) degree[v] = graph.OutDegree(v);

  // Score dd_v = d_v - 2 t_v - (d_v - t_v) t_v p, recomputed lazily: only
  // neighbors of the picked seed change, so update scores locally.
  std::vector<double> score(n);
  for (NodeId v = 0; v < n; ++v) score[v] = degree[v];

  std::vector<NodeId> seeds;
  const int take = std::min<int>(budget, n);
  seeds.reserve(take);
  for (int i = 0; i < take; ++i) {
    NodeId best = -1;
    // Scores can go arbitrarily negative; this is a ranking heuristic, so
    // keep picking until the budget (or the node set) is exhausted.
    double best_score = -std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < n; ++v) {
      if (!selected[v]) {
        if (score[v] > best_score ||
            (score[v] == best_score && best != -1 && v < best)) {
          best_score = score[v];
          best = v;
        }
      }
    }
    if (best < 0) break;
    selected[best] = 1;
    seeds.push_back(best);
    // Discount the out-neighbors of the new seed.
    for (const AdjacentEdge& edge : graph.OutEdges(best)) {
      const NodeId w = edge.node;
      if (selected[w]) continue;
      chosen_neighbors[w]++;
      const double d = degree[w];
      const double t = chosen_neighbors[w];
      score[w] = d - 2.0 * t - (d - t) * t * p;
    }
  }
  return seeds;
}

}  // namespace tcim
