// Monotone concave wrappers H for the FairTCIM-Budget surrogate (paper P4).
//
// The curvature of H controls the fairness/influence trade-off (paper
// §5.1.2): higher curvature (log) penalizes disparity harder at more cost
// to total influence; H = identity recovers the unfair problem P1.
//
// The paper writes H(z) = log(z); we use log(1 + z) so H(0) is defined
// (a seed set can leave a group uninfluenced) — the curvature ordering
// log ≻ sqrt ≻ power(α→1) ≻ identity is unchanged. Power(α) with
// α ∈ (0, 1) generalizes sqrt and is used in the curvature ablation.

#ifndef TCIM_CORE_CONCAVE_H_
#define TCIM_CORE_CONCAVE_H_

#include <string>

namespace tcim {

class ConcaveFunction {
 public:
  enum class Kind { kIdentity, kLog, kSqrt, kPower, kAlphaFair };

  static ConcaveFunction Identity() { return ConcaveFunction(Kind::kIdentity, 1.0); }
  static ConcaveFunction Log() { return ConcaveFunction(Kind::kLog, 1.0); }
  static ConcaveFunction Sqrt() { return ConcaveFunction(Kind::kSqrt, 0.5); }
  // z^alpha with alpha in (0, 1]; alpha = 1 is identity-shaped.
  static ConcaveFunction Power(double alpha);

  // The α-fairness welfare family (Mo & Walrand 2000), shifted by 1 so it
  // is finite at z = 0 (consistent with Log() = log(1+z)):
  //   α = 0            -> z                (utilitarian, = Identity)
  //   α = 1            -> log(1+z)         (proportional fairness, = Log)
  //   α ∈ (0,1)∪(1,∞)  -> ((1+z)^{1-α} - 1) / (1-α)
  // Larger α penalizes disparity harder; α → ∞ approaches maximin (for
  // exact maximin use SolveMaximinTcim in core/maximin.h). Implements the
  // paper's future-work "extensions to different notions of fairness".
  static ConcaveFunction AlphaFair(double alpha);

  Kind kind() const { return kind_; }
  double alpha() const { return alpha_; }

  // H(z); requires z >= 0.
  double operator()(double z) const;

  // "identity", "log", "sqrt", "power(0.25)".
  std::string name() const;

 private:
  ConcaveFunction(Kind kind, double alpha) : kind_(kind), alpha_(alpha) {}

  Kind kind_;
  double alpha_;
};

}  // namespace tcim

#endif  // TCIM_CORE_CONCAVE_H_
