// Fairness measurement (paper §4.3).
//
// The unfairness of a seed set is the maximum pairwise gap between
// group-normalized utilities (Eq. 2):
//
//   disparity(S) = max_{i,j} | f_τ(S;V_i)/|V_i| − f_τ(S;V_j)/|V_j| |.

#ifndef TCIM_CORE_FAIRNESS_H_
#define TCIM_CORE_FAIRNESS_H_

#include <string>
#include <vector>

#include "graph/groups.h"
#include "sim/influence_oracle.h"

namespace tcim {

// Eq. 2 over already-normalized per-group utilities.
double DisparityOfNormalized(const std::vector<double>& normalized);

// Per-group fractions f_τ(S;V_i) / |V_i| of a coverage vector.
std::vector<double> NormalizeCoverage(const GroupVector& coverage,
                                      const GroupAssignment& groups);

// Per-group and aggregate utilities of one evaluated seed set.
struct GroupUtilityReport {
  GroupVector coverage;             // f_τ(S; V_i), expected counts
  std::vector<double> normalized;   // f_τ(S; V_i) / |V_i|
  double total = 0.0;               // f_τ(S; V)
  double total_fraction = 0.0;      // f_τ(S; V) / |V|
  double disparity = 0.0;           // Eq. 2

  // Restricts Eq. 2 to a subset of groups (the paper reports the pair with
  // the highest disparity on the 4-group Rice data).
  double DisparityAmong(const std::vector<GroupId>& group_ids) const;

  // "total=0.27 groups=[0.36, 0.05] disparity=0.31".
  std::string DebugString() const;
};

// Builds a report from per-group expected counts.
GroupUtilityReport MakeGroupUtilityReport(const GroupVector& coverage,
                                          const GroupAssignment& groups);

// Indices (i, j) of the most-disparate group pair in a report.
std::pair<GroupId, GroupId> MostDisparatePair(const GroupUtilityReport& report);

}  // namespace tcim

#endif  // TCIM_CORE_FAIRNESS_H_
