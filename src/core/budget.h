// Solvers for the budget-constrained problems.
//
//   SolveTcimBudget      — P1: max f_τ(S;V)         s.t. |S| ≤ B
//   SolveFairTcimBudget  — P4: max Σ_i H(f_τ(S;V_i)) s.t. |S| ≤ B
//
// Both run the shared (lazy-)greedy engine, which carries the paper's
// guarantees: (1−1/e)·OPT for P1 (§3.4) and Theorem 1 for P4.

#ifndef TCIM_CORE_BUDGET_H_
#define TCIM_CORE_BUDGET_H_

#include <vector>

#include "core/concave.h"
#include "core/greedy.h"
#include "core/objectives.h"
#include "sim/influence_oracle.h"

namespace tcim {

struct BudgetOptions {
  int budget = 30;
  bool lazy = true;
  // Optional candidate restriction (nullptr = all nodes).
  const std::vector<NodeId>* candidates = nullptr;
};

// P1 (TCIM-Budget): greedy maximization of total time-critical influence.
GreedyResult SolveTcimBudget(GroupCoverageOracle& oracle,
                             const BudgetOptions& options);

// P4 (FairTCIM-Budget): greedy maximization of Σ_i λ_i H(f_i).
GreedyResult SolveFairTcimBudget(GroupCoverageOracle& oracle, ConcaveFunction h,
                                 const BudgetOptions& options,
                                 ConcaveSumObjective::Options objective_options = {});

}  // namespace tcim

#endif  // TCIM_CORE_BUDGET_H_
