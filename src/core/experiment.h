// Shared experiment harness: configure → solve → evaluate on fresh worlds.
//
// Every figure bench follows the paper's protocol (§6.1): seeds are picked
// by solving the corresponding problem on one Monte-Carlo estimate, then the
// reported utilities are re-estimated with an *independent* set of worlds
// ("we use this seed set to estimate the expected number of nodes
// influenced"). This module provides that protocol once so the benches only
// differ in dataset and parameter sweeps.

#ifndef TCIM_CORE_EXPERIMENT_H_
#define TCIM_CORE_EXPERIMENT_H_

#include <vector>

#include "common/thread_pool.h"
#include "core/budget.h"
#include "core/concave.h"
#include "core/cover.h"
#include "core/fairness.h"
#include "core/greedy.h"
#include "graph/graph.h"
#include "graph/groups.h"
#include "sim/influence_oracle.h"

namespace tcim {

struct ExperimentConfig {
  // Deadline τ (kNoDeadline for τ = ∞).
  int deadline = 20;
  // Worlds used for seed *selection*.
  int num_worlds = 200;
  // Worlds used for *evaluation*; 0 means "same count as num_worlds".
  int eval_num_worlds = 0;
  uint64_t selection_seed = 0x5e1ec7ull;
  uint64_t evaluation_seed = 0xe7a1ull;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  // Optional candidate restriction for selection (Instagram: 5000 nodes).
  const std::vector<NodeId>* candidates = nullptr;
  ThreadPool* pool = nullptr;
};

// A solved-and-evaluated experiment.
struct ExperimentOutcome {
  GreedyResult selection;      // greedy trace on the selection worlds
  GroupUtilityReport report;   // fresh-world evaluation of selection.seeds
};

// Budget problems. `h == nullptr` solves P1 (TCIM-Budget); otherwise P4
// (FairTCIM-Budget) with the given concave wrapper.
ExperimentOutcome RunBudgetExperiment(
    const Graph& graph, const GroupAssignment& groups,
    const ExperimentConfig& config, int budget,
    const ConcaveFunction* h = nullptr,
    const ConcaveSumObjective::Options& objective_options = {});

// Cover problems. `fair == false` solves P2 (TCIM-Cover); otherwise P6
// (FairTCIM-Cover).
ExperimentOutcome RunCoverExperiment(const Graph& graph,
                                     const GroupAssignment& groups,
                                     const ExperimentConfig& config,
                                     double quota, bool fair,
                                     int max_seeds = 500);

// Evaluates an arbitrary seed set on the configuration's evaluation worlds.
GroupUtilityReport EvaluateSeedSet(const Graph& graph,
                                   const GroupAssignment& groups,
                                   const std::vector<NodeId>& seeds,
                                   const ExperimentConfig& config);

// Builds the selection oracle for a config (exposed for custom flows).
OracleOptions SelectionOracleOptions(const ExperimentConfig& config);
OracleOptions EvaluationOracleOptions(const ExperimentConfig& config);

}  // namespace tcim

#endif  // TCIM_CORE_EXPERIMENT_H_
