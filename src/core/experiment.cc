#include "core/experiment.h"

namespace tcim {

OracleOptions SelectionOracleOptions(const ExperimentConfig& config) {
  OracleOptions options;
  options.num_worlds = config.num_worlds;
  options.deadline = config.deadline;
  options.model = config.model;
  options.seed = config.selection_seed;
  options.pool = config.pool;
  return options;
}

OracleOptions EvaluationOracleOptions(const ExperimentConfig& config) {
  OracleOptions options;
  options.num_worlds =
      config.eval_num_worlds > 0 ? config.eval_num_worlds : config.num_worlds;
  options.deadline = config.deadline;
  options.model = config.model;
  options.seed = config.evaluation_seed;
  options.pool = config.pool;
  return options;
}

GroupUtilityReport EvaluateSeedSet(const Graph& graph,
                                   const GroupAssignment& groups,
                                   const std::vector<NodeId>& seeds,
                                   const ExperimentConfig& config) {
  InfluenceOracle oracle(&graph, &groups, EvaluationOracleOptions(config));
  return MakeGroupUtilityReport(oracle.EstimateGroupCoverage(seeds), groups);
}

ExperimentOutcome RunBudgetExperiment(
    const Graph& graph, const GroupAssignment& groups,
    const ExperimentConfig& config, int budget, const ConcaveFunction* h,
    const ConcaveSumObjective::Options& objective_options) {
  InfluenceOracle oracle(&graph, &groups, SelectionOracleOptions(config));
  BudgetOptions options;
  options.budget = budget;
  options.candidates = config.candidates;

  ExperimentOutcome outcome;
  if (h == nullptr) {
    outcome.selection = SolveTcimBudget(oracle, options);
  } else {
    outcome.selection =
        SolveFairTcimBudget(oracle, *h, options, objective_options);
  }
  outcome.report =
      EvaluateSeedSet(graph, groups, outcome.selection.seeds, config);
  return outcome;
}

ExperimentOutcome RunCoverExperiment(const Graph& graph,
                                     const GroupAssignment& groups,
                                     const ExperimentConfig& config,
                                     double quota, bool fair, int max_seeds) {
  InfluenceOracle oracle(&graph, &groups, SelectionOracleOptions(config));
  CoverOptions options;
  options.quota = quota;
  options.max_seeds = max_seeds;
  options.candidates = config.candidates;

  ExperimentOutcome outcome;
  outcome.selection = fair ? SolveFairTcimCover(oracle, options)
                           : SolveTcimCover(oracle, options);
  outcome.report =
      EvaluateSeedSet(graph, groups, outcome.selection.seeds, config);
  return outcome;
}

}  // namespace tcim
