// Maximin group fairness: max_S min_i f_τ(S;V_i)/|V_i| subject to |S| ≤ B.
//
// This is the fairness notion of Rahmattalabi et al. (NeurIPS'19), which
// the paper contrasts with its parity notion (§2: "their notion of fairness
// is maximizing the minimum influence for any group, while we propose
// parity"). Implemented here so the two notions can be compared empirically
// (bench_ablation) and as another instance of the paper's "different
// notions of fairness" future work.
//
// min_i is not submodular, so greedy on it has no guarantee. We implement
// the SATURATE scheme (Krause, McMahan, Guestrin, Gupta, JMLR 2008):
// binary-search a saturation level c, testing feasibility of
//
//   Σ_i min(f_i/|V_i|, c) ≥ k·c
//
// with the truncated (submodular) greedy — exactly the machinery of the
// paper's P6 — under a relaxed budget α·B. With the standard bicriteria
// guarantee, the returned set has min-group utility ≥ the best achievable
// at budget B while using at most α·B seeds (α = 1 by default: heuristic
// but effective; α = ln|V| recovers the theoretical guarantee).

#ifndef TCIM_CORE_MAXIMIN_H_
#define TCIM_CORE_MAXIMIN_H_

#include <vector>

#include "core/greedy.h"
#include "sim/oracle_interface.h"

namespace tcim {

struct MaximinOptions {
  int budget = 30;
  // Budget relaxation factor α ≥ 1 of SATURATE's bicriteria guarantee.
  double budget_relaxation = 1.0;
  // Binary-search resolution on the saturation level c ∈ [0, 1].
  double level_tolerance = 1e-3;
  bool lazy = true;
  const std::vector<NodeId>* candidates = nullptr;
};

struct MaximinResult {
  std::vector<NodeId> seeds;
  GroupVector coverage;        // per-group expected counts of `seeds`
  double min_group_utility = 0.0;  // min_i f_i / |V_i| (the objective)
  double saturation_level = 0.0;   // the highest feasible c found
  int probes = 0;                  // feasibility probes performed
};

// Runs SATURATE on `oracle`. The oracle is Reset() and left holding the
// returned seed set.
MaximinResult SolveMaximinTcim(GroupCoverageOracle& oracle,
                               const MaximinOptions& options);

}  // namespace tcim

#endif  // TCIM_CORE_MAXIMIN_H_
