// Robustness analysis of seed sets.
//
// Two stress models, motivated by the comparison with Rahmattalabi et al.
// (§2: "they consider a setting where seeds could be deactivated randomly
// while we do not have any stochasticity in seed activation"):
//
//   * random seed deactivation — each seed survives independently with
//     probability q; reports the expected utility/disparity over survival
//     patterns (Monte-Carlo over patterns × influence worlds);
//   * activation-probability perturbation — re-evaluates the seed set on a
//     graph whose edge probabilities are scaled by a factor, probing
//     sensitivity to misestimated pe.

#ifndef TCIM_CORE_ROBUSTNESS_H_
#define TCIM_CORE_ROBUSTNESS_H_

#include <vector>

#include "common/rng.h"
#include "core/experiment.h"
#include "core/fairness.h"
#include "graph/graph.h"
#include "graph/groups.h"

namespace tcim {

struct SeedDeactivationOptions {
  // Per-seed survival probability q.
  double survival_probability = 0.8;
  // Survival patterns sampled.
  int num_patterns = 50;
  uint64_t pattern_seed = 0xdeadull;
};

struct RobustnessReport {
  GroupUtilityReport mean;       // averaged per-group utilities
  double worst_total_fraction = 0.0;   // worst sampled pattern, total
  double worst_min_group = 0.0;        // worst sampled pattern, min group
  double worst_disparity = 0.0;        // largest sampled disparity
};

// Evaluates `seeds` under random deactivation: for each sampled survival
// pattern the surviving subset is evaluated on the config's evaluation
// worlds; reports the mean utilities and worst-case pattern statistics.
RobustnessReport EvaluateUnderSeedDeactivation(
    const Graph& graph, const GroupAssignment& groups,
    const std::vector<NodeId>& seeds, const ExperimentConfig& config,
    const SeedDeactivationOptions& options);

// Re-evaluates `seeds` with every edge probability multiplied by `scale`
// (clamped to [0, 1]) — sensitivity to a misestimated pe.
GroupUtilityReport EvaluateWithScaledProbabilities(
    const Graph& graph, const GroupAssignment& groups,
    const std::vector<NodeId>& seeds, const ExperimentConfig& config,
    double scale);

}  // namespace tcim

#endif  // TCIM_CORE_ROBUSTNESS_H_
