#include "core/budget.h"

namespace tcim {

GreedyResult SolveTcimBudget(GroupCoverageOracle& oracle,
                             const BudgetOptions& options) {
  TotalInfluenceObjective objective;
  GreedyOptions greedy;
  greedy.max_seeds = options.budget;
  greedy.lazy = options.lazy;
  greedy.candidates = options.candidates;
  return RunGreedy(oracle, objective, greedy);
}

GreedyResult SolveFairTcimBudget(
    GroupCoverageOracle& oracle, ConcaveFunction h, const BudgetOptions& options,
    ConcaveSumObjective::Options objective_options) {
  ConcaveSumObjective objective(h, &oracle.groups(),
                                std::move(objective_options));
  GreedyOptions greedy;
  greedy.max_seeds = options.budget;
  greedy.lazy = options.lazy;
  greedy.candidates = options.candidates;
  return RunGreedy(oracle, objective, greedy);
}

}  // namespace tcim
