#include "core/cover.h"

namespace tcim {

GreedyResult SolveTcimCover(GroupCoverageOracle& oracle,
                            const CoverOptions& options) {
  TotalQuotaObjective objective(options.quota, oracle.graph().num_nodes());
  GreedyOptions greedy;
  greedy.max_seeds = options.max_seeds;
  greedy.target_value = objective.SaturationValue();
  greedy.target_tolerance = options.tolerance;
  greedy.lazy = options.lazy;
  greedy.candidates = options.candidates;
  return RunGreedy(oracle, objective, greedy);
}

GreedyResult SolveFairTcimCover(GroupCoverageOracle& oracle,
                                const CoverOptions& options) {
  TruncatedQuotaObjective objective(options.quota, &oracle.groups());
  GreedyOptions greedy;
  greedy.max_seeds = options.max_seeds;
  greedy.target_value = objective.SaturationValue();
  greedy.target_tolerance = options.tolerance;
  greedy.lazy = options.lazy;
  greedy.candidates = options.candidates;
  return RunGreedy(oracle, objective, greedy);
}

}  // namespace tcim
