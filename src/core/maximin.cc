#include "core/maximin.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/objectives.h"

namespace tcim {

namespace {

// Smallest normalized per-group coverage.
double MinGroupUtility(const GroupVector& coverage,
                       const GroupAssignment& groups) {
  double lowest = 1.0;
  for (size_t g = 0; g < coverage.size(); ++g) {
    lowest = std::min(lowest,
                      coverage[g] / groups.GroupSize(static_cast<GroupId>(g)));
  }
  return lowest;
}

}  // namespace

MaximinResult SolveMaximinTcim(GroupCoverageOracle& oracle,
                               const MaximinOptions& options) {
  TCIM_CHECK(options.budget >= 0);
  TCIM_CHECK(options.budget_relaxation >= 1.0)
      << "budget relaxation must be >= 1";
  TCIM_CHECK(options.level_tolerance > 0.0);
  const GroupAssignment& groups = oracle.groups();
  const int relaxed_budget = static_cast<int>(
      std::ceil(options.budget * options.budget_relaxation));

  MaximinResult result;
  result.coverage.assign(groups.num_groups(), 0.0);
  if (options.budget == 0) return result;

  // Feasibility probe: can a relaxed-budget greedy saturate level c?
  // Returns the greedy outcome so the best feasible probe can be kept.
  auto probe = [&](double level) {
    TruncatedQuotaObjective objective(level, &groups);
    GreedyOptions greedy;
    greedy.max_seeds = relaxed_budget;
    greedy.target_value = objective.SaturationValue();
    greedy.lazy = options.lazy;
    greedy.candidates = options.candidates;
    return RunGreedy(oracle, objective, greedy);
  };

  // Upper bound for the search: the whole population fraction reachable is
  // at most 1; start the bisection on [0, 1].
  double low = 0.0;   // known feasible (empty set saturates c = 0)
  double high = 1.0;  // assumed infeasible until proven otherwise
  GreedyResult best;  // greedy outcome at the best feasible level
  bool have_best = false;

  while (high - low > options.level_tolerance) {
    const double mid = 0.5 * (low + high);
    const GreedyResult outcome = probe(mid);
    ++result.probes;
    if (outcome.target_reached) {
      low = mid;
      best = outcome;
      have_best = true;
    } else {
      high = mid;
    }
  }

  if (!have_best) {
    // Even tiny levels failed (e.g. isolated empty-reach groups): fall back
    // to the level-0... probe(level_tolerance) may still help; keep greedy
    // outcome of the last probe as a best effort.
    best = probe(options.level_tolerance / 2);
    ++result.probes;
  }

  // The last probe may not be the best one; leave the oracle holding the
  // returned set as documented.
  oracle.Reset();
  for (const NodeId s : best.seeds) oracle.AddSeed(s);

  result.seeds = best.seeds;
  result.coverage = best.coverage;
  result.saturation_level = low;
  result.min_group_utility = MinGroupUtility(best.coverage, groups);
  return result;
}

}  // namespace tcim
