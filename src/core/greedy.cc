#include "core/greedy.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"
#include "common/rng.h"

namespace tcim {

namespace {

struct HeapEntry {
  double gain;        // possibly stale upper bound on the objective gain
  NodeId node;
  int evaluated_at;   // seed-count at the time `gain` was computed

  bool operator<(const HeapEntry& other) const {
    if (gain != other.gain) return gain < other.gain;
    return node > other.node;  // deterministic tie-break: smaller id first
  }
};

}  // namespace

GreedyResult RunGreedy(GroupCoverageOracle& oracle, const Objective& objective,
                       const GreedyOptions& options) {
  TCIM_CHECK(options.max_seeds >= 0);
  oracle.Reset();

  std::vector<NodeId> candidates;
  if (options.candidates != nullptr) {
    candidates = *options.candidates;
    for (const NodeId v : candidates) {
      TCIM_CHECK(v >= 0 && v < oracle.graph().num_nodes())
          << "candidate out of range: " << v;
    }
  } else {
    candidates.resize(oracle.graph().num_nodes());
    for (NodeId v = 0; v < oracle.graph().num_nodes(); ++v) candidates[v] = v;
  }

  GreedyResult result;
  result.coverage.assign(oracle.num_groups(), 0.0);
  result.objective_value = objective.Value(result.coverage);

  auto target_met = [&] {
    return result.objective_value + options.target_tolerance >=
           options.target_value;
  };
  if (target_met() || options.max_seeds == 0) {
    result.target_reached = target_met();
    return result;
  }

  std::vector<uint8_t> selected(oracle.graph().num_nodes(), 0);

  if (options.stochastic_epsilon > 0.0) {
    // Stochastic greedy: per iteration, evaluate a fresh uniform sample of
    // unselected candidates of size (n/B)·ln(1/ε).
    TCIM_CHECK(options.stochastic_epsilon < 1.0)
        << "stochastic epsilon must be in (0,1)";
    Rng rng(options.stochastic_seed);
    const size_t sample_size = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(static_cast<double>(candidates.size()) /
                         options.max_seeds *
                         std::log(1.0 / options.stochastic_epsilon))));
    std::vector<NodeId> unselected = candidates;
    int consecutive_empty_batches = 0;
    while (static_cast<int>(result.seeds.size()) < options.max_seeds &&
           !unselected.empty() && !target_met()) {
      // Partial Fisher-Yates: move a fresh sample to the front.
      const size_t take = std::min(sample_size, unselected.size());
      for (size_t i = 0; i < take; ++i) {
        const size_t j = i + rng.NextIndex(unselected.size() - i);
        std::swap(unselected[i], unselected[j]);
      }
      NodeId best = -1;
      size_t best_index = 0;
      double best_gain = 0.0;
      for (size_t i = 0; i < take; ++i) {
        const GroupVector marginal = oracle.MarginalGain(unselected[i]);
        ++result.oracle_calls;
        const double gain = objective.Gain(result.coverage, marginal);
        if (gain > best_gain) {
          best_gain = gain;
          best = unselected[i];
          best_index = i;
        }
      }
      if (best < 0) {
        // Sampled batch was all zero-gain. If it covered every remaining
        // candidate, or keeps happening, no candidate can help — stop.
        if (take == unselected.size() || ++consecutive_empty_batches >= 8) {
          break;
        }
        continue;
      }
      consecutive_empty_batches = 0;
      const GroupVector realized = oracle.AddSeed(best);
      selected[best] = 1;
      unselected.erase(unselected.begin() + best_index);
      for (size_t g = 0; g < result.coverage.size(); ++g) {
        result.coverage[g] += realized[g];
      }
      result.objective_value = objective.Value(result.coverage);
      result.seeds.push_back(best);
      result.trace.push_back(GreedyStep{best, best_gain,
                                        result.objective_value,
                                        result.coverage});
    }
    result.target_reached = target_met();
    return result;
  }

  if (options.lazy) {
    // CELF: initialize the heap with first-iteration gains.
    std::priority_queue<HeapEntry> heap;
    for (const NodeId v : candidates) {
      if (selected[v]) continue;  // tolerate duplicate candidate entries
      selected[v] = 1;            // mark to dedup; cleared below
    }
    for (const NodeId v : candidates) {
      if (!selected[v]) continue;
      selected[v] = 0;
      const GroupVector marginal = oracle.MarginalGain(v);
      ++result.oracle_calls;
      heap.push(HeapEntry{objective.Gain(result.coverage, marginal), v, 0});
    }

    while (static_cast<int>(result.seeds.size()) < options.max_seeds &&
           !heap.empty() && !target_met()) {
      HeapEntry top = heap.top();
      heap.pop();
      if (selected[top.node]) continue;
      const int iteration = static_cast<int>(result.seeds.size());
      if (top.evaluated_at != iteration) {
        // Stale: re-evaluate against the current coverage and reinsert.
        const GroupVector marginal = oracle.MarginalGain(top.node);
        ++result.oracle_calls;
        heap.push(HeapEntry{objective.Gain(result.coverage, marginal),
                            top.node, iteration});
        continue;
      }
      if (top.gain <= 0.0) break;  // nothing can improve the objective
      // Fresh maximum: commit it.
      const GroupVector realized = oracle.AddSeed(top.node);
      selected[top.node] = 1;
      for (size_t g = 0; g < result.coverage.size(); ++g) {
        result.coverage[g] += realized[g];
      }
      result.objective_value = objective.Value(result.coverage);
      result.seeds.push_back(top.node);
      result.trace.push_back(GreedyStep{top.node, top.gain,
                                        result.objective_value,
                                        result.coverage});
    }
  } else {
    // Plain greedy: re-evaluate every candidate each iteration.
    while (static_cast<int>(result.seeds.size()) < options.max_seeds &&
           !target_met()) {
      NodeId best = -1;
      double best_gain = 0.0;
      for (const NodeId v : candidates) {
        if (selected[v]) continue;
        const GroupVector marginal = oracle.MarginalGain(v);
        ++result.oracle_calls;
        const double gain = objective.Gain(result.coverage, marginal);
        if (gain > best_gain || (gain == best_gain && best != -1 && v < best)) {
          if (gain > 0.0) {
            best_gain = gain;
            best = v;
          }
        }
      }
      if (best < 0) break;
      const GroupVector realized = oracle.AddSeed(best);
      selected[best] = 1;
      for (size_t g = 0; g < result.coverage.size(); ++g) {
        result.coverage[g] += realized[g];
      }
      result.objective_value = objective.Value(result.coverage);
      result.seeds.push_back(best);
      result.trace.push_back(GreedyStep{best, best_gain,
                                        result.objective_value,
                                        result.coverage});
    }
  }

  result.target_reached = target_met();
  return result;
}

}  // namespace tcim
