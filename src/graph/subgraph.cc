#include "graph/subgraph.h"

#include <algorithm>

#include "common/check.h"
#include "graph/algorithms.h"

namespace tcim {

SubgraphResult InducedSubgraph(const Graph& graph,
                               const std::vector<NodeId>& keep) {
  SubgraphResult result;
  result.old_to_new.assign(graph.num_nodes(), -1);

  std::vector<NodeId> sorted = keep;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (const NodeId v : sorted) {
    TCIM_CHECK(v >= 0 && v < graph.num_nodes())
        << "node out of range: " << v;
  }

  result.new_to_old = sorted;
  for (NodeId new_id = 0; new_id < static_cast<NodeId>(sorted.size());
       ++new_id) {
    result.old_to_new[sorted[new_id]] = new_id;
  }

  GraphBuilder builder(static_cast<NodeId>(sorted.size()));
  for (const NodeId old_source : sorted) {
    for (const AdjacentEdge& edge : graph.OutEdges(old_source)) {
      const NodeId new_target = result.old_to_new[edge.node];
      if (new_target >= 0) {
        builder.AddEdge(result.old_to_new[old_source], new_target,
                        edge.probability);
      }
    }
  }
  result.graph = builder.Build();
  return result;
}

SubgraphResult LargestComponent(const Graph& graph) {
  int num_components = 0;
  const std::vector<int> component =
      WeaklyConnectedComponents(graph, &num_components);
  std::vector<int64_t> sizes(std::max(1, num_components), 0);
  for (const int c : component) sizes[c]++;
  const int largest = static_cast<int>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<NodeId> keep;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (component[v] == largest) keep.push_back(v);
  }
  return InducedSubgraph(graph, keep);
}

GroupAssignment RestrictGroups(const GroupAssignment& groups,
                               const SubgraphResult& subgraph) {
  TCIM_CHECK(groups.num_nodes() ==
             static_cast<NodeId>(subgraph.old_to_new.size()))
      << "groups were built for a different graph";
  std::vector<GroupId> group_of;
  group_of.reserve(subgraph.new_to_old.size());
  for (const NodeId old_id : subgraph.new_to_old) {
    group_of.push_back(groups.GroupOf(old_id));
  }
  // Group ids may no longer be dense if a whole group was dropped;
  // compact them.
  GroupId max_group = -1;
  for (const GroupId g : group_of) max_group = std::max(max_group, g);
  std::vector<GroupId> remap(max_group + 1, -1);
  GroupId next = 0;
  for (const GroupId g : group_of) {
    if (remap[g] == -1) remap[g] = next++;
  }
  for (GroupId& g : group_of) g = remap[g];
  return GroupAssignment(std::move(group_of));
}

std::vector<NodeId> RestrictNodes(const std::vector<NodeId>& nodes,
                                  const SubgraphResult& subgraph) {
  std::vector<NodeId> mapped;
  for (const NodeId v : nodes) {
    TCIM_CHECK(v >= 0 && v < static_cast<NodeId>(subgraph.old_to_new.size()))
        << "node out of range: " << v;
    const NodeId new_id = subgraph.old_to_new[v];
    if (new_id >= 0) mapped.push_back(new_id);
  }
  return mapped;
}

}  // namespace tcim
