#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace tcim {

namespace {

// Packs an unordered node pair into a 64-bit key for dedup sets.
inline uint64_t PairKey(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

// Geometric skipping: iterate pairs hit by independent Bernoulli(p) trials
// without testing every pair. Calls visit(index) for each selected index in
// [0, total). Standard G(n,p) speedup (Batagelj–Brandes).
template <typename Visitor>
void SampleBernoulliIndices(int64_t total, double p, Rng& rng,
                            Visitor&& visit) {
  if (p <= 0.0 || total <= 0) return;
  if (p >= 1.0) {
    for (int64_t i = 0; i < total; ++i) visit(i);
    return;
  }
  const double log_q = std::log1p(-p);
  int64_t index = -1;
  while (true) {
    double u = rng.NextDouble();
    while (u <= 0.0) u = rng.NextDouble();
    const double skip = std::floor(std::log(u) / log_q);
    if (skip > static_cast<double>(total)) break;  // guards overflow
    index += 1 + static_cast<int64_t>(skip);
    if (index >= total) break;
    visit(index);
  }
}

// Dense group-id vector from sizes: [0,0,...,1,1,...].
std::vector<GroupId> GroupIdsFromSizes(const std::vector<NodeId>& sizes) {
  std::vector<GroupId> ids;
  for (size_t g = 0; g < sizes.size(); ++g) {
    TCIM_CHECK(sizes[g] > 0) << "group " << g << " must be non-empty";
    ids.insert(ids.end(), sizes[g], static_cast<GroupId>(g));
  }
  return ids;
}

}  // namespace

GroupedGraph GenerateSbm(const SbmParams& params, Rng& rng) {
  TCIM_CHECK(params.num_nodes >= 2) << "need at least two nodes";
  TCIM_CHECK(params.majority_fraction > 0.0 && params.majority_fraction < 1.0)
      << "majority fraction must be in (0,1)";
  const NodeId n1 = static_cast<NodeId>(
      std::lround(params.majority_fraction * params.num_nodes));
  const NodeId n2 = params.num_nodes - n1;
  TCIM_CHECK(n1 > 0 && n2 > 0) << "both groups must be non-empty";
  return GenerateBlockModel(
      {n1, n2},
      {{params.p_hom, params.p_het}, {params.p_het, params.p_hom}},
      params.activation_probability, rng);
}

GroupedGraph GenerateBlockModel(
    const std::vector<NodeId>& group_sizes,
    const std::vector<std::vector<double>>& block_probability,
    double activation_probability, Rng& rng) {
  const int k = static_cast<int>(group_sizes.size());
  TCIM_CHECK(k >= 1);
  TCIM_CHECK(static_cast<int>(block_probability.size()) == k)
      << "block probability matrix must be k x k";
  for (const auto& row : block_probability) {
    TCIM_CHECK(static_cast<int>(row.size()) == k);
  }

  NodeId n = 0;
  std::vector<NodeId> group_start(k);
  for (int g = 0; g < k; ++g) {
    group_start[g] = n;
    n += group_sizes[g];
  }
  GraphBuilder builder(n);

  for (int g = 0; g < k; ++g) {
    // Within-block: unordered pairs inside group g.
    const int64_t ng = group_sizes[g];
    const int64_t within_pairs = ng * (ng - 1) / 2;
    SampleBernoulliIndices(
        within_pairs, block_probability[g][g], rng, [&](int64_t index) {
          // Unrank pair index -> (i, j), i < j, within the group.
          // Row i contributes (ng - 1 - i) pairs.
          int64_t i = 0;
          int64_t remaining = index;
          int64_t row_len = ng - 1;
          while (remaining >= row_len) {
            remaining -= row_len;
            --row_len;
            ++i;
          }
          const int64_t j = i + 1 + remaining;
          builder.AddUndirectedEdge(group_start[g] + static_cast<NodeId>(i),
                                    group_start[g] + static_cast<NodeId>(j),
                                    activation_probability);
        });
    // Across-block: full bipartite index space for h > g.
    for (int h = g + 1; h < k; ++h) {
      TCIM_CHECK(std::abs(block_probability[g][h] - block_probability[h][g]) <
                 1e-12)
          << "block probability matrix must be symmetric";
      const int64_t cross_pairs = ng * static_cast<int64_t>(group_sizes[h]);
      SampleBernoulliIndices(
          cross_pairs, block_probability[g][h], rng, [&](int64_t index) {
            const NodeId i = static_cast<NodeId>(index / group_sizes[h]);
            const NodeId j = static_cast<NodeId>(index % group_sizes[h]);
            builder.AddUndirectedEdge(group_start[g] + i, group_start[h] + j,
                                      activation_probability);
          });
    }
  }

  return GroupedGraph{builder.Build(),
                      GroupAssignment(GroupIdsFromSizes(group_sizes))};
}

GroupedGraph GenerateExactBlockGraph(
    const std::vector<NodeId>& group_sizes,
    const std::vector<std::vector<int64_t>>& block_edges,
    double activation_probability, Rng& rng) {
  const int k = static_cast<int>(group_sizes.size());
  TCIM_CHECK(k >= 1);
  TCIM_CHECK(static_cast<int>(block_edges.size()) == k);
  for (const auto& row : block_edges) {
    TCIM_CHECK(static_cast<int>(row.size()) == k);
  }

  NodeId n = 0;
  std::vector<NodeId> group_start(k);
  for (int g = 0; g < k; ++g) {
    group_start[g] = n;
    n += group_sizes[g];
  }
  GraphBuilder builder(n);
  std::unordered_set<uint64_t> used;

  auto sample_block = [&](int g, int h, int64_t count) {
    const int64_t capacity =
        (g == h) ? static_cast<int64_t>(group_sizes[g]) * (group_sizes[g] - 1) / 2
                 : static_cast<int64_t>(group_sizes[g]) * group_sizes[h];
    TCIM_CHECK(count >= 0 && count <= capacity)
        << "block (" << g << "," << h << ") cannot hold " << count
        << " distinct undirected edges (capacity " << capacity << ")";
    // Rejection sampling of distinct pairs. All surrogate blocks are sparse
    // relative to capacity (checked above), so rejection terminates fast;
    // the loop guard catches pathological densities.
    int64_t placed = 0;
    int64_t attempts = 0;
    const int64_t max_attempts = 50 * count + 1000;
    while (placed < count) {
      TCIM_CHECK(++attempts <= max_attempts)
          << "exact block sampler stalled; block too dense for rejection "
          << "sampling (g=" << g << " h=" << h << " count=" << count << ")";
      NodeId a = group_start[g] +
                 static_cast<NodeId>(rng.NextIndex(group_sizes[g]));
      NodeId b = group_start[h] +
                 static_cast<NodeId>(rng.NextIndex(group_sizes[h]));
      if (a == b) continue;
      const uint64_t key = PairKey(a, b);
      if (!used.insert(key).second) continue;
      builder.AddUndirectedEdge(a, b, activation_probability);
      ++placed;
    }
  };

  for (int g = 0; g < k; ++g) {
    sample_block(g, g, block_edges[g][g]);
    for (int h = g + 1; h < k; ++h) {
      TCIM_CHECK(block_edges[g][h] == block_edges[h][g])
          << "block edge-count matrix must be symmetric";
      sample_block(g, h, block_edges[g][h]);
    }
  }

  return GroupedGraph{builder.Build(),
                      GroupAssignment(GroupIdsFromSizes(group_sizes))};
}

Graph GenerateErdosRenyi(NodeId num_nodes, int64_t num_undirected_edges,
                         double activation_probability, Rng& rng) {
  TCIM_CHECK(num_nodes >= 2);
  const int64_t capacity =
      static_cast<int64_t>(num_nodes) * (num_nodes - 1) / 2;
  TCIM_CHECK(num_undirected_edges >= 0 && num_undirected_edges <= capacity)
      << "too many edges requested";
  GraphBuilder builder(num_nodes);
  std::unordered_set<uint64_t> used;
  int64_t placed = 0;
  while (placed < num_undirected_edges) {
    const NodeId a = static_cast<NodeId>(rng.NextIndex(num_nodes));
    const NodeId b = static_cast<NodeId>(rng.NextIndex(num_nodes));
    if (a == b) continue;
    if (!used.insert(PairKey(a, b)).second) continue;
    builder.AddUndirectedEdge(a, b, activation_probability);
    ++placed;
  }
  return builder.Build();
}

Graph GenerateBarabasiAlbert(NodeId num_nodes, int edges_per_node,
                             double activation_probability, Rng& rng) {
  TCIM_CHECK(edges_per_node >= 1);
  TCIM_CHECK(num_nodes > edges_per_node)
      << "need more nodes than edges per node";
  GraphBuilder builder(num_nodes);
  // Repeated-endpoint list: sampling uniformly from it is sampling
  // proportionally to degree.
  std::vector<NodeId> endpoint_pool;
  // Seed clique over the first (edges_per_node + 1) nodes.
  for (NodeId u = 0; u <= edges_per_node; ++u) {
    for (NodeId v = u + 1; v <= edges_per_node; ++v) {
      builder.AddUndirectedEdge(u, v, activation_probability);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  for (NodeId v = edges_per_node + 1; v < num_nodes; ++v) {
    std::unordered_set<NodeId> chosen;
    while (static_cast<int>(chosen.size()) < edges_per_node) {
      const NodeId target =
          endpoint_pool[rng.NextIndex(endpoint_pool.size())];
      chosen.insert(target);
    }
    for (const NodeId target : chosen) {
      builder.AddUndirectedEdge(v, target, activation_probability);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(target);
    }
  }
  return builder.Build();
}

Graph WithWeightedCascadeProbabilities(const Graph& graph) {
  GraphBuilder builder(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const AdjacentEdge& edge : graph.OutEdges(v)) {
      const int in_degree = graph.InDegree(edge.node);
      builder.AddEdge(v, edge.node, in_degree > 0 ? 1.0 / in_degree : 0.0);
    }
  }
  return builder.Build();
}

Graph WithUniformProbability(const Graph& graph, double pe) {
  GraphBuilder builder(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const AdjacentEdge& edge : graph.OutEdges(v)) {
      builder.AddEdge(v, edge.node, pe);
    }
  }
  return builder.Build();
}

}  // namespace tcim
