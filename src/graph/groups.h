// Socially salient groups: a partition of the node set into k disjoint
// groups V_1..V_k (paper §4.1). Group ids are dense [0, k).

#ifndef TCIM_GRAPH_GROUPS_H_
#define TCIM_GRAPH_GROUPS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace tcim {

using GroupId = int32_t;

class GroupAssignment {
 public:
  GroupAssignment() = default;

  // `group_of[v]` is the group of node v; values must be a dense range
  // [0, k) for some k >= 1 (checked).
  explicit GroupAssignment(std::vector<GroupId> group_of);

  // All nodes in one group (k = 1).
  static GroupAssignment SingleGroup(NodeId num_nodes);

  NodeId num_nodes() const { return static_cast<NodeId>(group_of_.size()); }
  int num_groups() const { return num_groups_; }

  GroupId GroupOf(NodeId v) const {
    TCIM_DCHECK(v >= 0 && v < num_nodes());
    return group_of_[v];
  }

  // |V_i|.
  NodeId GroupSize(GroupId g) const {
    TCIM_DCHECK(g >= 0 && g < num_groups_);
    return group_sizes_[g];
  }

  const std::vector<NodeId>& group_sizes() const { return group_sizes_; }

  // Members of group g, in increasing node order.
  std::vector<NodeId> GroupMembers(GroupId g) const;

  // Fraction |V_i| / |V|.
  double GroupFraction(GroupId g) const;

  // "k=2 sizes=[350,150]".
  std::string DebugString() const;

 private:
  std::vector<GroupId> group_of_;
  std::vector<NodeId> group_sizes_;
  int num_groups_ = 0;
};

// Statistics of how edges fall within/across groups — used to validate the
// generated surrogates against the paper's reported block edge counts.
struct GroupEdgeStats {
  // within[g]: directed edges with both endpoints in group g.
  std::vector<int64_t> within;
  // across[g][h]: directed edges g -> h for g != h (k x k, diagonal zero).
  std::vector<std::vector<int64_t>> across;
  int64_t total_within = 0;
  int64_t total_across = 0;
};

GroupEdgeStats ComputeGroupEdgeStats(const Graph& graph,
                                     const GroupAssignment& groups);

}  // namespace tcim

#endif  // TCIM_GRAPH_GROUPS_H_
