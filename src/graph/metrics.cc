#include "graph/metrics.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace tcim {

namespace {

// Sorted distinct undirected neighbor lists.
std::vector<std::vector<NodeId>> UndirectedNeighbors(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<std::vector<NodeId>> adjacency(n);
  for (NodeId v = 0; v < n; ++v) {
    for (const AdjacentEdge& e : graph.OutEdges(v)) adjacency[v].push_back(e.node);
    for (const AdjacentEdge& e : graph.InEdges(v)) adjacency[v].push_back(e.node);
    std::sort(adjacency[v].begin(), adjacency[v].end());
    adjacency[v].erase(std::unique(adjacency[v].begin(), adjacency[v].end()),
                       adjacency[v].end());
  }
  return adjacency;
}

// Number of common elements of two sorted vectors.
int64_t SortedIntersectionSize(const std::vector<NodeId>& a,
                               const std::vector<NodeId>& b) {
  int64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

double GlobalClusteringCoefficient(const Graph& graph) {
  const auto adjacency = UndirectedNeighbors(graph);
  int64_t closed_triples = 0;  // ordered pairs of neighbors that are linked
  int64_t triples = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const int64_t degree = static_cast<int64_t>(adjacency[v].size());
    triples += degree * (degree - 1) / 2;
    // Count edges among v's neighborhood.
    for (const NodeId w : adjacency[v]) {
      if (w <= v) continue;  // each triangle corner pair once
      closed_triples += SortedIntersectionSize(adjacency[v], adjacency[w]);
    }
  }
  // Each triangle contributes 3 corner pairs counted once each above.
  return triples == 0 ? 0.0 : static_cast<double>(closed_triples) / triples;
}

double AverageLocalClustering(const Graph& graph) {
  const auto adjacency = UndirectedNeighbors(graph);
  const NodeId n = graph.num_nodes();
  if (n == 0) return 0.0;
  double total = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    const int64_t degree = static_cast<int64_t>(adjacency[v].size());
    if (degree < 2) continue;
    int64_t links = 0;
    for (const NodeId w : adjacency[v]) {
      links += SortedIntersectionSize(adjacency[v], adjacency[w]);
    }
    // Each neighbor-pair edge counted twice (once from each endpoint).
    total += static_cast<double>(links) / (degree * (degree - 1));
  }
  return total / n;
}

double DegreeAssortativity(const Graph& graph) {
  const auto adjacency = UndirectedNeighbors(graph);
  // Pearson correlation over edge endpoint degrees, counting each
  // undirected edge in both orientations (standard symmetric estimator).
  double sum_x = 0.0, sum_xx = 0.0, sum_xy = 0.0;
  int64_t count = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const double dv = static_cast<double>(adjacency[v].size());
    for (const NodeId w : adjacency[v]) {
      const double dw = static_cast<double>(adjacency[w].size());
      sum_x += dv;
      sum_xx += dv * dv;
      sum_xy += dv * dw;
      ++count;
    }
  }
  if (count == 0) return 0.0;
  const double mean = sum_x / count;
  const double variance = sum_xx / count - mean * mean;
  if (variance <= 1e-15) return 0.0;  // regular graph: undefined, report 0
  const double covariance = sum_xy / count - mean * mean;
  return covariance / variance;
}

double Modularity(const Graph& graph, const GroupAssignment& partition) {
  TCIM_CHECK(graph.num_nodes() == partition.num_nodes());
  const auto adjacency = UndirectedNeighbors(graph);
  const int k = partition.num_groups();
  std::vector<double> intra_edges(k, 0.0);
  std::vector<double> total_degree(k, 0.0);
  double m2 = 0.0;  // 2m = sum of degrees
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const GroupId gv = partition.GroupOf(v);
    total_degree[gv] += static_cast<double>(adjacency[v].size());
    m2 += static_cast<double>(adjacency[v].size());
    for (const NodeId w : adjacency[v]) {
      if (partition.GroupOf(w) == gv) intra_edges[gv] += 1.0;
    }
  }
  if (m2 == 0.0) return 0.0;
  double q = 0.0;
  for (GroupId g = 0; g < k; ++g) {
    q += intra_edges[g] / m2 -
         (total_degree[g] / m2) * (total_degree[g] / m2);
  }
  return q;
}

double HomophilyIndex(const Graph& graph, const GroupAssignment& groups) {
  TCIM_CHECK(graph.num_nodes() == groups.num_nodes());
  const auto adjacency = UndirectedNeighbors(graph);
  int64_t same = 0, total = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const NodeId w : adjacency[v]) {
      if (w <= v) continue;  // undirected edge once
      ++total;
      if (groups.GroupOf(v) == groups.GroupOf(w)) ++same;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(same) / total;
}

}  // namespace tcim
