// Structural graph algorithms used for analysis, tests, and baselines.

#ifndef TCIM_GRAPH_ALGORITHMS_H_
#define TCIM_GRAPH_ALGORITHMS_H_

#include <limits>
#include <vector>

#include "graph/graph.h"

namespace tcim {

// Marker for "unreachable" in distance vectors.
inline constexpr int kUnreachable = std::numeric_limits<int>::max();

// Hop distances from `source` following out-edges (edge probabilities are
// ignored; this is the deterministic structure). `max_depth` < 0 means
// unbounded. Unreached nodes get kUnreachable.
std::vector<int> BfsDistances(const Graph& graph, NodeId source,
                              int max_depth = -1);

// Multi-source variant: distance to the nearest of `sources`.
std::vector<int> BfsDistances(const Graph& graph,
                              const std::vector<NodeId>& sources,
                              int max_depth = -1);

// Weakly connected components (edge direction ignored). Returns component id
// per node, dense in [0, num_components).
std::vector<int> WeaklyConnectedComponents(const Graph& graph,
                                           int* num_components);

// k-core decomposition on the undirected view (degree = out-degree of the
// symmetrized graph). Returns core number per node.
std::vector<int> CoreNumbers(const Graph& graph);

// Degree distribution summary.
struct DegreeStats {
  double mean = 0.0;
  int min = 0;
  int max = 0;
  double variance = 0.0;
};
DegreeStats ComputeOutDegreeStats(const Graph& graph);

// Number of nodes reachable from `source` within `max_depth` hops
// (including the source). max_depth < 0 means unbounded.
int64_t ReachableCount(const Graph& graph, NodeId source, int max_depth = -1);

}  // namespace tcim

#endif  // TCIM_GRAPH_ALGORITHMS_H_
