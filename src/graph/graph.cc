#include "graph/graph.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"

namespace tcim {

std::string Graph::DebugString() const {
  return StrFormat("Graph(n=%d, directed_edges=%lld, avg_out_degree=%.3f)",
                   num_nodes_, static_cast<long long>(num_edges()),
                   AverageOutDegree());
}

GraphBuilder::GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {
  TCIM_CHECK(num_nodes >= 0) << "negative node count";
}

GraphBuilder& GraphBuilder::AddEdge(NodeId u, NodeId v, double probability) {
  TCIM_CHECK(u >= 0 && u < num_nodes_) << "source out of range: " << u;
  TCIM_CHECK(v >= 0 && v < num_nodes_) << "target out of range: " << v;
  TCIM_CHECK(u != v) << "self-loops are not supported (node " << u << ")";
  TCIM_CHECK(probability >= 0.0 && probability <= 1.0)
      << "edge probability must be in [0,1], got " << probability;
  sources_.push_back(u);
  targets_.push_back(v);
  probabilities_.push_back(static_cast<float>(probability));
  return *this;
}

GraphBuilder& GraphBuilder::AddUndirectedEdge(NodeId u, NodeId v,
                                              double probability) {
  AddEdge(u, v, probability);
  AddEdge(v, u, probability);
  return *this;
}

bool GraphBuilder::HasEdge(NodeId u, NodeId v) const {
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i] == u && targets_[i] == v) return true;
  }
  return false;
}

Graph GraphBuilder::Build() const {
  Graph graph;
  graph.num_nodes_ = num_nodes_;
  const EdgeId m = static_cast<EdgeId>(sources_.size());

  // Counting sort of edges by source gives the out-CSR; the canonical
  // EdgeId of an edge is its final position in out_edges_.
  graph.out_offsets_.assign(num_nodes_ + 1, 0);
  for (EdgeId i = 0; i < m; ++i) graph.out_offsets_[sources_[i] + 1]++;
  for (NodeId v = 0; v < num_nodes_; ++v) {
    graph.out_offsets_[v + 1] += graph.out_offsets_[v];
  }
  graph.out_edges_.resize(m);
  graph.edge_sources_.resize(m);
  {
    std::vector<EdgeId> cursor(graph.out_offsets_.begin(),
                               graph.out_offsets_.end() - 1);
    for (EdgeId i = 0; i < m; ++i) {
      const EdgeId slot = cursor[sources_[i]]++;
      graph.out_edges_[slot] =
          AdjacentEdge{targets_[i], probabilities_[i], slot};
      graph.edge_sources_[slot] = sources_[i];
    }
  }

  // Transpose with the canonical ids carried over.
  graph.in_offsets_.assign(num_nodes_ + 1, 0);
  for (EdgeId e = 0; e < m; ++e) {
    graph.in_offsets_[graph.out_edges_[e].node + 1]++;
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    graph.in_offsets_[v + 1] += graph.in_offsets_[v];
  }
  graph.in_edges_.resize(m);
  {
    std::vector<EdgeId> cursor(graph.in_offsets_.begin(),
                               graph.in_offsets_.end() - 1);
    for (EdgeId e = 0; e < m; ++e) {
      const NodeId target = graph.out_edges_[e].node;
      const EdgeId slot = cursor[target]++;
      graph.in_edges_[slot] = AdjacentEdge{graph.edge_sources_[e],
                                           graph.out_edges_[e].probability, e};
    }
  }
  return graph;
}

}  // namespace tcim
