#include "graph/groups.h"

#include <algorithm>

#include "common/string_util.h"

namespace tcim {

GroupAssignment::GroupAssignment(std::vector<GroupId> group_of)
    : group_of_(std::move(group_of)) {
  GroupId max_group = -1;
  for (const GroupId g : group_of_) {
    TCIM_CHECK(g >= 0) << "negative group id";
    max_group = std::max(max_group, g);
  }
  num_groups_ = max_group + 1;
  TCIM_CHECK(num_groups_ >= 1) << "a group assignment needs >= 1 group";
  group_sizes_.assign(num_groups_, 0);
  for (const GroupId g : group_of_) group_sizes_[g]++;
  for (GroupId g = 0; g < num_groups_; ++g) {
    TCIM_CHECK(group_sizes_[g] > 0)
        << "group ids must be dense; group " << g << " is empty";
  }
}

GroupAssignment GroupAssignment::SingleGroup(NodeId num_nodes) {
  return GroupAssignment(std::vector<GroupId>(num_nodes, 0));
}

std::vector<NodeId> GroupAssignment::GroupMembers(GroupId g) const {
  TCIM_CHECK(g >= 0 && g < num_groups_);
  std::vector<NodeId> members;
  members.reserve(group_sizes_[g]);
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (group_of_[v] == g) members.push_back(v);
  }
  return members;
}

double GroupAssignment::GroupFraction(GroupId g) const {
  TCIM_CHECK(g >= 0 && g < num_groups_);
  return num_nodes() == 0
             ? 0.0
             : static_cast<double>(group_sizes_[g]) / num_nodes();
}

std::string GroupAssignment::DebugString() const {
  std::string out = StrFormat("GroupAssignment(k=%d sizes=[", num_groups_);
  for (GroupId g = 0; g < num_groups_; ++g) {
    if (g > 0) out += ',';
    out += StrFormat("%d", group_sizes_[g]);
  }
  out += "])";
  return out;
}

GroupEdgeStats ComputeGroupEdgeStats(const Graph& graph,
                                     const GroupAssignment& groups) {
  TCIM_CHECK(graph.num_nodes() == groups.num_nodes())
      << "graph/groups node count mismatch";
  const int k = groups.num_groups();
  GroupEdgeStats stats;
  stats.within.assign(k, 0);
  stats.across.assign(k, std::vector<int64_t>(k, 0));
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const GroupId gv = groups.GroupOf(v);
    for (const AdjacentEdge& edge : graph.OutEdges(v)) {
      const GroupId gw = groups.GroupOf(edge.node);
      if (gv == gw) {
        stats.within[gv]++;
        stats.total_within++;
      } else {
        stats.across[gv][gw]++;
        stats.total_across++;
      }
    }
  }
  return stats;
}

}  // namespace tcim
