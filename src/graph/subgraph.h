// Subgraph extraction utilities.
//
// Real-data pipelines routinely restrict to an induced subgraph (the
// largest weakly connected component, a sampled node set, one community).
// Extraction renumbers nodes densely; NodeMapping records old <-> new ids
// so seed sets and group assignments can be carried across.

#ifndef TCIM_GRAPH_SUBGRAPH_H_
#define TCIM_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/graph.h"
#include "graph/groups.h"

namespace tcim {

struct SubgraphResult {
  Graph graph;
  // new_to_old[new_id] = old_id (dense, sorted ascending by old id).
  std::vector<NodeId> new_to_old;
  // old_to_new[old_id] = new id, or -1 if the node was dropped.
  std::vector<NodeId> old_to_new;
};

// The subgraph induced by `keep` (duplicates ignored): keeps every edge
// whose endpoints both survive, with its probability.
SubgraphResult InducedSubgraph(const Graph& graph,
                               const std::vector<NodeId>& keep);

// The subgraph induced by the largest weakly connected component.
SubgraphResult LargestComponent(const Graph& graph);

// Re-maps a group assignment onto the subgraph's nodes.
GroupAssignment RestrictGroups(const GroupAssignment& groups,
                               const SubgraphResult& subgraph);

// Re-maps node ids (e.g. a seed set) onto the subgraph, dropping nodes
// that were not kept.
std::vector<NodeId> RestrictNodes(const std::vector<NodeId>& nodes,
                                  const SubgraphResult& subgraph);

}  // namespace tcim

#endif  // TCIM_GRAPH_SUBGRAPH_H_
