// Graph and group-assignment file IO.
//
// Edge-list format (SNAP-compatible, '#' comments):
//   # directed edge list: source target [probability]
//   0 1 0.05
//   1 2
// A missing probability column uses `default_probability`.
//
// Group format: one "node group" pair per line, '#' comments allowed.

#ifndef TCIM_GRAPH_IO_H_
#define TCIM_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/groups.h"

namespace tcim {

struct EdgeListOptions {
  // Treat each line as an undirected edge (adds both directions).
  bool undirected = false;
  // Probability used when the line has no third column.
  double default_probability = 0.1;
};

// Parses an edge list from a string (node count inferred as max id + 1).
Result<Graph> ParseEdgeList(const std::string& text,
                            const EdgeListOptions& options = {});

// Loads an edge-list file.
Result<Graph> LoadEdgeList(const std::string& path,
                           const EdgeListOptions& options = {});

// Serializes all directed edges as "source target probability" lines.
std::string SerializeEdgeList(const Graph& graph);

// Writes SerializeEdgeList(graph) to `path`.
Status SaveEdgeList(const Graph& graph, const std::string& path);

// Parses "node group" lines; nodes absent from the file are an error when
// `num_nodes` nodes are expected.
Result<GroupAssignment> ParseGroupFile(const std::string& text,
                                       NodeId num_nodes);

Result<GroupAssignment> LoadGroupFile(const std::string& path,
                                      NodeId num_nodes);

std::string SerializeGroups(const GroupAssignment& groups);

Status SaveGroups(const GroupAssignment& groups, const std::string& path);

// Parses a seed file: one node id per line, '#' comments allowed. Ids must
// be in [0, num_nodes); duplicates are preserved in order.
Result<std::vector<NodeId>> ParseSeedFile(const std::string& text,
                                          NodeId num_nodes);

Result<std::vector<NodeId>> LoadSeedFile(const std::string& path,
                                         NodeId num_nodes);

// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

// Writes a string to a file (truncating).
Status WriteStringToFile(const std::string& data, const std::string& path);

}  // namespace tcim

#endif  // TCIM_GRAPH_IO_H_
