#include "graph/datasets.h"

#include <vector>

#include "common/check.h"

namespace tcim {
namespace datasets {

GroupedGraph SyntheticDefault(Rng& rng) {
  SbmParams params;  // defaults are the paper's §6.1 values
  return GenerateSbm(params, rng);
}

GroupedGraph IllustrativeGraph() {
  // 38 nodes: blue group V1 = {0..25} (26 nodes), red group V2 = {26..37}
  // (12 nodes). Structure (all edges undirected, pe = 0.7):
  //   * hub a(0) spans one half of the blue periphery (12 leaves) and hub
  //     b(1) the other half (10 leaves); the stars are DISJOINT, so the
  //     standard TCIM-Budget solution at B = 2 is exactly {a, b} — each
  //     hub's marginal coverage (1 + 0.7·|leaves|) beats any red node's;
  //   * a 3-hop corridor a - c(2) - c2(3) - d(26) is the only route from
  //     the blue core into the red group, so with deadline τ = 2 the seed
  //     set {a, b} influences NO red node (the Figure-1 τ=2 row);
  //   * red hubs d(26) and e(27) split the red periphery between them;
  //     picking d as a seed serves the red group within 2 hops, which is
  //     what the fair surrogate P4 does.
  const double kPe = 0.7;
  GraphBuilder builder(38);
  // Blue periphery of hub a: nodes 4..15.
  for (NodeId v = 4; v <= 15; ++v) builder.AddUndirectedEdge(0, v, kPe);
  // Blue periphery of hub b: nodes 16..25.
  for (NodeId v = 16; v <= 25; ++v) builder.AddUndirectedEdge(1, v, kPe);
  // Corridor into the red group.
  builder.AddUndirectedEdge(0, 2, kPe);   // a - c
  builder.AddUndirectedEdge(2, 3, kPe);   // c - c2
  builder.AddUndirectedEdge(3, 26, kPe);  // c2 - d
  // Red hub d: red periphery 28..32.
  for (NodeId v = 28; v <= 32; ++v) builder.AddUndirectedEdge(26, v, kPe);
  // Red hub e: red periphery 33..37.
  for (NodeId v = 33; v <= 37; ++v) builder.AddUndirectedEdge(27, v, kPe);
  // e hangs off d's periphery (not off d itself): the red group stays
  // sparse enough that no red node's τ=2 ball outweighs hub b's star.
  builder.AddUndirectedEdge(28, 27, kPe);  // d-leaf - e

  std::vector<GroupId> group_of(38, 0);
  for (NodeId v = 26; v < 38; ++v) group_of[v] = 1;
  return GroupedGraph{builder.Build(), GroupAssignment(std::move(group_of))};
}

GroupedGraph RiceFacebookSurrogate(Rng& rng) {
  // Group sizes: the paper reports groups 0 (ages 18-19, 97 nodes) and 1
  // (age 20, 344 nodes); the remaining 764 students are split into two
  // further age groups. Block edge counts reproduce the reported trio
  // (513, 7441, 3350) exactly and distribute the remaining
  // 42443 - 513 - 7441 - 3350 = 31139 undirected edges with the same
  // dense-within / sparser-across profile.
  const std::vector<NodeId> sizes = {97, 344, 400, 364};
  const std::vector<std::vector<int64_t>> block_edges = {
      {513, 3350, 1500, 800},
      {3350, 7441, 3000, 2000},
      {1500, 3000, 12000, 2839},
      {800, 2000, 2839, 9000},
  };
  // Paper §7.1: Rice experiments use activation probability pe = 0.01.
  GroupedGraph result =
      GenerateExactBlockGraph(sizes, block_edges, /*activation=*/0.01, rng);
  TCIM_CHECK(result.graph.num_edges() == 2 * 42443)
      << "Rice surrogate edge calibration is off";
  return result;
}

GroupedGraph InstagramSurrogate(Rng& rng, int scale_divisor) {
  TCIM_CHECK(scale_divisor >= 1);
  // Full-data statistics from the paper (§7.1): 553628 nodes, 45.5% male;
  // 179668 within-male, 201083 within-female, 136039 across edges.
  const int64_t total_nodes = 553628 / scale_divisor;
  const NodeId male = static_cast<NodeId>(total_nodes * 455 / 1000);
  const NodeId female = static_cast<NodeId>(total_nodes - male);
  const std::vector<NodeId> sizes = {male, female};
  const std::vector<std::vector<int64_t>> block_edges = {
      {179668 / scale_divisor, 136039 / scale_divisor},
      {136039 / scale_divisor, 201083 / scale_divisor},
  };
  // Paper §7.1: Instagram experiments use pe = 0.06; scaling nodes and
  // edges together preserves average degree so pe transfers unchanged.
  return GenerateExactBlockGraph(sizes, block_edges, /*activation=*/0.06, rng);
}

GroupedGraph FacebookSnapSurrogate(Rng& rng) {
  // 4039 nodes, 88234 undirected edges; the paper's spectral clustering
  // found 5 groups of sizes {546, 1404, 208, 788, 1093}. We plant those
  // communities with a strongly assortative edge split (ego-network-like),
  // then the bench re-derives groups spectrally from the structure alone.
  const std::vector<NodeId> sizes = {546, 1404, 208, 788, 1093};
  // Within-community counts roughly proportional to community mass,
  // 5734 across edges spread over the 10 community pairs.
  const std::vector<std::vector<int64_t>> block_edges = {
      {8000, 673, 500, 573, 573},
      {673, 40000, 500, 573, 573},
      {500, 500, 2500, 600, 600},
      {573, 573, 600, 12000, 569},
      {573, 573, 600, 569, 20000},
  };
  int64_t total = 0;
  for (size_t i = 0; i < block_edges.size(); ++i) {
    total += block_edges[i][i];
    for (size_t j = i + 1; j < block_edges.size(); ++j) {
      total += block_edges[i][j];
    }
  }
  TCIM_CHECK(total == 88234) << "Facebook-SNAP surrogate calibration is off: "
                             << total;
  // Paper Appendix C: edge weight 0.01, τ = 20.
  return GenerateExactBlockGraph(sizes, block_edges, /*activation=*/0.01, rng);
}

}  // namespace datasets
}  // namespace tcim
