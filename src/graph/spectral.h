// Spectral clustering of a graph into k topological groups.
//
// The paper's Appendix C derives the Facebook-SNAP groups with spectral
// clustering; we reproduce the pipeline from scratch:
//   1. embed nodes with the top `embedding_dim` eigenvectors of the
//      symmetrically normalized adjacency  D^{-1/2} (A + I) D^{-1/2}
//      (computed by deflated orthogonal power iteration — no external
//      linear-algebra dependency),
//   2. row-normalize the embedding,
//   3. cluster rows with k-means++ (several restarts, best inertia wins).
//
// The graph is treated as undirected (out-edges + in-edges).

#ifndef TCIM_GRAPH_SPECTRAL_H_
#define TCIM_GRAPH_SPECTRAL_H_

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "graph/groups.h"

namespace tcim {

struct SpectralClusteringOptions {
  int num_clusters = 5;
  // Embedding dimension; 0 means "use num_clusters".
  int embedding_dim = 0;
  int power_iterations = 200;
  int kmeans_restarts = 8;
  int kmeans_iterations = 100;
};

// Clusters nodes into `options.num_clusters` groups. Deterministic given rng.
// Empty clusters (possible when k exceeds the natural structure) are
// repaired by splitting the largest cluster, so the result is always a valid
// dense GroupAssignment with exactly `num_clusters` groups.
GroupAssignment SpectralClustering(const Graph& graph,
                                   const SpectralClusteringOptions& options,
                                   Rng& rng);

// k-means++ on dense row vectors. Exposed for tests and reuse.
// Returns cluster id per row; `points[i]` must all have the same dimension.
std::vector<int> KMeans(const std::vector<std::vector<double>>& points,
                        int num_clusters, int restarts, int iterations,
                        Rng& rng);

// The spectral embedding alone (rows of the eigenvector matrix after row
// normalization). Exposed for tests.
std::vector<std::vector<double>> SpectralEmbedding(
    const Graph& graph, int dim, int power_iterations, Rng& rng);

}  // namespace tcim

#endif  // TCIM_GRAPH_SPECTRAL_H_
