// Random graph generators.
//
// The paper's synthetic experiments (§6.1) use a two-group stochastic block
// model: n nodes, fraction g in group V1, within-group edge probability
// `p_hom` (homophily) and across-group probability `p_het` (heterophily),
// all edges undirected with a constant activation probability p_e.
//
// The dataset surrogates (graph/datasets.h) additionally need a generator
// that hits *exact* per-block undirected edge counts, so the surrogate
// matches the block statistics the paper reports for the real datasets.
//
// All generators are deterministic given the Rng seed.

#ifndef TCIM_GRAPH_GENERATORS_H_
#define TCIM_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "graph/groups.h"

namespace tcim {

// A generated graph together with its group structure.
struct GroupedGraph {
  Graph graph;
  GroupAssignment groups;
};

// Parameters of the paper's two-group stochastic block model (§6.1 defaults
// in braces): n {500}, majority fraction g {0.7}, p_hom {0.025},
// p_het {0.001}, activation probability pe {0.05}.
struct SbmParams {
  NodeId num_nodes = 500;
  double majority_fraction = 0.7;
  double p_hom = 0.025;
  double p_het = 0.001;
  double activation_probability = 0.05;
};

// Samples the two-group SBM: every unordered pair is connected with p_hom
// (same group) or p_het (different groups); each undirected edge becomes two
// directed edges carrying `activation_probability`. Group 0 is the majority.
GroupedGraph GenerateSbm(const SbmParams& params, Rng& rng);

// General k-group SBM with an arbitrary symmetric probability matrix
// `block_probability[i][j]` and explicit group sizes.
GroupedGraph GenerateBlockModel(const std::vector<NodeId>& group_sizes,
                                const std::vector<std::vector<double>>& block_probability,
                                double activation_probability, Rng& rng);

// Samples a graph with *exact* per-block undirected edge counts:
// `block_edges[i][j]` (symmetric; diagonal = within-group count) distinct
// undirected edges are drawn uniformly at random inside each block.
// Counts must fit in the block (checked). Used for dataset surrogates.
GroupedGraph GenerateExactBlockGraph(const std::vector<NodeId>& group_sizes,
                                     const std::vector<std::vector<int64_t>>& block_edges,
                                     double activation_probability, Rng& rng);

// Erdős–Rényi G(n, m): exactly m distinct undirected edges.
Graph GenerateErdosRenyi(NodeId num_nodes, int64_t num_undirected_edges,
                         double activation_probability, Rng& rng);

// Barabási–Albert preferential attachment: each new node attaches to
// `edges_per_node` distinct existing nodes with probability proportional to
// degree. Produces heavy-tailed degree distributions (used in ablations).
Graph GenerateBarabasiAlbert(NodeId num_nodes, int edges_per_node,
                             double activation_probability, Rng& rng);

// Assigns every edge the "weighted cascade" probability 1 / in_degree(target)
// (Kempe et al. 2003), returning a new graph with identical structure.
Graph WithWeightedCascadeProbabilities(const Graph& graph);

// Returns a copy of `graph` with every edge probability replaced by `pe`.
Graph WithUniformProbability(const Graph& graph, double pe);

}  // namespace tcim

#endif  // TCIM_GRAPH_GENERATORS_H_
