// Structural graph metrics, used to validate the dataset surrogates
// (EXPERIMENTS.md reports them) and for analysis in examples.
//
// All metrics treat the graph as undirected (out ∪ in neighborhoods).

#ifndef TCIM_GRAPH_METRICS_H_
#define TCIM_GRAPH_METRICS_H_

#include "graph/graph.h"
#include "graph/groups.h"

namespace tcim {

// Global clustering coefficient: 3 · #triangles / #connected-triples.
// Returns 0 for graphs without any path of length two.
double GlobalClusteringCoefficient(const Graph& graph);

// Average of per-node local clustering coefficients (nodes with degree < 2
// contribute 0), Watts–Strogatz style.
double AverageLocalClustering(const Graph& graph);

// Degree assortativity: Pearson correlation of endpoint degrees over
// undirected edges. In [-1, 1]; 0 for degree-uncorrelated graphs.
double DegreeAssortativity(const Graph& graph);

// Newman modularity of a node partition:
//   Q = Σ_c (e_c / m − (d_c / 2m)²)
// where e_c is the number of intra-community undirected edges, d_c the
// total degree of community c, and m the number of undirected edges.
// High for strongly assortative partitions.
double Modularity(const Graph& graph, const GroupAssignment& partition);

// Fraction of undirected edges whose endpoints share a group — the
// homophily index the paper's §4.2 disparity argument is built on.
double HomophilyIndex(const Graph& graph, const GroupAssignment& groups);

}  // namespace tcim

#endif  // TCIM_GRAPH_METRICS_H_
