// Dataset registry: the paper's synthetic default graph, the Figure-1
// illustrative example, and calibrated surrogates for the three real-world
// datasets (which are not redistributable / not available offline).
//
// Every surrogate matches the structural statistics the paper reports —
// node counts, group sizes, and per-block edge counts — via the
// exact-edge-count block generator. See DESIGN.md §4 for the substitution
// rationale and EXPERIMENTS.md for the calibration tables.

#ifndef TCIM_GRAPH_DATASETS_H_
#define TCIM_GRAPH_DATASETS_H_

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/groups.h"

namespace tcim {
namespace datasets {

// The paper's §6.1 default synthetic graph: SBM with n=500, g=0.7,
// p_hom=0.025, p_het=0.001, pe=0.05.
GroupedGraph SyntheticDefault(Rng& rng);

// The Figure-1 illustrative graph: 38 nodes, 26 "blue dots" (group 0,
// containing the two central hubs a and b) and 12 "red triangles" (group 1,
// hanging off the blue periphery through a 3-hop corridor), all edges
// undirected with pe = 0.7. Node name constants below identify the nodes
// referenced in the paper's table.
GroupedGraph IllustrativeGraph();

// Named nodes of the illustrative graph.
inline constexpr NodeId kIllustrativeA = 0;  // central blue hub
inline constexpr NodeId kIllustrativeB = 1;  // second blue hub
inline constexpr NodeId kIllustrativeC = 2;  // blue gateway toward red group
inline constexpr NodeId kIllustrativeD = 26; // red hub
inline constexpr NodeId kIllustrativeE = 27; // second red hub

// Rice-Facebook surrogate (Mislove et al. 2010): 1205 nodes, 42443
// undirected edges, 4 age groups. The paper's reported pair is matched
// exactly: group 0 = "ages 18-19" (97 nodes, 513 within-edges), group 1 =
// "age 20" (344 nodes, 7441 within-edges), 3350 edges across groups 0-1.
GroupedGraph RiceFacebookSurrogate(Rng& rng);

// Instagram-Activities surrogate (Stoica et al. 2018), uniformly scaled by
// 1/scale_divisor (default 10): the full data has 553628 nodes (45.5% male)
// with 179668 within-male, 201083 within-female and 136039 across edges.
// Scaling nodes and edges by the same factor preserves average degree, so
// the paper's pe = 0.06 transfers unchanged. Group 0 = male.
GroupedGraph InstagramSurrogate(Rng& rng, int scale_divisor = 10);

// Facebook-SNAP surrogate (McAuley-Leskovec ego networks): 4039 nodes and
// 88234 undirected edges in a planted 5-community structure with the
// paper's community sizes {546, 1404, 208, 788, 1093}. `groups` holds the
// *planted* communities; the Fig-10 bench re-derives topological groups by
// running our spectral clustering on the returned graph, exercising the
// same pipeline as the paper's Appendix C.
GroupedGraph FacebookSnapSurrogate(Rng& rng);

}  // namespace datasets
}  // namespace tcim

#endif  // TCIM_GRAPH_DATASETS_H_
