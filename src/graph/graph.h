// Immutable directed graph in CSR form with per-edge influence probabilities.
//
// This is the substrate every other module builds on:
//   * nodes are dense ids [0, num_nodes)
//   * each directed edge carries an activation probability p_e ∈ [0, 1]
//     (Independent Cascade) and has a stable EdgeId equal to its position in
//     the out-CSR arrays
//   * a transpose (in-edge) CSR is built alongside, with each in-edge
//     recording the *same* EdgeId as its out-edge twin — forward cascade
//     simulation and reverse-reachable sampling must flip the same coin for
//     the same edge (see sim/live_edge.h)
//
// Undirected social networks are represented as two directed edges with
// independent coins, exactly as in the paper ("An undirected link between two
// nodes can be represented by simply considering two directed edges").

#ifndef TCIM_GRAPH_GRAPH_H_
#define TCIM_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace tcim {

using NodeId = int32_t;
using EdgeId = int64_t;

// One outgoing (or incoming) edge as seen from a node's adjacency list.
struct AdjacentEdge {
  NodeId node = 0;     // the other endpoint
  float probability = 0.0f;
  EdgeId edge_id = 0;  // canonical id shared between out- and in-views
};

class GraphBuilder;

class Graph {
 public:
  // An empty graph; populate via GraphBuilder.
  Graph() = default;

  NodeId num_nodes() const { return num_nodes_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(out_edges_.size()); }

  int OutDegree(NodeId v) const {
    TCIM_DCHECK(v >= 0 && v < num_nodes_);
    return static_cast<int>(out_offsets_[v + 1] - out_offsets_[v]);
  }
  int InDegree(NodeId v) const {
    TCIM_DCHECK(v >= 0 && v < num_nodes_);
    return static_cast<int>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  // Out-edges of v: each entry's `node` is the edge target.
  std::span<const AdjacentEdge> OutEdges(NodeId v) const {
    TCIM_DCHECK(v >= 0 && v < num_nodes_);
    return {out_edges_.data() + out_offsets_[v],
            static_cast<size_t>(out_offsets_[v + 1] - out_offsets_[v])};
  }

  // In-edges of v: each entry's `node` is the edge *source*; `edge_id` is the
  // canonical id of the original directed edge (source -> v).
  std::span<const AdjacentEdge> InEdges(NodeId v) const {
    TCIM_DCHECK(v >= 0 && v < num_nodes_);
    return {in_edges_.data() + in_offsets_[v],
            static_cast<size_t>(in_offsets_[v + 1] - in_offsets_[v])};
  }

  // Endpoints/probability of a canonical edge id.
  NodeId EdgeSource(EdgeId e) const {
    TCIM_DCHECK(e >= 0 && e < num_edges());
    return edge_sources_[e];
  }
  NodeId EdgeTarget(EdgeId e) const {
    TCIM_DCHECK(e >= 0 && e < num_edges());
    return out_edges_[e].node;
  }
  double EdgeProbability(EdgeId e) const {
    TCIM_DCHECK(e >= 0 && e < num_edges());
    return out_edges_[e].probability;
  }

  double AverageOutDegree() const {
    return num_nodes_ == 0
               ? 0.0
               : static_cast<double>(num_edges()) / num_nodes_;
  }

  // "n=500 m=3606 (directed edges)" style summary for logs.
  std::string DebugString() const;

 private:
  friend class GraphBuilder;

  NodeId num_nodes_ = 0;
  // Out-CSR. Edge e lives at out_edges_[e]; out_offsets_ has n+1 entries.
  std::vector<EdgeId> out_offsets_{0};
  std::vector<AdjacentEdge> out_edges_;
  std::vector<NodeId> edge_sources_;  // parallel to out_edges_
  // In-CSR (transpose view).
  std::vector<EdgeId> in_offsets_{0};
  std::vector<AdjacentEdge> in_edges_;
};

// Accumulates edges, then finalizes into a CSR Graph. Parallel edges are
// allowed (they model independent influence attempts); self-loops are
// rejected because they never affect cascades and break degree statistics.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes);

  NodeId num_nodes() const { return num_nodes_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(sources_.size()); }

  // Adds the directed edge u -> v with activation probability p ∈ [0, 1].
  GraphBuilder& AddEdge(NodeId u, NodeId v, double probability);

  // Adds u -> v and v -> u, each with its own independent coin.
  GraphBuilder& AddUndirectedEdge(NodeId u, NodeId v, double probability);

  // True if some directed edge u -> v was added (linear scan; intended for
  // generators that need to avoid duplicate undirected edges use their own
  // hash sets — this is for tests and small graphs).
  bool HasEdge(NodeId u, NodeId v) const;

  // Finalizes the CSR arrays. The builder remains usable (Build copies).
  Graph Build() const;

 private:
  NodeId num_nodes_;
  std::vector<NodeId> sources_;
  std::vector<NodeId> targets_;
  std::vector<float> probabilities_;
};

}  // namespace tcim

#endif  // TCIM_GRAPH_GRAPH_H_
