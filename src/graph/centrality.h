// Node centrality measures. Used by the baseline seeders (core/baselines.h)
// and by the analyses of why standard TCIM favors central majority nodes
// (paper §4.2: "the solution ... tends to favor nodes which are more central
// and have high-connectivity").

#ifndef TCIM_GRAPH_CENTRALITY_H_
#define TCIM_GRAPH_CENTRALITY_H_

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace tcim {

// Out-degree per node (as doubles so all centralities share a type).
std::vector<double> DegreeCentrality(const Graph& graph);

// PageRank via power iteration with uniform teleportation.
// Converges when the L1 change is below `tolerance` or after `max_iters`.
std::vector<double> PageRank(const Graph& graph, double damping = 0.85,
                             int max_iters = 100, double tolerance = 1e-10);

// Harmonic closeness centrality estimated by BFS from `num_samples` random
// pivots: c(v) ≈ scaled mean of 1/dist(pivot, v) over pivots reaching v.
// Exact computation is O(n·m); sampling keeps laptop-scale graphs fast.
std::vector<double> SampledHarmonicCloseness(const Graph& graph,
                                             int num_samples, Rng& rng);

// Indices of the `k` largest scores, ties broken by smaller node id.
std::vector<NodeId> TopKByScore(const std::vector<double>& scores, int k);

}  // namespace tcim

#endif  // TCIM_GRAPH_CENTRALITY_H_
