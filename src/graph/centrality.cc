#include "graph/centrality.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "graph/algorithms.h"

namespace tcim {

std::vector<double> DegreeCentrality(const Graph& graph) {
  std::vector<double> scores(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    scores[v] = graph.OutDegree(v);
  }
  return scores;
}

std::vector<double> PageRank(const Graph& graph, double damping,
                             int max_iters, double tolerance) {
  const NodeId n = graph.num_nodes();
  if (n == 0) return {};
  TCIM_CHECK(damping > 0.0 && damping < 1.0) << "damping must be in (0,1)";
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n);
  for (int iter = 0; iter < max_iters; ++iter) {
    double dangling_mass = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      if (graph.OutDegree(v) == 0) dangling_mass += rank[v];
    }
    const double base = (1.0 - damping) / n + damping * dangling_mass / n;
    std::fill(next.begin(), next.end(), base);
    for (NodeId v = 0; v < n; ++v) {
      const int degree = graph.OutDegree(v);
      if (degree == 0) continue;
      const double share = damping * rank[v] / degree;
      for (const AdjacentEdge& edge : graph.OutEdges(v)) {
        next[edge.node] += share;
      }
    }
    double delta = 0.0;
    for (NodeId v = 0; v < n; ++v) delta += std::abs(next[v] - rank[v]);
    rank.swap(next);
    if (delta < tolerance) break;
  }
  return rank;
}

std::vector<double> SampledHarmonicCloseness(const Graph& graph,
                                             int num_samples, Rng& rng) {
  const NodeId n = graph.num_nodes();
  std::vector<double> scores(n, 0.0);
  if (n == 0 || num_samples <= 0) return scores;
  const int samples = num_samples;  // pivots are drawn with replacement
  for (int s = 0; s < samples; ++s) {
    const NodeId pivot = static_cast<NodeId>(rng.NextIndex(n));
    // Reverse BFS from the pivot: dist over in-edges gives, for every node
    // v, the forward hop distance v -> pivot, so a single traversal credits
    // every node's ability to reach the sampled pivot.
    std::vector<int> dist(n, kUnreachable);
    dist[pivot] = 0;
    size_t head = 0;
    std::vector<NodeId> queue{pivot};
    while (head < queue.size()) {
      const NodeId v = queue[head++];
      for (const AdjacentEdge& edge : graph.InEdges(v)) {
        if (dist[edge.node] == kUnreachable) {
          dist[edge.node] = dist[v] + 1;
          queue.push_back(edge.node);
        }
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (v != pivot && dist[v] != kUnreachable) {
        scores[v] += 1.0 / dist[v];
      }
    }
  }
  // Pivots are uniform over ALL n nodes (a pivot equal to v contributes 0),
  // so the unbiased scale is n / samples:
  //   E[score(v)] = (n / S) · S · (1/n) · Σ_{p≠v} 1/dist(v, p).
  const double scale = static_cast<double>(n) / samples;
  for (double& s : scores) s *= scale;
  return scores;
}

std::vector<NodeId> TopKByScore(const std::vector<double>& scores, int k) {
  TCIM_CHECK(k >= 0);
  const NodeId n = static_cast<NodeId>(scores.size());
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  const int take = std::min<int>(k, n);
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(take);
  return order;
}

}  // namespace tcim
