#include "graph/spectral.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace tcim {

namespace {

// Undirected adjacency as neighbor lists (out ∪ in, deduplicated).
std::vector<std::vector<NodeId>> UndirectedAdjacency(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<std::vector<NodeId>> adjacency(n);
  for (NodeId v = 0; v < n; ++v) {
    for (const AdjacentEdge& e : graph.OutEdges(v)) adjacency[v].push_back(e.node);
    for (const AdjacentEdge& e : graph.InEdges(v)) adjacency[v].push_back(e.node);
    std::sort(adjacency[v].begin(), adjacency[v].end());
    adjacency[v].erase(std::unique(adjacency[v].begin(), adjacency[v].end()),
                       adjacency[v].end());
  }
  return adjacency;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

void Normalize(std::vector<double>& v) {
  const double norm = std::sqrt(Dot(v, v));
  if (norm > 0.0) {
    for (double& x : v) x /= norm;
  }
}

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

std::vector<std::vector<double>> SpectralEmbedding(const Graph& graph,
                                                   int dim,
                                                   int power_iterations,
                                                   Rng& rng) {
  const NodeId n = graph.num_nodes();
  TCIM_CHECK(dim >= 1 && dim <= n) << "embedding dim out of range";
  const auto adjacency = UndirectedAdjacency(graph);

  // Normalizer for M = D^{-1/2} (A + I) D^{-1/2} with D from A + I
  // (the +I self-loop regularizes isolated nodes and damps oscillation).
  std::vector<double> inv_sqrt_degree(n);
  for (NodeId v = 0; v < n; ++v) {
    inv_sqrt_degree[v] = 1.0 / std::sqrt(adjacency[v].size() + 1.0);
  }

  auto multiply = [&](const std::vector<double>& x, std::vector<double>& y) {
    for (NodeId v = 0; v < n; ++v) {
      double sum = x[v] * inv_sqrt_degree[v];  // self-loop term
      for (const NodeId w : adjacency[v]) {
        sum += x[w] * inv_sqrt_degree[w];
      }
      y[v] = sum * inv_sqrt_degree[v];
    }
  };

  // Deflated power iteration: eigenvector j is kept orthogonal to 0..j-1.
  std::vector<std::vector<double>> eigenvectors;
  eigenvectors.reserve(dim);
  std::vector<double> next(n);
  for (int j = 0; j < dim; ++j) {
    std::vector<double> vec(n);
    for (double& x : vec) x = rng.Gaussian();
    Normalize(vec);
    for (int iter = 0; iter < power_iterations; ++iter) {
      multiply(vec, next);
      // Gram–Schmidt against previously found eigenvectors.
      for (const auto& prev : eigenvectors) {
        const double coefficient = Dot(next, prev);
        for (NodeId v = 0; v < n; ++v) next[v] -= coefficient * prev[v];
      }
      Normalize(next);
      vec.swap(next);
    }
    eigenvectors.push_back(std::move(vec));
  }

  // Rows of the eigenvector matrix, row-normalized (Ng–Jordan–Weiss).
  std::vector<std::vector<double>> embedding(n, std::vector<double>(dim));
  for (NodeId v = 0; v < n; ++v) {
    for (int j = 0; j < dim; ++j) embedding[v][j] = eigenvectors[j][v];
    Normalize(embedding[v]);
  }
  return embedding;
}

std::vector<int> KMeans(const std::vector<std::vector<double>>& points,
                        int num_clusters, int restarts, int iterations,
                        Rng& rng) {
  const size_t n = points.size();
  TCIM_CHECK(num_clusters >= 1);
  TCIM_CHECK(n >= static_cast<size_t>(num_clusters))
      << "fewer points than clusters";
  const size_t dim = points[0].size();

  std::vector<int> best_assignment(n, 0);
  double best_inertia = std::numeric_limits<double>::infinity();

  for (int restart = 0; restart < restarts; ++restart) {
    // k-means++ seeding.
    std::vector<std::vector<double>> centers;
    centers.reserve(num_clusters);
    centers.push_back(points[rng.NextIndex(n)]);
    std::vector<double> min_dist(n);
    for (int c = 1; c < num_clusters; ++c) {
      double total = 0.0;
      for (size_t i = 0; i < n; ++i) {
        double d = std::numeric_limits<double>::infinity();
        for (const auto& center : centers) {
          d = std::min(d, SquaredDistance(points[i], center));
        }
        min_dist[i] = d;
        total += d;
      }
      size_t chosen = 0;
      if (total > 0.0) {
        double threshold = rng.NextDouble() * total;
        for (size_t i = 0; i < n; ++i) {
          threshold -= min_dist[i];
          if (threshold <= 0.0) {
            chosen = i;
            break;
          }
        }
      } else {
        chosen = rng.NextIndex(n);
      }
      centers.push_back(points[chosen]);
    }

    // Lloyd iterations.
    std::vector<int> assignment(n, -1);
    for (int iter = 0; iter < iterations; ++iter) {
      bool changed = false;
      for (size_t i = 0; i < n; ++i) {
        int best = 0;
        double best_d = std::numeric_limits<double>::infinity();
        for (int c = 0; c < num_clusters; ++c) {
          const double d = SquaredDistance(points[i], centers[c]);
          if (d < best_d) {
            best_d = d;
            best = c;
          }
        }
        if (assignment[i] != best) {
          assignment[i] = best;
          changed = true;
        }
      }
      if (!changed) break;
      // Recompute centers; re-seed empty clusters from the farthest point.
      std::vector<std::vector<double>> sums(num_clusters,
                                            std::vector<double>(dim, 0.0));
      std::vector<int> counts(num_clusters, 0);
      for (size_t i = 0; i < n; ++i) {
        counts[assignment[i]]++;
        for (size_t j = 0; j < dim; ++j) sums[assignment[i]][j] += points[i][j];
      }
      for (int c = 0; c < num_clusters; ++c) {
        if (counts[c] == 0) {
          centers[c] = points[rng.NextIndex(n)];
          continue;
        }
        for (size_t j = 0; j < dim; ++j) centers[c][j] = sums[c][j] / counts[c];
      }
    }

    double inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      inertia += SquaredDistance(points[i], centers[assignment[i]]);
    }
    if (inertia < best_inertia) {
      best_inertia = inertia;
      best_assignment = assignment;
    }
  }
  return best_assignment;
}

GroupAssignment SpectralClustering(const Graph& graph,
                                   const SpectralClusteringOptions& options,
                                   Rng& rng) {
  TCIM_CHECK(options.num_clusters >= 1);
  TCIM_CHECK(graph.num_nodes() >= options.num_clusters)
      << "fewer nodes than clusters";
  const int dim =
      options.embedding_dim > 0 ? options.embedding_dim : options.num_clusters;
  const auto embedding =
      SpectralEmbedding(graph, dim, options.power_iterations, rng);
  std::vector<int> labels =
      KMeans(embedding, options.num_clusters, options.kmeans_restarts,
             options.kmeans_iterations, rng);

  // Repair empty labels so that the assignment is dense: steal members from
  // the largest cluster (rare; guards k-means degeneracies).
  while (true) {
    std::vector<int> counts(options.num_clusters, 0);
    for (const int label : labels) counts[label]++;
    int empty = -1;
    for (int c = 0; c < options.num_clusters; ++c) {
      if (counts[c] == 0) {
        empty = c;
        break;
      }
    }
    if (empty < 0) break;
    const int largest = static_cast<int>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    // Move half of the largest cluster's members (by node order) to `empty`.
    int to_move = counts[largest] / 2;
    TCIM_CHECK(to_move > 0) << "cannot repair empty cluster";
    for (size_t i = 0; i < labels.size() && to_move > 0; ++i) {
      if (labels[i] == largest) {
        labels[i] = empty;
        --to_move;
      }
    }
  }

  std::vector<GroupId> groups(labels.begin(), labels.end());
  return GroupAssignment(std::move(groups));
}

}  // namespace tcim
