#include "graph/algorithms.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace tcim {

std::vector<int> BfsDistances(const Graph& graph, NodeId source,
                              int max_depth) {
  return BfsDistances(graph, std::vector<NodeId>{source}, max_depth);
}

std::vector<int> BfsDistances(const Graph& graph,
                              const std::vector<NodeId>& sources,
                              int max_depth) {
  std::vector<int> dist(graph.num_nodes(), kUnreachable);
  std::queue<NodeId> frontier;
  for (const NodeId s : sources) {
    TCIM_CHECK(s >= 0 && s < graph.num_nodes()) << "source out of range";
    if (dist[s] != 0) {
      dist[s] = 0;
      frontier.push(s);
    }
  }
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    if (max_depth >= 0 && dist[v] >= max_depth) continue;
    for (const AdjacentEdge& edge : graph.OutEdges(v)) {
      if (dist[edge.node] == kUnreachable) {
        dist[edge.node] = dist[v] + 1;
        frontier.push(edge.node);
      }
    }
  }
  return dist;
}

std::vector<int> WeaklyConnectedComponents(const Graph& graph,
                                           int* num_components) {
  std::vector<int> component(graph.num_nodes(), -1);
  int next_component = 0;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < graph.num_nodes(); ++start) {
    if (component[start] != -1) continue;
    component[start] = next_component;
    stack.push_back(start);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const AdjacentEdge& edge : graph.OutEdges(v)) {
        if (component[edge.node] == -1) {
          component[edge.node] = next_component;
          stack.push_back(edge.node);
        }
      }
      for (const AdjacentEdge& edge : graph.InEdges(v)) {
        if (component[edge.node] == -1) {
          component[edge.node] = next_component;
          stack.push_back(edge.node);
        }
      }
    }
    ++next_component;
  }
  if (num_components != nullptr) *num_components = next_component;
  return component;
}

std::vector<int> CoreNumbers(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  // Undirected degree = number of distinct neighbors in either direction.
  // For graphs built from undirected edges, out and in views coincide; we
  // use out+in and rely on the peeling being robust to double counting of
  // reciprocal edges by treating each directed edge as half an undirected
  // one is incorrect — instead collect distinct neighbors.
  std::vector<std::vector<NodeId>> adjacency(n);
  for (NodeId v = 0; v < n; ++v) {
    for (const AdjacentEdge& e : graph.OutEdges(v)) {
      adjacency[v].push_back(e.node);
    }
    for (const AdjacentEdge& e : graph.InEdges(v)) {
      adjacency[v].push_back(e.node);
    }
    std::sort(adjacency[v].begin(), adjacency[v].end());
    adjacency[v].erase(
        std::unique(adjacency[v].begin(), adjacency[v].end()),
        adjacency[v].end());
  }

  // Matula–Beck bucket peeling in O(n + m).
  std::vector<int> degree(n);
  int max_degree = 0;
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = static_cast<int>(adjacency[v].size());
    max_degree = std::max(max_degree, degree[v]);
  }
  std::vector<int> bucket_start(max_degree + 2, 0);
  for (NodeId v = 0; v < n; ++v) bucket_start[degree[v] + 1]++;
  for (int d = 1; d <= max_degree + 1; ++d) bucket_start[d] += bucket_start[d - 1];
  std::vector<NodeId> order(n);
  std::vector<int> position(n);
  {
    std::vector<int> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]]++;
      order[position[v]] = v;
    }
  }
  std::vector<int> core(degree);
  for (int idx = 0; idx < n; ++idx) {
    const NodeId v = order[idx];
    for (const NodeId w : adjacency[v]) {
      if (core[w] > core[v]) {
        // Move w one bucket down: swap with the first element of its bucket.
        const int dw = core[w];
        const int first_pos = bucket_start[dw];
        const NodeId first_node = order[first_pos];
        if (first_node != w) {
          std::swap(order[position[w]], order[first_pos]);
          std::swap(position[w], position[first_node]);
        }
        bucket_start[dw]++;
        core[w]--;
      }
    }
  }
  return core;
}

DegreeStats ComputeOutDegreeStats(const Graph& graph) {
  DegreeStats stats;
  const NodeId n = graph.num_nodes();
  if (n == 0) return stats;
  stats.min = graph.OutDegree(0);
  stats.max = graph.OutDegree(0);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    const int d = graph.OutDegree(v);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    sum += d;
    sum_sq += static_cast<double>(d) * d;
  }
  stats.mean = sum / n;
  stats.variance = sum_sq / n - stats.mean * stats.mean;
  return stats;
}

int64_t ReachableCount(const Graph& graph, NodeId source, int max_depth) {
  const std::vector<int> dist = BfsDistances(graph, source, max_depth);
  int64_t count = 0;
  for (const int d : dist) {
    if (d != kUnreachable) ++count;
  }
  return count;
}

}  // namespace tcim
