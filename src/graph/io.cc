#include "graph/io.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "common/string_util.h"

namespace tcim {

namespace {

struct ParsedEdge {
  NodeId source;
  NodeId target;
  double probability;
};

// Splits `text` into lines, skipping blank lines and '#' comments, and calls
// handler(line_number, fields). Returns the first error, if any.
Status ForEachDataLine(
    const std::string& text,
    const std::function<Status(int, const std::vector<std::string>&)>& handler) {
  int line_number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    ++line_number;
    const std::string_view line =
        StripWhitespace(std::string_view(text).substr(start, end - start));
    start = end + 1;
    if (line.empty() || line[0] == '#') {
      if (end == text.size()) break;
      continue;
    }
    TCIM_RETURN_IF_ERROR(handler(line_number, SplitWhitespace(line)));
    if (end == text.size()) break;
  }
  return Status::Ok();
}

}  // namespace

Result<Graph> ParseEdgeList(const std::string& text,
                            const EdgeListOptions& options) {
  std::vector<ParsedEdge> edges;
  NodeId max_node = -1;
  Status status = ForEachDataLine(
      text, [&](int line, const std::vector<std::string>& fields) -> Status {
        if (fields.size() != 2 && fields.size() != 3) {
          return InvalidArgumentError(
              StrFormat("line %d: expected 2 or 3 fields, got %zu", line,
                        fields.size()));
        }
        int64_t source, target;
        if (!ParseInt64(fields[0], &source) || !ParseInt64(fields[1], &target) ||
            source < 0 || target < 0) {
          return InvalidArgumentError(
              StrFormat("line %d: malformed node ids", line));
        }
        double probability = options.default_probability;
        if (fields.size() == 3) {
          // The negated in-range form also rejects NaN (strtod accepts the
          // token "nan", and NaN passes naive < / > checks).
          if (!ParseDouble(fields[2], &probability) ||
              !(probability >= 0.0 && probability <= 1.0)) {
            return InvalidArgumentError(
                StrFormat("line %d: malformed probability", line));
          }
        }
        if (source == target) {
          return InvalidArgumentError(
              StrFormat("line %d: self-loop on node %lld", line,
                        static_cast<long long>(source)));
        }
        edges.push_back(ParsedEdge{static_cast<NodeId>(source),
                                   static_cast<NodeId>(target), probability});
        max_node = std::max(max_node,
                            static_cast<NodeId>(std::max(source, target)));
        return Status::Ok();
      });
  if (!status.ok()) return status;
  GraphBuilder builder(max_node + 1);
  for (const ParsedEdge& edge : edges) {
    if (options.undirected) {
      builder.AddUndirectedEdge(edge.source, edge.target, edge.probability);
    } else {
      builder.AddEdge(edge.source, edge.target, edge.probability);
    }
  }
  return builder.Build();
}

Result<Graph> LoadEdgeList(const std::string& path,
                           const EdgeListOptions& options) {
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return ParseEdgeList(*text, options);
}

std::string SerializeEdgeList(const Graph& graph) {
  std::string out =
      StrFormat("# directed edge list: %d nodes, %lld edges\n",
                graph.num_nodes(), static_cast<long long>(graph.num_edges()));
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const AdjacentEdge& edge : graph.OutEdges(v)) {
      out += StrFormat("%d %d %s\n", v, edge.node,
                       FormatDouble(edge.probability).c_str());
    }
  }
  return out;
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  return WriteStringToFile(SerializeEdgeList(graph), path);
}

Result<GroupAssignment> ParseGroupFile(const std::string& text,
                                       NodeId num_nodes) {
  std::vector<GroupId> group_of(num_nodes, -1);
  Status status = ForEachDataLine(
      text, [&](int line, const std::vector<std::string>& fields) -> Status {
        if (fields.size() != 2) {
          return InvalidArgumentError(
              StrFormat("line %d: expected 'node group'", line));
        }
        int64_t node, group;
        if (!ParseInt64(fields[0], &node) || !ParseInt64(fields[1], &group) ||
            node < 0 || group < 0) {
          return InvalidArgumentError(
              StrFormat("line %d: malformed ids", line));
        }
        if (node >= num_nodes) {
          return InvalidArgumentError(
              StrFormat("line %d: node %lld out of range (n=%d)", line,
                        static_cast<long long>(node), num_nodes));
        }
        group_of[node] = static_cast<GroupId>(group);
        return Status::Ok();
      });
  if (!status.ok()) return status;
  for (NodeId v = 0; v < num_nodes; ++v) {
    if (group_of[v] < 0) {
      return InvalidArgumentError(
          StrFormat("node %d has no group assignment", v));
    }
  }
  return GroupAssignment(std::move(group_of));
}

Result<GroupAssignment> LoadGroupFile(const std::string& path,
                                      NodeId num_nodes) {
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return ParseGroupFile(*text, num_nodes);
}

std::string SerializeGroups(const GroupAssignment& groups) {
  std::string out = StrFormat("# node group (k=%d)\n", groups.num_groups());
  for (NodeId v = 0; v < groups.num_nodes(); ++v) {
    out += StrFormat("%d %d\n", v, groups.GroupOf(v));
  }
  return out;
}

Status SaveGroups(const GroupAssignment& groups, const std::string& path) {
  return WriteStringToFile(SerializeGroups(groups), path);
}

Result<std::vector<NodeId>> ParseSeedFile(const std::string& text,
                                          NodeId num_nodes) {
  std::vector<NodeId> seeds;
  Status status = ForEachDataLine(
      text, [&](int line, const std::vector<std::string>& fields) -> Status {
        if (fields.size() != 1) {
          return InvalidArgumentError(
              StrFormat("line %d: expected a single node id", line));
        }
        int64_t node;
        if (!ParseInt64(fields[0], &node) || node < 0) {
          return InvalidArgumentError(
              StrFormat("line %d: malformed node id", line));
        }
        if (node >= num_nodes) {
          return InvalidArgumentError(
              StrFormat("line %d: node %lld out of range (n=%d)", line,
                        static_cast<long long>(node), num_nodes));
        }
        seeds.push_back(static_cast<NodeId>(node));
        return Status::Ok();
      });
  if (!status.ok()) return status;
  return seeds;
}

Result<std::vector<NodeId>> LoadSeedFile(const std::string& path,
                                         NodeId num_nodes) {
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return ParseSeedFile(*text, num_nodes);
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return IoError("could not open: " + path);
  std::string data;
  char buffer[1 << 16];
  size_t read;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    data.append(buffer, read);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return IoError("read error: " + path);
  return data;
}

Status WriteStringToFile(const std::string& data, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return IoError("could not open for writing: " + path);
  const size_t written = std::fwrite(data.data(), 1, data.size(), file);
  std::fclose(file);
  if (written != data.size()) return IoError("short write: " + path);
  return Status::Ok();
}

}  // namespace tcim
