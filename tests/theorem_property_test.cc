// Property tests for the paper's two theorems, verified EXACTLY on the
// Monte-Carlo estimate (which is a genuine coverage function on fixed
// worlds, so the theorems' preconditions hold with no sampling slack).
//
// Theorem 1: greedy on P4 satisfies f_τ(Ŝ;V) >= (1 - 1/e) · H(f_τ(S*;V)),
//            where S* is an optimal solution of P1.
// Theorem 2: greedy on P6 returns |Ŝ| <= ln(1 + |V|) · Σ_i |S*_i|, where
//            S*_i optimally covers group i alone to quota Q.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/budget.h"
#include "core/cover.h"
#include "graph/generators.h"

namespace tcim {
namespace {

// Small instances so the optimum can be brute-forced.
GroupedGraph SmallInstance(uint64_t seed) {
  Rng rng(seed);
  SbmParams params;
  params.num_nodes = 16;
  params.majority_fraction = 0.625;  // 10 / 6 split
  params.p_hom = 0.3;
  params.p_het = 0.08;
  params.activation_probability = 0.4;
  return GenerateSbm(params, rng);
}

class Theorem1Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem1Test, GreedyFairBudgetBeatsBound) {
  const GroupedGraph gg = SmallInstance(300 + GetParam());
  OracleOptions options;
  options.num_worlds = 25;
  options.deadline = (GetParam() % 2 == 0) ? 3 : kNoDeadline;
  options.seed = 77 + GetParam();
  const int budget = 2;

  // Brute-force P1 optimum f_τ(S*; V) over all seed pairs on these worlds.
  InfluenceOracle oracle(&gg.graph, &gg.groups, options);
  double p1_opt = 0.0;
  for (NodeId a = 0; a < gg.graph.num_nodes(); ++a) {
    for (NodeId b = a; b < gg.graph.num_nodes(); ++b) {
      p1_opt = std::max(
          p1_opt, GroupVectorTotal(oracle.EstimateGroupCoverage({a, b})));
    }
  }

  for (const ConcaveFunction h :
       {ConcaveFunction::Log(), ConcaveFunction::Sqrt(),
        ConcaveFunction::Power(0.25)}) {
    BudgetOptions budget_options;
    budget_options.budget = budget;
    const GreedyResult fair = SolveFairTcimBudget(oracle, h, budget_options);
    const double fair_total = GroupVectorTotal(fair.coverage);
    const double bound = (1.0 - 1.0 / std::exp(1.0)) * h(p1_opt);
    EXPECT_GE(fair_total, bound - 1e-9)
        << "H=" << h.name() << " violated Theorem 1: total=" << fair_total
        << " bound=" << bound;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Theorem1Test,
                         ::testing::Range(0, 8));

class Theorem2Test : public ::testing::TestWithParam<int> {};

// Smallest seed set reaching quota Q on target group `target`, by
// exhaustive search over subsets of increasing size (sizes 0..3 suffice on
// these instances; asserted).
int BruteForceCoverSize(InfluenceOracle& oracle, const GroupAssignment& groups,
                        GroupId target, double quota) {
  const NodeId n = oracle.graph().num_nodes();
  const double needed = quota * groups.GroupSize(target);
  auto reaches = [&](const std::vector<NodeId>& set) {
    return oracle.EstimateGroupCoverage(set)[target] + 1e-9 >= needed;
  };
  if (reaches({})) return 0;
  for (NodeId a = 0; a < n; ++a) {
    if (reaches({a})) return 1;
  }
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (reaches({a, b})) return 2;
    }
  }
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      for (NodeId c = b + 1; c < n; ++c) {
        if (reaches({a, b, c})) return 3;
      }
    }
  }
  ADD_FAILURE() << "brute force needed more than 3 seeds";
  return 4;
}

TEST_P(Theorem2Test, GreedyFairCoverWithinLogFactor) {
  const GroupedGraph gg = SmallInstance(500 + GetParam());
  OracleOptions options;
  options.num_worlds = 25;
  options.deadline = 4;
  options.seed = 99 + GetParam();
  InfluenceOracle oracle(&gg.graph, &gg.groups, options);

  const double quota = 0.3;
  CoverOptions cover;
  cover.quota = quota;
  cover.max_seeds = 16;
  const GreedyResult fair = SolveFairTcimCover(oracle, cover);
  ASSERT_TRUE(fair.target_reached)
      << "quota unreachable on instance " << GetParam();

  int sum_optima = 0;
  for (GroupId g = 0; g < gg.groups.num_groups(); ++g) {
    sum_optima += BruteForceCoverSize(oracle, gg.groups, g, quota);
  }
  const double bound =
      std::log(1.0 + gg.graph.num_nodes()) * std::max(sum_optima, 1);
  EXPECT_LE(static_cast<double>(fair.seeds.size()), bound + 1e-9)
      << "greedy used " << fair.seeds.size() << " seeds; Σ|S*_i|="
      << sum_optima;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Theorem2Test,
                         ::testing::Range(0, 6));

// The disparity corollary of P6: ANY feasible solution has disparity
// bounded by 1 - Q. Checked across quotas.
class DisparityBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(DisparityBoundTest, FeasibleFairCoverDisparityAtMostOneMinusQ) {
  const double quota = 0.1 + 0.1 * GetParam();
  const GroupedGraph gg = SmallInstance(700 + GetParam());
  OracleOptions options;
  options.num_worlds = 30;
  options.deadline = 5;
  InfluenceOracle oracle(&gg.graph, &gg.groups, options);
  CoverOptions cover;
  cover.quota = quota;
  cover.max_seeds = 16;
  const GreedyResult fair = SolveFairTcimCover(oracle, cover);
  if (!fair.target_reached) GTEST_SKIP() << "quota unreachable";
  std::vector<double> normalized(gg.groups.num_groups());
  for (GroupId g = 0; g < gg.groups.num_groups(); ++g) {
    normalized[g] = fair.coverage[g] / gg.groups.GroupSize(g);
    EXPECT_GE(normalized[g], quota - 1e-9);
    EXPECT_LE(normalized[g], 1.0 + 1e-9);
  }
  const double disparity =
      *std::max_element(normalized.begin(), normalized.end()) -
      *std::min_element(normalized.begin(), normalized.end());
  EXPECT_LE(disparity, 1.0 - quota + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Quotas, DisparityBoundTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace tcim
