// Cross-configuration consistency sweep: CELF must return exactly the
// plain-greedy solution for EVERY combination of objective, diffusion
// model, and deadline — the broadest correctness net over the solver stack
// (CELF's validity rests on submodularity of the estimated objective; a
// disagreement here would expose either a non-submodular objective or a
// staleness bug in the heap).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/greedy.h"
#include "core/objectives.h"
#include "graph/generators.h"
#include "sim/influence_oracle.h"

namespace tcim {
namespace {

struct Config {
  int objective;  // 0 total, 1 log-sum, 2 sqrt-sum, 3 truncated quota
  DiffusionModel model;
  int deadline;
};

class GreedyConsistencyTest : public ::testing::TestWithParam<int> {
 protected:
  Config GetConfig() const {
    const int raw = GetParam();
    Config config;
    config.objective = raw % 4;
    config.model = (raw / 4) % 2 == 0 ? DiffusionModel::kIndependentCascade
                                      : DiffusionModel::kLinearThreshold;
    const int deadline_index = (raw / 8) % 3;
    config.deadline =
        deadline_index == 0 ? 2 : (deadline_index == 1 ? 6 : kNoDeadline);
    return config;
  }

  std::unique_ptr<Objective> MakeObjective(const Config& config,
                                           const GroupAssignment& groups) {
    switch (config.objective) {
      case 0:
        return std::make_unique<TotalInfluenceObjective>();
      case 1:
        return std::make_unique<ConcaveSumObjective>(ConcaveFunction::Log(),
                                                     &groups);
      case 2:
        return std::make_unique<ConcaveSumObjective>(ConcaveFunction::Sqrt(),
                                                     &groups);
      default:
        return std::make_unique<TruncatedQuotaObjective>(0.3, &groups);
    }
  }
};

TEST_P(GreedyConsistencyTest, CelfEqualsPlainGreedy) {
  const Config config = GetConfig();
  Rng rng(9000 + GetParam());
  SbmParams params;
  params.num_nodes = 90;
  params.p_hom = 0.08;
  params.p_het = 0.02;
  params.activation_probability = 0.25;
  const GroupedGraph gg = GenerateSbm(params, rng);

  OracleOptions oracle_options;
  oracle_options.num_worlds = 25;
  oracle_options.deadline = config.deadline;
  oracle_options.model = config.model;
  oracle_options.seed = 31 + GetParam();

  const auto objective = MakeObjective(config, gg.groups);
  GreedyOptions lazy;
  lazy.max_seeds = 6;
  lazy.lazy = true;
  GreedyOptions plain = lazy;
  plain.lazy = false;

  InfluenceOracle oracle_lazy(&gg.graph, &gg.groups, oracle_options);
  const GreedyResult lazy_result = RunGreedy(oracle_lazy, *objective, lazy);
  InfluenceOracle oracle_plain(&gg.graph, &gg.groups, oracle_options);
  const GreedyResult plain_result =
      RunGreedy(oracle_plain, *objective, plain);

  EXPECT_EQ(lazy_result.seeds, plain_result.seeds)
      << "objective=" << config.objective
      << " model=" << DiffusionModelName(config.model)
      << " deadline=" << config.deadline;
  EXPECT_NEAR(lazy_result.objective_value, plain_result.objective_value,
              1e-9);
  EXPECT_LE(lazy_result.oracle_calls, plain_result.oracle_calls);
}

// 4 objectives x 2 models x 3 deadlines.
INSTANTIATE_TEST_SUITE_P(AllConfigs, GreedyConsistencyTest,
                         ::testing::Range(0, 24));

}  // namespace
}  // namespace tcim
