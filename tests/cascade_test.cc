#include "sim/cascade.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tcim {
namespace {

// Deterministic path 0 -> 1 -> 2 -> 3 (all probabilities 1).
Graph SurePath() {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0).AddEdge(1, 2, 1.0).AddEdge(2, 3, 1.0);
  return builder.Build();
}

TEST(SimulateIcTest, SureEdgesActivateEverythingWithHopTimes) {
  const Graph graph = SurePath();
  Rng rng(1);
  const CascadeResult result = SimulateIc(graph, {0}, rng);
  EXPECT_EQ(result.num_activated, 4);
  EXPECT_EQ(result.activation_time[0], 0);
  EXPECT_EQ(result.activation_time[1], 1);
  EXPECT_EQ(result.activation_time[2], 2);
  EXPECT_EQ(result.activation_time[3], 3);
}

TEST(SimulateIcTest, ZeroProbabilityNeverSpreads) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 0.0);
  Rng rng(2);
  const CascadeResult result = SimulateIc(builder.Build(), {0}, rng);
  EXPECT_EQ(result.num_activated, 1);
  EXPECT_EQ(result.activation_time[1], -1);
}

TEST(SimulateIcTest, SeedsActivateAtTimeZero) {
  const Graph graph = SurePath();
  Rng rng(3);
  const CascadeResult result = SimulateIc(graph, {2, 0}, rng);
  EXPECT_EQ(result.activation_time[0], 0);
  EXPECT_EQ(result.activation_time[2], 0);
  EXPECT_EQ(result.activation_time[3], 1);  // from seed 2
}

TEST(SimulateIcTest, DuplicateSeedsCountedOnce) {
  const Graph graph = SurePath();
  Rng rng(4);
  const CascadeResult result = SimulateIc(graph, {0, 0}, rng);
  EXPECT_EQ(result.activation_time[0], 0);
  EXPECT_EQ(result.num_activated, 4);
}

TEST(SimulateIcTest, ActivationFrequencyMatchesEdgeProbability) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 0.3);
  const Graph graph = builder.Build();
  Rng rng(5);
  int activated = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (SimulateIc(graph, {0}, rng).activation_time[1] >= 0) ++activated;
  }
  EXPECT_NEAR(static_cast<double>(activated) / trials, 0.3, 0.01);
}

TEST(SimulateIcTest, EachEdgeTriesOnlyOnce) {
  // Two parallel edges 0->1 with p=0.5: activation prob = 1-(0.5)^2 = 0.75.
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 0.5);
  builder.AddEdge(0, 1, 0.5);
  const Graph graph = builder.Build();
  Rng rng(6);
  int activated = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (SimulateIc(graph, {0}, rng).activation_time[1] >= 0) ++activated;
  }
  EXPECT_NEAR(static_cast<double>(activated) / trials, 0.75, 0.01);
}

TEST(SimulateLtTest, SureWeightCascades) {
  // Weight 1.0 in-edge guarantees activation (threshold < 1 always).
  const Graph graph = SurePath();
  Rng rng(7);
  const CascadeResult result = SimulateLt(graph, {0}, rng);
  EXPECT_EQ(result.num_activated, 4);
  EXPECT_EQ(result.activation_time[3], 3);
}

TEST(SimulateLtTest, ActivationProbabilityEqualsWeight) {
  // Single in-edge with weight w: P[θ <= w] = w.
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 0.4);
  const Graph graph = builder.Build();
  Rng rng(8);
  int activated = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (SimulateLt(graph, {0}, rng).activation_time[1] >= 0) ++activated;
  }
  EXPECT_NEAR(static_cast<double>(activated) / trials, 0.4, 0.01);
}

TEST(SimulateLtTest, WeightsAccumulateAcrossNeighbors) {
  // Both 0 and 1 seed; node 2 has in-weights 0.5 + 0.5 = 1.0 -> always fires.
  GraphBuilder builder(3);
  builder.AddEdge(0, 2, 0.5);
  builder.AddEdge(1, 2, 0.5);
  const Graph graph = builder.Build();
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(SimulateLt(graph, {0, 1}, rng).activation_time[2], 0);
  }
}

TEST(SimulateInWorldTest, MatchesLiveEdgeStructure) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 0.5);
  builder.AddEdge(1, 2, 0.5);
  const Graph graph = builder.Build();
  WorldSampler sampler(&graph, DiffusionModel::kIndependentCascade, 99);
  for (uint32_t world = 0; world < 200; ++world) {
    const CascadeResult result = SimulateInWorld(graph, {0}, sampler, world);
    const bool edge01 = sampler.IsLive(world, graph.OutEdges(0)[0].edge_id);
    const bool edge12 = sampler.IsLive(world, graph.OutEdges(1)[0].edge_id);
    EXPECT_EQ(result.activation_time[1] >= 0, edge01);
    EXPECT_EQ(result.activation_time[2] >= 0, edge01 && edge12);
  }
}

TEST(SimulateInWorldTest, MaxTimeTruncatesPropagation) {
  const Graph graph = SurePath();
  WorldSampler sampler(&graph, DiffusionModel::kIndependentCascade, 1);
  const CascadeResult result =
      SimulateInWorld(graph, {0}, sampler, 0, /*max_time=*/2);
  EXPECT_EQ(result.activation_time[2], 2);
  EXPECT_EQ(result.activation_time[3], -1);
}

TEST(SimulateInWorldTest, IsDeterministicPerWorld) {
  const Graph graph = SurePath();
  WorldSampler sampler(&graph, DiffusionModel::kIndependentCascade, 10);
  const CascadeResult a = SimulateInWorld(graph, {0}, sampler, 5);
  const CascadeResult b = SimulateInWorld(graph, {0}, sampler, 5);
  EXPECT_EQ(a.activation_time, b.activation_time);
}

TEST(CascadeResultTest, CountActivatedByDeadline) {
  CascadeResult result;
  result.activation_time = {0, 1, 3, -1, 2};
  EXPECT_EQ(result.CountActivatedBy(0), 1);
  EXPECT_EQ(result.CountActivatedBy(2), 3);
  EXPECT_EQ(result.CountActivatedBy(kNoDeadline), 4);
}

TEST(SimulateIcDeathTest, SeedOutOfRangeAborts) {
  const Graph graph = SurePath();
  Rng rng(1);
  EXPECT_DEATH(SimulateIc(graph, {99}, rng), "seed out of range");
}

}  // namespace
}  // namespace tcim
