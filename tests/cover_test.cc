#include "core/cover.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/fairness.h"
#include "graph/datasets.h"

namespace tcim {
namespace {

class CoverSolverTest : public ::testing::Test {
 protected:
  CoverSolverTest() : gg_(MakeGraph()) {
    options_.num_worlds = 100;
    options_.deadline = 20;
  }
  static GroupedGraph MakeGraph() {
    Rng rng(88);
    return datasets::SyntheticDefault(rng);
  }

  GroupedGraph gg_;
  OracleOptions options_;
};

TEST_F(CoverSolverTest, TcimCoverReachesTotalQuota) {
  InfluenceOracle oracle(&gg_.graph, &gg_.groups, options_);
  CoverOptions cover;
  cover.quota = 0.2;
  const GreedyResult result = SolveTcimCover(oracle, cover);
  EXPECT_TRUE(result.target_reached);
  EXPECT_GE(GroupVectorTotal(result.coverage) / gg_.graph.num_nodes(),
            0.2 - 1e-9);
}

TEST_F(CoverSolverTest, FairCoverReachesEveryGroupQuota) {
  InfluenceOracle oracle(&gg_.graph, &gg_.groups, options_);
  CoverOptions cover;
  cover.quota = 0.2;
  const GreedyResult result = SolveFairTcimCover(oracle, cover);
  EXPECT_TRUE(result.target_reached);
  for (GroupId g = 0; g < gg_.groups.num_groups(); ++g) {
    EXPECT_GE(result.coverage[g] / gg_.groups.GroupSize(g), 0.2 - 1e-9)
        << "group " << g;
  }
}

TEST_F(CoverSolverTest, PlainCoverMayMissMinorityFairCoverDoesNot) {
  // The Fig-6b phenomenon: P2 satisfies the aggregate quota mostly from the
  // majority; P6 brings the minority up to quota too.
  CoverOptions cover;
  cover.quota = 0.2;
  InfluenceOracle oracle_p2(&gg_.graph, &gg_.groups, options_);
  const GreedyResult p2 = SolveTcimCover(oracle_p2, cover);
  InfluenceOracle oracle_p6(&gg_.graph, &gg_.groups, options_);
  const GreedyResult p6 = SolveFairTcimCover(oracle_p6, cover);

  const double p2_minority = p2.coverage[1] / gg_.groups.GroupSize(1);
  const double p6_minority = p6.coverage[1] / gg_.groups.GroupSize(1);
  EXPECT_LT(p2_minority, 0.2);  // plain cover underserves the minority
  EXPECT_GE(p6_minority, 0.2 - 1e-9);
}

TEST_F(CoverSolverTest, FairCoverNeedsAtLeastAsManySeeds) {
  CoverOptions cover;
  cover.quota = 0.2;
  InfluenceOracle oracle_p2(&gg_.graph, &gg_.groups, options_);
  const GreedyResult p2 = SolveTcimCover(oracle_p2, cover);
  InfluenceOracle oracle_p6(&gg_.graph, &gg_.groups, options_);
  const GreedyResult p6 = SolveFairTcimCover(oracle_p6, cover);
  EXPECT_GE(p6.seeds.size(), p2.seeds.size());
  // ... but the paper's point: the surcharge is small, not catastrophic.
  EXPECT_LE(p6.seeds.size(), p2.seeds.size() + 30);
}

TEST_F(CoverSolverTest, FeasibleFairSolutionBoundsDisparity) {
  // Theorem-2 corollary: any feasible P6 solution has disparity <= 1 - Q.
  InfluenceOracle oracle(&gg_.graph, &gg_.groups, options_);
  CoverOptions cover;
  cover.quota = 0.25;
  const GreedyResult result = SolveFairTcimCover(oracle, cover);
  ASSERT_TRUE(result.target_reached);
  const GroupUtilityReport report =
      MakeGroupUtilityReport(result.coverage, gg_.groups);
  EXPECT_LE(report.disparity, 1.0 - cover.quota + 1e-9);
}

TEST_F(CoverSolverTest, HigherQuotaNeedsMoreSeeds) {
  CoverOptions low;
  low.quota = 0.1;
  CoverOptions high;
  high.quota = 0.3;
  InfluenceOracle oracle_a(&gg_.graph, &gg_.groups, options_);
  const size_t low_size = SolveFairTcimCover(oracle_a, low).seeds.size();
  InfluenceOracle oracle_b(&gg_.graph, &gg_.groups, options_);
  const size_t high_size = SolveFairTcimCover(oracle_b, high).seeds.size();
  EXPECT_GE(high_size, low_size);
}

TEST_F(CoverSolverTest, MaxSeedsCapRespected) {
  InfluenceOracle oracle(&gg_.graph, &gg_.groups, options_);
  CoverOptions cover;
  cover.quota = 0.9;   // unreachable at pe = 0.05
  cover.max_seeds = 7;
  const GreedyResult result = SolveTcimCover(oracle, cover);
  EXPECT_LE(result.seeds.size(), 7u);
  EXPECT_FALSE(result.target_reached);
}

TEST_F(CoverSolverTest, ZeroQuotaNeedsNoSeeds) {
  InfluenceOracle oracle(&gg_.graph, &gg_.groups, options_);
  CoverOptions cover;
  cover.quota = 0.0;
  const GreedyResult result = SolveFairTcimCover(oracle, cover);
  EXPECT_TRUE(result.target_reached);
  EXPECT_TRUE(result.seeds.empty());
}

TEST_F(CoverSolverTest, TraceObjectiveIsMonotone) {
  InfluenceOracle oracle(&gg_.graph, &gg_.groups, options_);
  CoverOptions cover;
  cover.quota = 0.2;
  const GreedyResult result = SolveFairTcimCover(oracle, cover);
  double last = 0.0;
  for (const GreedyStep& step : result.trace) {
    EXPECT_GE(step.objective_value, last - 1e-12);
    last = step.objective_value;
  }
}

}  // namespace
}  // namespace tcim
