#include "sim/influence_oracle.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/datasets.h"
#include "graph/generators.h"

namespace tcim {
namespace {

// Path 0 -> 1 -> 2 -> 3 with sure edges; two groups {0,1} and {2,3}.
struct PathFixture {
  PathFixture() {
    GraphBuilder builder(4);
    builder.AddEdge(0, 1, 1.0).AddEdge(1, 2, 1.0).AddEdge(2, 3, 1.0);
    graph = builder.Build();
    groups = GroupAssignment({0, 0, 1, 1});
  }
  Graph graph;
  GroupAssignment groups;
};

TEST(InfluenceOracleTest, SureEdgesFullCoverage) {
  PathFixture fx;
  OracleOptions options;
  options.num_worlds = 10;
  InfluenceOracle oracle(&fx.graph, &fx.groups, options);
  oracle.AddSeed(0);
  EXPECT_NEAR(oracle.group_coverage()[0], 2.0, 1e-9);
  EXPECT_NEAR(oracle.group_coverage()[1], 2.0, 1e-9);
  EXPECT_NEAR(oracle.total_coverage(), 4.0, 1e-9);
}

TEST(InfluenceOracleTest, DeadlineCutsPath) {
  PathFixture fx;
  OracleOptions options;
  options.num_worlds = 10;
  options.deadline = 1;  // only node 1 within one hop of seed 0
  InfluenceOracle oracle(&fx.graph, &fx.groups, options);
  oracle.AddSeed(0);
  EXPECT_NEAR(oracle.group_coverage()[0], 2.0, 1e-9);  // nodes 0 and 1
  EXPECT_NEAR(oracle.group_coverage()[1], 0.0, 1e-9);
}

TEST(InfluenceOracleTest, DeadlineZeroCoversSeedOnly) {
  PathFixture fx;
  OracleOptions options;
  options.num_worlds = 5;
  options.deadline = 0;
  InfluenceOracle oracle(&fx.graph, &fx.groups, options);
  oracle.AddSeed(1);
  EXPECT_NEAR(oracle.total_coverage(), 1.0, 1e-9);
}

TEST(InfluenceOracleTest, MarginalGainDoesNotMutate) {
  PathFixture fx;
  OracleOptions options;
  options.num_worlds = 8;
  InfluenceOracle oracle(&fx.graph, &fx.groups, options);
  const GroupVector before = oracle.group_coverage();
  const GroupVector gain = oracle.MarginalGain(0);
  EXPECT_EQ(oracle.group_coverage(), before);
  EXPECT_TRUE(oracle.seeds().empty());
  EXPECT_NEAR(GroupVectorTotal(gain), 4.0, 1e-9);
}

TEST(InfluenceOracleTest, AddSeedMatchesPriorMarginalGain) {
  Rng rng(3);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  OracleOptions options;
  options.num_worlds = 50;
  options.deadline = 5;
  InfluenceOracle oracle(&gg.graph, &gg.groups, options);
  for (const NodeId seed : {3, 77, 410}) {
    const GroupVector expected = oracle.MarginalGain(seed);
    const GroupVector realized = oracle.AddSeed(seed);
    ASSERT_EQ(expected.size(), realized.size());
    for (size_t g = 0; g < expected.size(); ++g) {
      EXPECT_NEAR(expected[g], realized[g], 1e-9);
    }
  }
}

TEST(InfluenceOracleTest, SecondAddOfSameSeedGainsNothing) {
  PathFixture fx;
  OracleOptions options;
  options.num_worlds = 4;
  InfluenceOracle oracle(&fx.graph, &fx.groups, options);
  oracle.AddSeed(0);
  const GroupVector again = oracle.AddSeed(0);
  EXPECT_NEAR(GroupVectorTotal(again), 0.0, 1e-9);
}

TEST(InfluenceOracleTest, ResetClearsState) {
  PathFixture fx;
  OracleOptions options;
  options.num_worlds = 4;
  InfluenceOracle oracle(&fx.graph, &fx.groups, options);
  oracle.AddSeed(0);
  oracle.Reset();
  EXPECT_TRUE(oracle.seeds().empty());
  EXPECT_NEAR(oracle.total_coverage(), 0.0, 1e-9);
  const GroupVector gain = oracle.AddSeed(0);
  EXPECT_NEAR(GroupVectorTotal(gain), 4.0, 1e-9);
}

TEST(InfluenceOracleTest, EstimateGroupCoverageMatchesIncrementalState) {
  Rng rng(9);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  OracleOptions options;
  options.num_worlds = 40;
  options.deadline = 10;
  InfluenceOracle oracle(&gg.graph, &gg.groups, options);
  const std::vector<NodeId> seeds = {5, 123, 400, 42};
  for (const NodeId s : seeds) oracle.AddSeed(s);
  const GroupVector direct = oracle.EstimateGroupCoverage(seeds);
  for (size_t g = 0; g < direct.size(); ++g) {
    EXPECT_NEAR(direct[g], oracle.group_coverage()[g], 1e-9);
  }
}

TEST(InfluenceOracleTest, EstimateMatchesBernoulliProbability) {
  // Single edge with p=0.3: E[coverage of {0}] = 1 + 0.3.
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 0.3);
  const Graph graph = builder.Build();
  const GroupAssignment groups = GroupAssignment::SingleGroup(2);
  OracleOptions options;
  options.num_worlds = 20000;
  InfluenceOracle oracle(&graph, &groups, options);
  oracle.AddSeed(0);
  EXPECT_NEAR(oracle.total_coverage(), 1.3, 0.02);
}

TEST(InfluenceOracleTest, AgreesWithForwardWorldSimulation) {
  // The oracle's coverage must equal averaging SimulateInWorld over the
  // same worlds — they share the WorldSampler coins.
  Rng rng(5);
  SbmParams params;
  params.num_nodes = 120;
  const GroupedGraph gg = GenerateSbm(params, rng);
  OracleOptions options;
  options.num_worlds = 60;
  options.deadline = 4;
  options.seed = 777;
  InfluenceOracle oracle(&gg.graph, &gg.groups, options);
  const std::vector<NodeId> seeds = {3, 50, 99};
  for (const NodeId s : seeds) oracle.AddSeed(s);

  WorldSampler sampler(&gg.graph, DiffusionModel::kIndependentCascade, 777);
  GroupVector expected(gg.groups.num_groups(), 0.0);
  for (uint32_t world = 0; world < 60; ++world) {
    const CascadeResult result =
        SimulateInWorld(gg.graph, seeds, sampler, world, options.deadline);
    for (NodeId v = 0; v < gg.graph.num_nodes(); ++v) {
      if (result.activation_time[v] >= 0 &&
          result.activation_time[v] <= options.deadline) {
        expected[gg.groups.GroupOf(v)] += 1.0;
      }
    }
  }
  for (double& e : expected) e /= 60.0;
  for (size_t g = 0; g < expected.size(); ++g) {
    EXPECT_NEAR(oracle.group_coverage()[g], expected[g], 1e-9);
  }
}

TEST(InfluenceOracleTest, LinearThresholdModelSupported) {
  PathFixture fx;
  OracleOptions options;
  options.num_worlds = 50;
  options.model = DiffusionModel::kLinearThreshold;
  InfluenceOracle oracle(&fx.graph, &fx.groups, options);
  oracle.AddSeed(0);
  // Weight-1 in-edges make LT deterministic on the path.
  EXPECT_NEAR(oracle.total_coverage(), 4.0, 1e-9);
}

TEST(InfluenceOracleTest, DeterministicAcrossRuns) {
  Rng rng(12);
  SbmParams params;
  params.num_nodes = 150;
  const GroupedGraph gg = GenerateSbm(params, rng);
  OracleOptions options;
  options.num_worlds = 30;
  options.deadline = 6;
  InfluenceOracle a(&gg.graph, &gg.groups, options);
  InfluenceOracle b(&gg.graph, &gg.groups, options);
  for (const NodeId s : {10, 20, 30}) {
    const GroupVector ga = a.AddSeed(s);
    const GroupVector gb = b.AddSeed(s);
    for (size_t g = 0; g < ga.size(); ++g) EXPECT_DOUBLE_EQ(ga[g], gb[g]);
  }
}

// ---------------------------------------------------------------------------
// Property sweep: on fixed worlds the estimate is a coverage function, so it
// must be monotone and submodular EXACTLY (not just in expectation).
// ---------------------------------------------------------------------------

class OracleLawsTest : public ::testing::TestWithParam<int> {};

TEST_P(OracleLawsTest, MonotoneAndSubmodularOnFixedWorlds) {
  const int config = GetParam();
  const int deadline = (config % 3 == 0) ? 2 : (config % 3 == 1) ? 5 : kNoDeadline;
  Rng rng(1000 + config);
  SbmParams params;
  params.num_nodes = 80;
  params.p_hom = 0.06;
  params.p_het = 0.02;
  params.activation_probability = 0.3;
  const GroupedGraph gg = GenerateSbm(params, rng);

  OracleOptions options;
  options.num_worlds = 25;
  options.deadline = deadline;
  options.seed = 500 + config;

  // Random chain A ⊆ A' and element a ∉ A'.
  Rng pick(2000 + config);
  std::vector<NodeId> a_small, a_large;
  for (NodeId v = 0; v < gg.graph.num_nodes(); ++v) {
    const double coin = pick.NextDouble();
    if (coin < 0.05) a_small.push_back(v);
    if (coin < 0.15) a_large.push_back(v);  // superset of a_small
  }
  NodeId extra = -1;
  for (NodeId v = 0; v < gg.graph.num_nodes(); ++v) {
    if (std::find(a_large.begin(), a_large.end(), v) == a_large.end()) {
      extra = v;
      break;
    }
  }
  ASSERT_GE(extra, 0);

  InfluenceOracle oracle(&gg.graph, &gg.groups, options);
  auto value = [&](std::vector<NodeId> seeds) {
    return GroupVectorTotal(oracle.EstimateGroupCoverage(seeds));
  };

  const double f_small = value(a_small);
  const double f_large = value(a_large);
  // Monotone: A ⊆ A' implies f(A) <= f(A').
  EXPECT_LE(f_small, f_large + 1e-9);

  auto with = [](std::vector<NodeId> base, NodeId v) {
    base.push_back(v);
    return base;
  };
  const double gain_small = value(with(a_small, extra)) - f_small;
  const double gain_large = value(with(a_large, extra)) - f_large;
  // Submodular: marginal gains diminish along the chain.
  EXPECT_GE(gain_small, gain_large - 1e-9);
  // Nonnegative marginal gains (monotonicity again).
  EXPECT_GE(gain_small, -1e-9);
  EXPECT_GE(gain_large, -1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, OracleLawsTest,
                         ::testing::Range(0, 24));

TEST(InfluenceOracleDeathTest, InvalidCandidateAborts) {
  PathFixture fx;
  OracleOptions options;
  options.num_worlds = 2;
  InfluenceOracle oracle(&fx.graph, &fx.groups, options);
  EXPECT_DEATH(oracle.AddSeed(99), "out of range");
}

TEST(InfluenceOracleDeathTest, ZeroWorldsAborts) {
  PathFixture fx;
  OracleOptions options;
  options.num_worlds = 0;
  EXPECT_DEATH(InfluenceOracle(&fx.graph, &fx.groups, options), "world");
}

}  // namespace
}  // namespace tcim
