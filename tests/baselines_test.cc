#include "core/baselines.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/datasets.h"

namespace tcim {
namespace {

Graph StarPlusPath() {
  // Node 0: degree 4; nodes 5,6,7 form a path.
  GraphBuilder builder(8);
  for (NodeId v = 1; v <= 4; ++v) builder.AddUndirectedEdge(0, v, 0.5);
  builder.AddUndirectedEdge(5, 6, 0.5);
  builder.AddUndirectedEdge(6, 7, 0.5);
  return builder.Build();
}

TEST(TopDegreeSeedsTest, PicksHighestDegreeFirst) {
  const std::vector<NodeId> seeds = TopDegreeSeeds(StarPlusPath(), 2);
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_EQ(seeds[0], 0);  // degree 4
  EXPECT_EQ(seeds[1], 6);  // degree 2
}

TEST(RandomSeedsTest, DistinctAndInRange) {
  const Graph graph = StarPlusPath();
  Rng rng(5);
  const std::vector<NodeId> seeds = RandomSeeds(graph, 5, rng);
  std::set<NodeId> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 5u);
  for (const NodeId s : seeds) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, graph.num_nodes());
  }
}

TEST(RandomSeedsTest, FullBudgetIsPermutation) {
  const Graph graph = StarPlusPath();
  Rng rng(9);
  const std::vector<NodeId> seeds = RandomSeeds(graph, 8, rng);
  std::set<NodeId> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(PageRankSeedsTest, StarCenterFirst) {
  const std::vector<NodeId> seeds = PageRankSeeds(StarPlusPath(), 1);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], 0);
}

TEST(GroupProportionalDegreeSeedsTest, EveryGroupRepresented) {
  Rng rng(3);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  const std::vector<NodeId> seeds =
      GroupProportionalDegreeSeeds(gg.graph, gg.groups, 10);
  EXPECT_EQ(seeds.size(), 10u);
  std::set<GroupId> groups_hit;
  for (const NodeId s : seeds) groups_hit.insert(gg.groups.GroupOf(s));
  EXPECT_EQ(groups_hit.size(), 2u);
}

TEST(GroupProportionalDegreeSeedsTest, SlotsRoughlyProportional) {
  Rng rng(3);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);  // 70/30 split
  const std::vector<NodeId> seeds =
      GroupProportionalDegreeSeeds(gg.graph, gg.groups, 20);
  int minority = 0;
  for (const NodeId s : seeds) {
    if (gg.groups.GroupOf(s) == 1) ++minority;
  }
  EXPECT_GE(minority, 4);  // ~30% of 20 = 6, allow rounding slack
  EXPECT_LE(minority, 8);
}

TEST(TopDegreeSeedsTest, BudgetLargerThanGraph) {
  const std::vector<NodeId> seeds = TopDegreeSeeds(StarPlusPath(), 100);
  EXPECT_EQ(seeds.size(), 8u);
}

TEST(DegreeDiscountSeedsTest, FirstPickIsTopDegree) {
  const std::vector<NodeId> seeds = DegreeDiscountSeeds(StarPlusPath(), 1);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], 0);
}

TEST(DegreeDiscountSeedsTest, AvoidsClusteredSeeds) {
  // A 4-clique plus a separate edge pair: raw degree picks two clique
  // members; degree-discount spreads to the pair after one clique pick.
  GraphBuilder builder(6);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) builder.AddUndirectedEdge(u, v, 0.5);
  }
  builder.AddUndirectedEdge(4, 5, 0.5);
  const Graph graph = builder.Build();

  const std::vector<NodeId> discount = DegreeDiscountSeeds(graph, 2);
  ASSERT_EQ(discount.size(), 2u);
  // Second pick must leave the clique: a clique neighbor's score drops to
  // d - 2t - (d-t)tp = 3 - 2 - 2*0.5 = 0 < 1 (the pair nodes).
  EXPECT_LT(discount[0], 4);
  EXPECT_GE(discount[1], 4);

  const std::vector<NodeId> raw = TopDegreeSeeds(graph, 2);
  EXPECT_LT(raw[1], 4);  // raw degree stays in the clique
}

TEST(DegreeDiscountSeedsTest, DistinctSeeds) {
  Rng rng(3);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  const std::vector<NodeId> seeds = DegreeDiscountSeeds(gg.graph, 25);
  std::set<NodeId> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 25u);
}

TEST(DegreeDiscountSeedsTest, BudgetBeyondNodesReturnsAll) {
  EXPECT_EQ(DegreeDiscountSeeds(StarPlusPath(), 100).size(), 8u);
}

TEST(RandomSeedsDeathTest, BudgetBeyondNodesAborts) {
  const Graph graph = StarPlusPath();
  Rng rng(1);
  EXPECT_DEATH(RandomSeeds(graph, 9, rng), "budget");
}

}  // namespace
}  // namespace tcim
