#include "graph/spectral.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace tcim {
namespace {

// Two disjoint cliques of sizes a and b.
Graph TwoCliques(NodeId a, NodeId b) {
  GraphBuilder builder(a + b);
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = u + 1; v < a; ++v) builder.AddUndirectedEdge(u, v, 0.5);
  }
  for (NodeId u = a; u < a + b; ++u) {
    for (NodeId v = u + 1; v < a + b; ++v) builder.AddUndirectedEdge(u, v, 0.5);
  }
  return builder.Build();
}

// True iff `groups` puts [0,a) in one group and [a,a+b) in the other.
bool SeparatesCliques(const GroupAssignment& groups, NodeId a) {
  const GroupId first = groups.GroupOf(0);
  for (NodeId v = 1; v < a; ++v) {
    if (groups.GroupOf(v) != first) return false;
  }
  const GroupId second = groups.GroupOf(a);
  if (second == first) return false;
  for (NodeId v = a; v < groups.num_nodes(); ++v) {
    if (groups.GroupOf(v) != second) return false;
  }
  return true;
}

TEST(SpectralClusteringTest, RecoverDisjointCliques) {
  const Graph graph = TwoCliques(12, 8);
  Rng rng(5);
  SpectralClusteringOptions options;
  options.num_clusters = 2;
  const GroupAssignment groups = SpectralClustering(graph, options, rng);
  EXPECT_TRUE(SeparatesCliques(groups, 12)) << groups.DebugString();
}

TEST(SpectralClusteringTest, RecoversPlantedBlocks) {
  Rng rng(11);
  // Strongly assortative 3-block model.
  const GroupedGraph gg = GenerateBlockModel(
      {40, 40, 40},
      {{0.5, 0.01, 0.01}, {0.01, 0.5, 0.01}, {0.01, 0.01, 0.5}}, 0.1, rng);
  SpectralClusteringOptions options;
  options.num_clusters = 3;
  const GroupAssignment found = SpectralClustering(gg.graph, options, rng);
  // Measure agreement: within each planted block, the majority found-label
  // should cover almost all members, and majorities must differ.
  std::set<GroupId> majorities;
  for (GroupId planted = 0; planted < 3; ++planted) {
    std::vector<int> counts(found.num_groups(), 0);
    for (const NodeId v : gg.groups.GroupMembers(planted)) {
      counts[found.GroupOf(v)]++;
    }
    const int best = *std::max_element(counts.begin(), counts.end());
    EXPECT_GE(best, 36) << "planted block " << planted << " was shattered";
    majorities.insert(static_cast<GroupId>(
        std::max_element(counts.begin(), counts.end()) - counts.begin()));
  }
  EXPECT_EQ(majorities.size(), 3u);
}

TEST(SpectralClusteringTest, ProducesDenseGroups) {
  const Graph graph = TwoCliques(10, 10);
  Rng rng(3);
  SpectralClusteringOptions options;
  options.num_clusters = 4;  // more clusters than natural structure
  const GroupAssignment groups = SpectralClustering(graph, options, rng);
  EXPECT_EQ(groups.num_groups(), 4);  // dense ids, repaired if needed
  for (GroupId g = 0; g < 4; ++g) EXPECT_GT(groups.GroupSize(g), 0);
}

TEST(SpectralEmbeddingTest, RowsAreUnitNorm) {
  const Graph graph = TwoCliques(6, 6);
  Rng rng(7);
  const auto embedding = SpectralEmbedding(graph, 2, 100, rng);
  for (const auto& row : embedding) {
    double norm = 0.0;
    for (const double x : row) norm += x * x;
    EXPECT_NEAR(norm, 1.0, 1e-6);
  }
}

TEST(KMeansTest, SeparatesObviousClusters) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 10; ++i) points.push_back({0.0 + i * 0.01, 0.0});
  for (int i = 0; i < 10; ++i) points.push_back({10.0 + i * 0.01, 0.0});
  Rng rng(1);
  const std::vector<int> labels = KMeans(points, 2, 4, 50, rng);
  for (int i = 1; i < 10; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (int i = 11; i < 20; ++i) EXPECT_EQ(labels[i], labels[10]);
  EXPECT_NE(labels[0], labels[10]);
}

TEST(KMeansTest, SingleClusterTrivial) {
  std::vector<std::vector<double>> points = {{1.0}, {2.0}, {3.0}};
  Rng rng(2);
  const std::vector<int> labels = KMeans(points, 1, 1, 10, rng);
  for (const int l : labels) EXPECT_EQ(l, 0);
}

TEST(KMeansDeathTest, MorePointsThanClustersRequired) {
  std::vector<std::vector<double>> points = {{1.0}};
  Rng rng(2);
  EXPECT_DEATH(KMeans(points, 2, 1, 10, rng), "fewer points");
}

}  // namespace
}  // namespace tcim
