#include "common/status.h"

#include <string>

#include <gtest/gtest.h>

namespace tcim {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = IoError("disk on fire");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(status.message(), "disk on fire");
  EXPECT_EQ(status.ToString(), "IO_ERROR: disk on fire");
}

TEST(StatusTest, FactoriesProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusCodeNameTest, AllNamesStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IO_ERROR");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(NotFoundError("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MutableAccess) {
  Result<std::string> result(std::string("abc"));
  result.value() += "def";
  EXPECT_EQ(*result, "abcdef");
  EXPECT_EQ(result->size(), 6u);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> result(InternalError("boom"));
  EXPECT_DEATH({ (void)result.value(); }, "boom");
}

TEST(ReturnIfErrorTest, PropagatesError) {
  auto fails = [] { return IoError("inner"); };
  auto outer = [&]() -> Status {
    TCIM_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kIoError);
}

TEST(ReturnIfErrorTest, PassesOk) {
  auto succeeds = [] { return Status::Ok(); };
  auto outer = [&]() -> Status {
    TCIM_RETURN_IF_ERROR(succeeds());
    return InternalError("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ TCIM_CHECK(1 == 2) << "math broke"; }, "math broke");
}

TEST(CheckTest, PassingCheckIsSilent) {
  TCIM_CHECK(true) << "never evaluated";
  SUCCEED();
}

}  // namespace
}  // namespace tcim
