#include "sim/live_edge.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace tcim {
namespace {

Graph SmallGraph() {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 0.5);
  builder.AddEdge(0, 2, 0.25);
  builder.AddEdge(1, 3, 0.75);
  builder.AddEdge(2, 3, 1.0);
  return builder.Build();
}

TEST(WorldSamplerTest, DeterministicPerWorldAndEdge) {
  const Graph graph = SmallGraph();
  WorldSampler sampler(&graph, DiffusionModel::kIndependentCascade, 42);
  for (uint32_t world = 0; world < 10; ++world) {
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      EXPECT_EQ(sampler.IsLive(world, e), sampler.IsLive(world, e));
    }
  }
}

TEST(WorldSamplerTest, DifferentSeedsGiveDifferentWorlds) {
  const Graph graph = SmallGraph();
  WorldSampler a(&graph, DiffusionModel::kIndependentCascade, 1);
  WorldSampler b(&graph, DiffusionModel::kIndependentCascade, 2);
  int differing = 0;
  for (uint32_t world = 0; world < 200; ++world) {
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (a.IsLive(world, e) != b.IsLive(world, e)) ++differing;
    }
  }
  EXPECT_GT(differing, 50);
}

TEST(WorldSamplerTest, IcLivenessFrequencyMatchesProbability) {
  const Graph graph = SmallGraph();
  WorldSampler sampler(&graph, DiffusionModel::kIndependentCascade, 7);
  const int worlds = 40000;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    int live = 0;
    for (uint32_t world = 0; world < static_cast<uint32_t>(worlds); ++world) {
      if (sampler.IsLive(world, e)) ++live;
    }
    const double expected = graph.EdgeProbability(e);
    EXPECT_NEAR(static_cast<double>(live) / worlds, expected,
                4 * std::sqrt(expected * (1 - expected) / worlds) + 1e-9)
        << "edge " << e;
  }
}

TEST(WorldSamplerTest, SureEdgeAlwaysLive) {
  const Graph graph = SmallGraph();  // edge 2->3 has p = 1.0
  WorldSampler sampler(&graph, DiffusionModel::kIndependentCascade, 7);
  EdgeId sure_edge = -1;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (graph.EdgeProbability(e) == 1.0) sure_edge = e;
  }
  ASSERT_GE(sure_edge, 0);
  for (uint32_t world = 0; world < 1000; ++world) {
    EXPECT_TRUE(sampler.IsLive(world, sure_edge));
  }
}

TEST(WorldSamplerTest, UnitCoinIsUniform) {
  const Graph graph = SmallGraph();
  WorldSampler sampler(&graph, DiffusionModel::kIndependentCascade, 3);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double coin = sampler.UnitCoin(i, 0);
    EXPECT_GE(coin, 0.0);
    EXPECT_LT(coin, 1.0);
    sum += coin;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(LinearThresholdChoiceTest, AtMostOneLiveInEdgePerNode) {
  const Graph graph = SmallGraph();
  WorldSampler sampler(&graph, DiffusionModel::kLinearThreshold, 11);
  for (uint32_t world = 0; world < 500; ++world) {
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      int live_in = 0;
      for (const AdjacentEdge& in_edge : graph.InEdges(v)) {
        if (sampler.IsLive(world, in_edge.edge_id)) ++live_in;
      }
      EXPECT_LE(live_in, 1) << "node " << v << " world " << world;
    }
  }
}

TEST(LinearThresholdChoiceTest, SelectionFrequencyProportionalToWeight) {
  // Node 3 has in-edges with weights 0.75 (from 1) and... make a clean case:
  GraphBuilder builder(3);
  builder.AddEdge(0, 2, 0.6);
  builder.AddEdge(1, 2, 0.3);
  const Graph graph = builder.Build();
  WorldSampler sampler(&graph, DiffusionModel::kLinearThreshold, 13);
  const int worlds = 30000;
  int from0 = 0, from1 = 0, none = 0;
  for (uint32_t world = 0; world < static_cast<uint32_t>(worlds); ++world) {
    const EdgeId chosen = sampler.LinearThresholdChoice(world, 2);
    if (chosen == -1) {
      ++none;
    } else if (graph.EdgeSource(chosen) == 0) {
      ++from0;
    } else {
      ++from1;
    }
  }
  EXPECT_NEAR(static_cast<double>(from0) / worlds, 0.6, 0.01);
  EXPECT_NEAR(static_cast<double>(from1) / worlds, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(none) / worlds, 0.1, 0.01);
}

TEST(LinearThresholdChoiceTest, NoInEdgesMeansNoChoice) {
  const Graph graph = SmallGraph();
  WorldSampler sampler(&graph, DiffusionModel::kLinearThreshold, 17);
  for (uint32_t world = 0; world < 100; ++world) {
    EXPECT_EQ(sampler.LinearThresholdChoice(world, 0), -1);  // node 0: no in
  }
}

TEST(DiffusionModelNameTest, Names) {
  EXPECT_STREQ(DiffusionModelName(DiffusionModel::kIndependentCascade), "IC");
  EXPECT_STREQ(DiffusionModelName(DiffusionModel::kLinearThreshold), "LT");
}

}  // namespace
}  // namespace tcim
