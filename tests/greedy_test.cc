#include "core/greedy.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace tcim {
namespace {

// Two disjoint sure-edge stars: center 0 with 5 leaves, center 6 with 3
// leaves, singleton 10. Greedy must pick 0 then 6.
struct StarsFixture {
  StarsFixture() {
    GraphBuilder builder(11);
    for (NodeId v = 1; v <= 5; ++v) builder.AddEdge(0, v, 1.0);
    for (NodeId v = 7; v <= 9; ++v) builder.AddEdge(6, v, 1.0);
    graph = builder.Build();
    groups = GroupAssignment::SingleGroup(11);
  }
  Graph graph;
  GroupAssignment groups;
  OracleOptions options;
};

TEST(RunGreedyTest, PicksCentersInGainOrder) {
  StarsFixture fx;
  fx.options.num_worlds = 5;
  InfluenceOracle oracle(&fx.graph, &fx.groups, fx.options);
  TotalInfluenceObjective objective;
  GreedyOptions greedy;
  greedy.max_seeds = 2;
  const GreedyResult result = RunGreedy(oracle, objective, greedy);
  ASSERT_EQ(result.seeds.size(), 2u);
  EXPECT_EQ(result.seeds[0], 0);  // 6 covered nodes
  EXPECT_EQ(result.seeds[1], 6);  // 4 covered nodes
  EXPECT_NEAR(result.objective_value, 10.0, 1e-9);
}

TEST(RunGreedyTest, LazyAndPlainAgree) {
  Rng rng(3);
  SbmParams params;
  params.num_nodes = 120;
  params.activation_probability = 0.15;
  const GroupedGraph gg = GenerateSbm(params, rng);
  OracleOptions options;
  options.num_worlds = 40;
  options.deadline = 4;

  TotalInfluenceObjective objective;
  GreedyOptions lazy_options;
  lazy_options.max_seeds = 8;
  lazy_options.lazy = true;
  GreedyOptions plain_options = lazy_options;
  plain_options.lazy = false;

  InfluenceOracle oracle_a(&gg.graph, &gg.groups, options);
  const GreedyResult lazy = RunGreedy(oracle_a, objective, lazy_options);
  InfluenceOracle oracle_b(&gg.graph, &gg.groups, options);
  const GreedyResult plain = RunGreedy(oracle_b, objective, plain_options);

  EXPECT_EQ(lazy.seeds, plain.seeds);
  EXPECT_NEAR(lazy.objective_value, plain.objective_value, 1e-9);
  // CELF must save oracle calls.
  EXPECT_LT(lazy.oracle_calls, plain.oracle_calls);
}

TEST(RunGreedyTest, TraceRecordsEveryStep) {
  StarsFixture fx;
  fx.options.num_worlds = 4;
  InfluenceOracle oracle(&fx.graph, &fx.groups, fx.options);
  TotalInfluenceObjective objective;
  GreedyOptions greedy;
  greedy.max_seeds = 3;
  const GreedyResult result = RunGreedy(oracle, objective, greedy);
  ASSERT_EQ(result.trace.size(), result.seeds.size());
  double last_value = 0.0;
  for (size_t i = 0; i < result.trace.size(); ++i) {
    EXPECT_EQ(result.trace[i].node, result.seeds[i]);
    EXPECT_GE(result.trace[i].objective_value, last_value);
    last_value = result.trace[i].objective_value;
    EXPECT_GT(result.trace[i].gain, 0.0);
  }
}

TEST(RunGreedyTest, GainsAreNonIncreasing) {
  Rng rng(5);
  SbmParams params;
  params.num_nodes = 150;
  const GroupedGraph gg = GenerateSbm(params, rng);
  OracleOptions options;
  options.num_worlds = 30;
  InfluenceOracle oracle(&gg.graph, &gg.groups, options);
  TotalInfluenceObjective objective;
  GreedyOptions greedy;
  greedy.max_seeds = 10;
  const GreedyResult result = RunGreedy(oracle, objective, greedy);
  for (size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_LE(result.trace[i].gain, result.trace[i - 1].gain + 1e-9)
        << "greedy gains must diminish (submodularity)";
  }
}

TEST(RunGreedyTest, TargetValueStopsEarly) {
  StarsFixture fx;
  fx.options.num_worlds = 4;
  InfluenceOracle oracle(&fx.graph, &fx.groups, fx.options);
  TotalInfluenceObjective objective;
  GreedyOptions greedy;
  greedy.max_seeds = 10;
  greedy.target_value = 5.0;  // the first star alone reaches 6
  const GreedyResult result = RunGreedy(oracle, objective, greedy);
  EXPECT_EQ(result.seeds.size(), 1u);
  EXPECT_TRUE(result.target_reached);
}

TEST(RunGreedyTest, UnreachableTargetStopsAtNoGain) {
  StarsFixture fx;
  fx.options.num_worlds = 4;
  InfluenceOracle oracle(&fx.graph, &fx.groups, fx.options);
  TotalInfluenceObjective objective;
  GreedyOptions greedy;
  greedy.max_seeds = 200;
  greedy.target_value = 999.0;  // impossible: only 11 nodes exist
  const GreedyResult result = RunGreedy(oracle, objective, greedy);
  EXPECT_FALSE(result.target_reached);
  // Stops once every node is covered (11 = all nodes), not at max_seeds.
  EXPECT_LE(result.seeds.size(), 11u);
  EXPECT_NEAR(result.objective_value, 11.0, 1e-9);
}

TEST(RunGreedyTest, CandidateRestrictionHonored) {
  StarsFixture fx;
  fx.options.num_worlds = 4;
  InfluenceOracle oracle(&fx.graph, &fx.groups, fx.options);
  TotalInfluenceObjective objective;
  const std::vector<NodeId> candidates = {6, 10};  // the big center excluded
  GreedyOptions greedy;
  greedy.max_seeds = 2;
  greedy.candidates = &candidates;
  const GreedyResult result = RunGreedy(oracle, objective, greedy);
  for (const NodeId s : result.seeds) {
    EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), s) !=
                candidates.end());
  }
  EXPECT_EQ(result.seeds[0], 6);
}

TEST(RunGreedyTest, ZeroBudgetReturnsEmpty) {
  StarsFixture fx;
  fx.options.num_worlds = 2;
  InfluenceOracle oracle(&fx.graph, &fx.groups, fx.options);
  TotalInfluenceObjective objective;
  GreedyOptions greedy;
  greedy.max_seeds = 0;
  const GreedyResult result = RunGreedy(oracle, objective, greedy);
  EXPECT_TRUE(result.seeds.empty());
  EXPECT_EQ(result.oracle_calls, 0);
}

TEST(RunGreedyTest, OracleStateMatchesResult) {
  StarsFixture fx;
  fx.options.num_worlds = 4;
  InfluenceOracle oracle(&fx.graph, &fx.groups, fx.options);
  TotalInfluenceObjective objective;
  GreedyOptions greedy;
  greedy.max_seeds = 2;
  const GreedyResult result = RunGreedy(oracle, objective, greedy);
  EXPECT_EQ(oracle.seeds(), result.seeds);
  EXPECT_NEAR(oracle.total_coverage(), result.objective_value, 1e-9);
}

TEST(RunGreedyTest, ResetsPreviousOracleState) {
  StarsFixture fx;
  fx.options.num_worlds = 4;
  InfluenceOracle oracle(&fx.graph, &fx.groups, fx.options);
  oracle.AddSeed(10);  // stale state that RunGreedy must clear
  TotalInfluenceObjective objective;
  GreedyOptions greedy;
  greedy.max_seeds = 1;
  const GreedyResult result = RunGreedy(oracle, objective, greedy);
  EXPECT_EQ(result.seeds, (std::vector<NodeId>{0}));
}

TEST(StochasticGreedyTest, ProducesFullBudget) {
  Rng rng(7);
  SbmParams params;
  params.num_nodes = 200;
  const GroupedGraph gg = GenerateSbm(params, rng);
  OracleOptions options;
  options.num_worlds = 30;
  InfluenceOracle oracle(&gg.graph, &gg.groups, options);
  TotalInfluenceObjective objective;
  GreedyOptions greedy;
  greedy.max_seeds = 10;
  greedy.stochastic_epsilon = 0.1;
  const GreedyResult result = RunGreedy(oracle, objective, greedy);
  EXPECT_EQ(result.seeds.size(), 10u);
  // No duplicate selections.
  std::vector<NodeId> sorted = result.seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(StochasticGreedyTest, FewerOracleCallsThanPlain) {
  Rng rng(7);
  SbmParams params;
  params.num_nodes = 200;
  const GroupedGraph gg = GenerateSbm(params, rng);
  OracleOptions options;
  options.num_worlds = 30;
  TotalInfluenceObjective objective;

  GreedyOptions stochastic;
  stochastic.max_seeds = 10;
  stochastic.stochastic_epsilon = 0.2;
  InfluenceOracle oracle_a(&gg.graph, &gg.groups, options);
  const GreedyResult fast = RunGreedy(oracle_a, objective, stochastic);

  GreedyOptions plain;
  plain.max_seeds = 10;
  plain.lazy = false;
  InfluenceOracle oracle_b(&gg.graph, &gg.groups, options);
  const GreedyResult slow = RunGreedy(oracle_b, objective, plain);

  EXPECT_LT(fast.oracle_calls, slow.oracle_calls / 2);
  // Quality stays within the (1 - 1/e - eps) ballpark of plain greedy.
  EXPECT_GT(fast.objective_value, 0.6 * slow.objective_value);
}

TEST(StochasticGreedyTest, DeterministicGivenSeed) {
  Rng rng(9);
  SbmParams params;
  params.num_nodes = 150;
  const GroupedGraph gg = GenerateSbm(params, rng);
  OracleOptions options;
  options.num_worlds = 20;
  TotalInfluenceObjective objective;
  GreedyOptions greedy;
  greedy.max_seeds = 6;
  greedy.stochastic_epsilon = 0.15;
  greedy.stochastic_seed = 777;
  InfluenceOracle oracle_a(&gg.graph, &gg.groups, options);
  const GreedyResult a = RunGreedy(oracle_a, objective, greedy);
  InfluenceOracle oracle_b(&gg.graph, &gg.groups, options);
  const GreedyResult b = RunGreedy(oracle_b, objective, greedy);
  EXPECT_EQ(a.seeds, b.seeds);
}

TEST(StochasticGreedyTest, TerminatesWhenNothingHelps) {
  // Two-node empty-ish graph: after both nodes are chosen nothing has gain.
  GraphBuilder builder(2);
  const Graph graph = builder.Build();
  const GroupAssignment groups = GroupAssignment::SingleGroup(2);
  OracleOptions options;
  options.num_worlds = 4;
  InfluenceOracle oracle(&graph, &groups, options);
  TotalInfluenceObjective objective;
  GreedyOptions greedy;
  greedy.max_seeds = 10;
  greedy.stochastic_epsilon = 0.3;
  const GreedyResult result = RunGreedy(oracle, objective, greedy);
  EXPECT_LE(result.seeds.size(), 2u);
}

// Brute-force optimality: on tiny instances greedy with B=1 must be optimal,
// and for larger B must achieve >= (1 - 1/e) of the brute-force optimum
// measured on the same worlds (the §3.4 guarantee, exact because the
// estimate itself is submodular).
class GreedyGuaranteeTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyGuaranteeTest, AchievesApproximationBound) {
  Rng rng(100 + GetParam());
  SbmParams params;
  params.num_nodes = 18;
  params.p_hom = 0.25;
  params.p_het = 0.1;
  params.activation_probability = 0.4;
  const GroupedGraph gg = GenerateSbm(params, rng);
  OracleOptions options;
  options.num_worlds = 20;
  options.deadline = 3;
  options.seed = 42 + GetParam();
  InfluenceOracle oracle(&gg.graph, &gg.groups, options);

  const int budget = 2;
  TotalInfluenceObjective objective;
  GreedyOptions greedy;
  greedy.max_seeds = budget;
  const GreedyResult result = RunGreedy(oracle, objective, greedy);

  // Brute force over all pairs on the same worlds.
  double best = 0.0;
  for (NodeId a = 0; a < gg.graph.num_nodes(); ++a) {
    for (NodeId b = a; b < gg.graph.num_nodes(); ++b) {
      const double value =
          GroupVectorTotal(oracle.EstimateGroupCoverage({a, b}));
      best = std::max(best, value);
    }
  }
  EXPECT_GE(result.objective_value, (1.0 - 1.0 / std::exp(1.0)) * best - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GreedyGuaranteeTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace tcim
