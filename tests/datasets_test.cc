#include "graph/datasets.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"

namespace tcim {
namespace {

TEST(SyntheticDefaultTest, MatchesPaperParameters) {
  Rng rng(1);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  EXPECT_EQ(gg.graph.num_nodes(), 500);
  EXPECT_EQ(gg.groups.num_groups(), 2);
  EXPECT_EQ(gg.groups.GroupSize(0), 350);
  EXPECT_EQ(gg.groups.GroupSize(1), 150);
  for (EdgeId e = 0; e < gg.graph.num_edges(); ++e) {
    EXPECT_NEAR(gg.graph.EdgeProbability(e), 0.05, 1e-6);
  }
}

TEST(IllustrativeGraphTest, MatchesFigureOneShape) {
  const GroupedGraph gg = datasets::IllustrativeGraph();
  EXPECT_EQ(gg.graph.num_nodes(), 38);
  EXPECT_EQ(gg.groups.num_groups(), 2);
  EXPECT_EQ(gg.groups.GroupSize(0), 26);  // blue dots
  EXPECT_EQ(gg.groups.GroupSize(1), 12);  // red triangles
  for (EdgeId e = 0; e < gg.graph.num_edges(); ++e) {
    EXPECT_NEAR(gg.graph.EdgeProbability(e), 0.7, 1e-6);
  }
}

TEST(IllustrativeGraphTest, HubsAreTheMostCentralBlueNodes) {
  const GroupedGraph gg = datasets::IllustrativeGraph();
  const int deg_a = gg.graph.OutDegree(datasets::kIllustrativeA);
  const int deg_b = gg.graph.OutDegree(datasets::kIllustrativeB);
  for (NodeId v = 0; v < gg.graph.num_nodes(); ++v) {
    if (v == datasets::kIllustrativeA || v == datasets::kIllustrativeB) {
      continue;
    }
    EXPECT_LE(gg.graph.OutDegree(v), std::min(deg_a, deg_b))
        << "node " << v << " out-ranks the hubs";
  }
}

TEST(IllustrativeGraphTest, RedGroupBeyondTwoHopsOfHubs) {
  // The deadline-2 disparity mechanism: no red node within 2 hops of a or b.
  const GroupedGraph gg = datasets::IllustrativeGraph();
  const std::vector<int> dist = BfsDistances(
      gg.graph, {datasets::kIllustrativeA, datasets::kIllustrativeB});
  for (NodeId v = 0; v < gg.graph.num_nodes(); ++v) {
    if (gg.groups.GroupOf(v) == 1) {
      EXPECT_GT(dist[v], 2) << "red node " << v << " is too close to hubs";
    }
  }
  // But the graph is connected: every red node is eventually reachable.
  for (NodeId v = 0; v < gg.graph.num_nodes(); ++v) {
    EXPECT_NE(dist[v], kUnreachable);
  }
}

TEST(RiceFacebookSurrogateTest, MatchesReportedStatistics) {
  Rng rng(2);
  const GroupedGraph gg = datasets::RiceFacebookSurrogate(rng);
  EXPECT_EQ(gg.graph.num_nodes(), 1205);
  EXPECT_EQ(gg.graph.num_edges(), 2 * 42443);
  EXPECT_EQ(gg.groups.num_groups(), 4);
  EXPECT_EQ(gg.groups.GroupSize(0), 97);
  EXPECT_EQ(gg.groups.GroupSize(1), 344);

  const GroupEdgeStats stats = ComputeGroupEdgeStats(gg.graph, gg.groups);
  EXPECT_EQ(stats.within[0], 2 * 513);   // paper: 513 within ages 18-19
  EXPECT_EQ(stats.within[1], 2 * 7441);  // paper: 7441 within age 20
  EXPECT_EQ(stats.across[0][1] + stats.across[1][0], 2 * 3350);
}

TEST(InstagramSurrogateTest, ScaledBlocksPreserveComposition) {
  Rng rng(3);
  const GroupedGraph gg = datasets::InstagramSurrogate(rng, /*scale=*/50);
  EXPECT_EQ(gg.groups.num_groups(), 2);
  const NodeId total = gg.graph.num_nodes();
  EXPECT_EQ(total, 553628 / 50);
  // 45.5% male.
  EXPECT_NEAR(static_cast<double>(gg.groups.GroupSize(0)) / total, 0.455,
              0.001);
  const GroupEdgeStats stats = ComputeGroupEdgeStats(gg.graph, gg.groups);
  EXPECT_EQ(stats.within[0], 2 * (179668 / 50));
  EXPECT_EQ(stats.within[1], 2 * (201083 / 50));
  EXPECT_EQ(stats.across[0][1] + stats.across[1][0], 2 * (136039 / 50));
}

TEST(InstagramSurrogateTest, ScalePreservesAverageDegree) {
  Rng rng(4);
  const GroupedGraph coarse = datasets::InstagramSurrogate(rng, 100);
  const GroupedGraph fine = datasets::InstagramSurrogate(rng, 50);
  EXPECT_NEAR(coarse.graph.AverageOutDegree(), fine.graph.AverageOutDegree(),
              0.05);
}

TEST(FacebookSnapSurrogateTest, MatchesReportedStatistics) {
  Rng rng(5);
  const GroupedGraph gg = datasets::FacebookSnapSurrogate(rng);
  EXPECT_EQ(gg.graph.num_nodes(), 4039);
  EXPECT_EQ(gg.graph.num_edges(), 2 * 88234);
  EXPECT_EQ(gg.groups.num_groups(), 5);
  EXPECT_EQ(gg.groups.GroupSize(0), 546);
  EXPECT_EQ(gg.groups.GroupSize(1), 1404);
  EXPECT_EQ(gg.groups.GroupSize(2), 208);
  EXPECT_EQ(gg.groups.GroupSize(3), 788);
  EXPECT_EQ(gg.groups.GroupSize(4), 1093);
}

TEST(FacebookSnapSurrogateTest, CommunitiesAreAssortative) {
  Rng rng(6);
  const GroupedGraph gg = datasets::FacebookSnapSurrogate(rng);
  const GroupEdgeStats stats = ComputeGroupEdgeStats(gg.graph, gg.groups);
  EXPECT_GT(stats.total_within, 10 * stats.total_across);
}

}  // namespace
}  // namespace tcim
