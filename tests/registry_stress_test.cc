// Adversarial concurrency coverage for the multi-tenant serving layer:
// N threads hammer M tenants with Solve / SubmitSolve / Invalidate /
// Unregister+Register churn / Stats reads, under a deliberately tiny
// global byte budget so cross-tenant eviction runs constantly, while the
// registry-wide backend_build_hook_for_test injects slow AND failing
// builds mid-race. The test must observe: no crashes or deadlocks, every
// successful Solution bit-identical to an uncontended reference engine,
// failures only of the injected kind (plus NotFound on the churned
// tenant), byte accounting that settles back under the budget, and
// eviction counters that stay internally consistent.

#include <atomic>
#include <chrono>
#include <exception>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/tcim.h"
#include "graph/datasets.h"

namespace tcim {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 30;
constexpr int kDeadline = 10;

// Stable tenants (never unregistered) plus one churn target whose
// registration flaps throughout the run.
const char* kStableTenants[] = {"t0", "t1", "t2", "t3"};
constexpr char kChurnTenant[] = "t_churn";

GroupedGraph MakeGraph() {
  Rng rng(7);
  return datasets::SyntheticDefault(rng);
}

// The solve variants in play; every one keyed to a distinct backend so the
// tiny budget keeps evicting across tenants. evaluate=false keeps each op
// to one backend acquire.
struct Variant {
  ProblemSpec spec;
  SolveOptions options;
};

std::vector<Variant> MakeVariants() {
  std::vector<Variant> variants;
  SolveOptions base;
  base.evaluate = false;
  base.num_worlds = 25;

  Variant mc{ProblemSpec::Budget(5, kDeadline), base};
  variants.push_back(mc);

  Variant mc_wide = mc;
  mc_wide.options.num_worlds = 35;  // distinct world backend
  variants.push_back(mc_wide);

  Variant rr{ProblemSpec::Budget(5, kDeadline), base};
  rr.spec.oracle = "rr";
  rr.options.rr_sets_per_group = 250;  // distinct sketch backend
  variants.push_back(rr);

  Variant cover{ProblemSpec::Cover(0.12, kDeadline), base};
  variants.push_back(cover);  // shares mc's backend: mixes hits into races
  return variants;
}

// Cheap deterministic per-op mixer (no std::rand, no shared state).
uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return x;
}

TEST(RegistryStressTest, ConcurrentSolveSubmitInvalidateUnregister) {
  const GroupedGraph master = MakeGraph();
  const std::vector<Variant> variants = MakeVariants();

  // Uncontended reference answers, one per variant (hookless engine).
  std::vector<std::vector<NodeId>> expected;
  {
    Engine reference(master.graph, master.groups);
    for (const Variant& variant : variants) {
      const Result<Solution> solution =
          reference.Solve(variant.spec, variant.options);
      ASSERT_TRUE(solution.ok()) << solution.status().ToString();
      expected.push_back(solution->seeds);
    }
  }

  // One backend's footprint, to size the global budget for constant churn.
  size_t backend_bytes = 0;
  {
    EngineRegistry probe;
    GroupedGraph gg = master;
    ASSERT_TRUE(
        probe.Register("w", std::move(gg.graph), std::move(gg.groups)).ok());
    ASSERT_TRUE(probe.Solve("w", variants[0].spec, variants[0].options).ok());
    backend_bytes = probe.resident_bytes();
    ASSERT_GT(backend_bytes, 0u);
  }

  std::atomic<int> builds{0};
  RegistryOptions registry_options;
  registry_options.max_total_bytes = backend_bytes * 3;  // far below demand
  registry_options.num_threads = 4;
  registry_options.backend_build_hook_for_test = [&builds] {
    const int n = builds.fetch_add(1);
    if (n % 13 == 5) throw std::runtime_error("injected build failure");
    if (n % 5 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  };
  EngineRegistry registry(registry_options);

  TenantOptions floored;  // t0 keeps one backend's worth resident, always
  floored.min_resident_bytes = backend_bytes;
  for (const char* id : kStableTenants) {
    GroupedGraph gg = master;
    ASSERT_TRUE(registry
                    .Register(id, std::move(gg.graph), std::move(gg.groups),
                              std::string(id) == "t0" ? floored
                                                      : TenantOptions())
                    .ok());
  }
  {
    GroupedGraph gg = master;
    ASSERT_TRUE(
        registry.Register(kChurnTenant, std::move(gg.graph), std::move(gg.groups))
            .ok());
  }

  std::atomic<int> solutions_checked{0};
  std::atomic<int> injected_failures_seen{0};
  std::atomic<int> not_found_seen{0};
  std::atomic<int> unexpected_errors{0};

  const auto check_result = [&](const Result<Solution>& result,
                                size_t variant_index, bool churn_target) {
    if (result.ok()) {
      if (result->seeds != expected[variant_index]) {
        ++unexpected_errors;
        ADD_FAILURE() << "solution diverged from the uncontended reference";
      }
      ++solutions_checked;
    } else if (result.status().code() == StatusCode::kNotFound &&
               churn_target) {
      ++not_found_seen;  // the churn tenant was mid-flap: expected
    } else {
      ++unexpected_errors;
      ADD_FAILURE() << "unexpected status: " << result.status().ToString();
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      struct PendingSolve {
        std::future<Result<Solution>> future;
        size_t variant_index;
        bool churn_target;
      };
      std::vector<PendingSolve> pending;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t roll = Mix(static_cast<uint64_t>(t) * 1000 + i + 1);
        const size_t variant_index = roll % variants.size();
        const Variant& variant = variants[variant_index];
        const bool churn_target = (roll >> 8) % 5 == 0;
        const std::string id = churn_target
                                   ? std::string(kChurnTenant)
                                   : std::string(kStableTenants[(roll >> 16) %
                                                                4]);
        try {
          switch ((roll >> 24) % 10) {
            case 0:  // async solve; validated when drained
              pending.push_back(
                  {registry.SubmitSolve(id, variant.spec, variant.options),
                   variant_index, churn_target});
              break;
            case 1:
              (void)registry.Invalidate(id);
              break;
            case 2: {
              if (churn_target) {
                // Flap the churn tenant's registration. Either order of
                // the racing halves is legal; both Statuses are expected
                // outcomes, not errors.
                (void)registry.Unregister(kChurnTenant);
                GroupedGraph gg = master;
                const Status reregister = registry.Register(
                    kChurnTenant, std::move(gg.graph), std::move(gg.groups));
                if (!reregister.ok() &&
                    reregister.code() != StatusCode::kFailedPrecondition) {
                  ++unexpected_errors;
                }
              } else {
                check_result(registry.Solve(id, variant.spec, variant.options),
                             variant_index, churn_target);
              }
              break;
            }
            case 3: {
              const RegistryStats stats = registry.Stats();
              // Internal consistency of every snapshot, mid-race.
              size_t resident = 0;
              for (const auto& tenant : stats.tenants) {
                if (tenant.cache.entries != tenant.cache.world_entries +
                                                tenant.cache.sketch_entries ||
                    tenant.resident_bytes != tenant.cache.ensemble_bytes +
                                                 tenant.cache.sketch_bytes) {
                  ++unexpected_errors;
                  ADD_FAILURE() << "inconsistent tenant snapshot: "
                                << tenant.cache.DebugString();
                }
                resident += tenant.resident_bytes;
              }
              if (resident != stats.resident_bytes) {
                ++unexpected_errors;
                ADD_FAILURE() << "resident_bytes does not sum";
              }
              break;
            }
            default:
              check_result(registry.Solve(id, variant.spec, variant.options),
                           variant_index, churn_target);
              break;
          }
        } catch (const std::runtime_error&) {
          ++injected_failures_seen;  // the hook's failure, surfaced mid-race
        }
        // Drain a pending future every few ops so validation interleaves
        // with submission instead of piling up at the end.
        if (pending.size() >= 3) {
          try {
            check_result(pending.front().future.get(),
                         pending.front().variant_index,
                         pending.front().churn_target);
          } catch (const std::runtime_error&) {
            ++injected_failures_seen;
          }
          pending.erase(pending.begin());
        }
      }
      for (PendingSolve& solve : pending) {
        try {
          check_result(solve.future.get(), solve.variant_index,
                       solve.churn_target);
        } catch (const std::runtime_error&) {
          ++injected_failures_seen;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(unexpected_errors.load(), 0);
  EXPECT_GT(solutions_checked.load(), 0);
  // Enough builds ran that the every-13th failure injection fired, and at
  // least one failure surfaced to a caller (builder or waiter).
  EXPECT_GT(builds.load(), 13);
  EXPECT_GT(injected_failures_seen.load(), 0);

  // With the race over, one explicit budget pass must settle the registry
  // under its global budget (t0's floor is well below it).
  registry.EnforceGlobalBudget();
  const RegistryStats stats = registry.Stats();
  EXPECT_LE(stats.resident_bytes, registry_options.max_total_bytes);
  EXPECT_LE(registry.resident_bytes(), registry_options.max_total_bytes);

  // Eviction/byte accounting stayed consistent on every tenant: entry
  // splits sum, resident bytes match the per-kind byte counters, and every
  // materialization was preceded by a miss.
  for (const auto& tenant : stats.tenants) {
    EXPECT_EQ(tenant.cache.entries,
              tenant.cache.world_entries + tenant.cache.sketch_entries)
        << tenant.id;
    EXPECT_EQ(tenant.resident_bytes,
              tenant.cache.ensemble_bytes + tenant.cache.sketch_bytes)
        << tenant.id;
    EXPECT_GE(tenant.cache.misses, tenant.cache.constructions) << tenant.id;
  }
  // cross_tenant_evictions is a registry-lifetime counter, while totals
  // only cover currently-registered tenants (the churned tenant took its
  // eviction history with it), so the two are not ordered — but under a
  // budget this tight the global pass must have fired.
  EXPECT_GT(stats.cross_tenant_evictions, 0);

  // The stable tenants all survived the churn; the churn tenant is in
  // whatever state the last raced op left it — both are legal.
  for (const char* id : kStableTenants) {
    EXPECT_NE(registry.Get(id), nullptr) << id;
  }
}

}  // namespace
}  // namespace tcim
