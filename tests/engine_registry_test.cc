// EngineRegistry semantics: a multi-tenant registry must route every call
// to the right tenant with bit-identical results to a standalone Engine
// (the full problem x oracle agreement matrix), keep handles safe against
// concurrent Unregister, report precise Statuses for duplicate / unknown
// ids, aggregate per-tenant cache stats, share ONE worker pool and LRU
// clock across tenants, and enforce the global byte budget by evicting
// the least-recently-used entry ANYWHERE — while honoring each tenant's
// min_resident_bytes floor.

#include "api/engine_registry.h"

#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/tcim.h"
#include "graph/datasets.h"

namespace tcim {
namespace {

class EngineRegistryTest : public ::testing::Test {
 protected:
  EngineRegistryTest() { options_.num_worlds = 40; }

  // Deterministic: one seed -> one graph, so a tenant and a standalone
  // Engine built from the same seed run on identical networks.
  static GroupedGraph MakeGraph(uint64_t seed = 7) {
    Rng rng(seed);
    return datasets::SyntheticDefault(rng);
  }

  static constexpr int kDeadline = 20;

  SolveOptions options_;
};

TEST_F(EngineRegistryTest, RegisterGetUnregisterLifecycle) {
  EngineRegistry registry;
  EXPECT_EQ(registry.num_tenants(), 0u);
  EXPECT_EQ(registry.Get("rice"), nullptr);

  GroupedGraph a = MakeGraph(1);
  GroupedGraph b = MakeGraph(2);
  ASSERT_TRUE(registry.Register("rice", a.graph, a.groups).ok());
  ASSERT_TRUE(
      registry.Register("insta", std::move(b.graph), std::move(b.groups)).ok());
  EXPECT_EQ(registry.num_tenants(), 2u);
  EXPECT_EQ(registry.TenantIds(), (std::vector<std::string>{"insta", "rice"}));

  const std::shared_ptr<Engine> engine = registry.Get("rice");
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->graph().num_nodes(), a.graph.num_nodes());

  ASSERT_TRUE(registry.Unregister("rice").ok());
  EXPECT_EQ(registry.Get("rice"), nullptr);
  EXPECT_EQ(registry.num_tenants(), 1u);

  // An unregistered id can be registered again (a fresh tenant).
  GroupedGraph a2 = MakeGraph(1);
  EXPECT_TRUE(registry.Register("rice", a2.graph, a2.groups).ok());
}

TEST_F(EngineRegistryTest, DuplicateAndInvalidRegistrationsArePreciseStatuses) {
  EngineRegistry registry;
  GroupedGraph gg = MakeGraph();
  ASSERT_TRUE(registry.Register("t", gg.graph, gg.groups).ok());

  const Status duplicate = registry.Register("t", gg.graph, gg.groups);
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(duplicate.message().find("\"t\""), std::string::npos);
  EXPECT_EQ(registry.num_tenants(), 1u);  // the duplicate did not clobber

  const Status empty_id = registry.Register("", gg.graph, gg.groups);
  ASSERT_FALSE(empty_id.ok());
  EXPECT_EQ(empty_id.code(), StatusCode::kInvalidArgument);

  const Status arity = registry.Register(
      "mismatched", gg.graph, GroupAssignment::SingleGroup(3));
  ASSERT_FALSE(arity.ok());
  EXPECT_EQ(arity.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(arity.message().find("3"), std::string::npos);

  const Status unknown = registry.Unregister("nobody");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.code(), StatusCode::kNotFound);
}

TEST_F(EngineRegistryTest, UnknownIdFailsEveryPassThroughWithNotFound) {
  EngineRegistry registry;
  const ProblemSpec spec = ProblemSpec::Budget(5, kDeadline);

  const Result<Solution> solve = registry.Solve("ghost", spec, options_);
  ASSERT_FALSE(solve.ok());
  EXPECT_EQ(solve.status().code(), StatusCode::kNotFound);
  EXPECT_NE(solve.status().message().find("\"ghost\""), std::string::npos);

  const Result<GroupUtilityReport> audit =
      registry.EvaluateSeeds("ghost", {0, 1}, spec, options_);
  ASSERT_FALSE(audit.ok());
  EXPECT_EQ(audit.status().code(), StatusCode::kNotFound);

  // SolveBatch keeps its one-status-per-spec shape.
  const std::vector<ProblemSpec> specs = {spec, spec};
  const std::vector<Result<Solution>> batch =
      registry.SolveBatch("ghost", specs, options_);
  ASSERT_EQ(batch.size(), 2u);
  for (const auto& result : batch) {
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  }

  // SolveSweep keeps the at-least-one aligned failed pair contract.
  const Engine::SweepResult sweep =
      registry.SolveSweep("ghost", spec, {}, options_);
  ASSERT_EQ(sweep.solutions.size(), 1u);
  ASSERT_EQ(sweep.deadlines.size(), 1u);
  ASSERT_FALSE(sweep.solutions[0].ok());
  EXPECT_EQ(sweep.solutions[0].status().code(), StatusCode::kNotFound);

  const Result<Solution> submitted =
      registry.SubmitSolve("ghost", spec, options_).get();
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kNotFound);

  const Status invalidate = registry.Invalidate("ghost");
  ASSERT_FALSE(invalidate.ok());
  EXPECT_EQ(invalidate.code(), StatusCode::kNotFound);
}

// The acceptance matrix: Registry.Solve(id, spec) must be bit-identical to
// a standalone Engine over the same network, for every problem kind x
// oracle backend — the registry adds routing and pooling, never numerics.
TEST_F(EngineRegistryTest, SolveMatchesStandaloneEngineAcrossTheMatrix) {
  GroupedGraph registry_gg = MakeGraph();
  GroupedGraph direct_gg = MakeGraph();

  EngineRegistry registry;
  ASSERT_TRUE(registry
                  .Register("t", std::move(registry_gg.graph),
                            std::move(registry_gg.groups))
                  .ok());
  Engine direct(direct_gg.graph, direct_gg.groups);

  SolveOptions solve_options = options_;
  solve_options.rr_sets_per_group = 300;

  for (const std::string& oracle : {"montecarlo", "arrival", "rr"}) {
    for (ProblemSpec spec :
         {ProblemSpec::Budget(8, kDeadline),
          ProblemSpec::FairBudget(8, kDeadline),
          ProblemSpec::Cover(0.12, kDeadline),
          ProblemSpec::FairCover(0.12, kDeadline),
          ProblemSpec::Maximin(4, kDeadline)}) {
      spec.oracle = oracle;
      SCOPED_TRACE(std::string(ProblemKindName(spec.kind)) + " x " + oracle);

      const Result<Solution> via_registry =
          registry.Solve("t", spec, solve_options);
      const Result<Solution> via_engine = direct.Solve(spec, solve_options);
      ASSERT_TRUE(via_registry.ok()) << via_registry.status().ToString();
      ASSERT_TRUE(via_engine.ok()) << via_engine.status().ToString();
      EXPECT_EQ(via_registry->seeds, via_engine->seeds);
      EXPECT_DOUBLE_EQ(via_registry->objective_value,
                       via_engine->objective_value);
      ASSERT_TRUE(via_registry->evaluation.has_value());
      ASSERT_TRUE(via_engine->evaluation.has_value());
      EXPECT_EQ(via_registry->evaluation->coverage,
                via_engine->evaluation->coverage);
    }
  }

  // The audit pass-through agrees too.
  const ProblemSpec audit_spec = ProblemSpec::Budget(5, kDeadline);
  const std::vector<NodeId> seeds = {0, 5, 17};
  const Result<GroupUtilityReport> via_registry =
      registry.EvaluateSeeds("t", seeds, audit_spec, options_);
  const Result<GroupUtilityReport> via_engine =
      direct.EvaluateSeeds(seeds, audit_spec, options_);
  ASSERT_TRUE(via_registry.ok());
  ASSERT_TRUE(via_engine.ok());
  EXPECT_EQ(via_registry->coverage, via_engine->coverage);
  EXPECT_DOUBLE_EQ(via_registry->total, via_engine->total);
}

TEST_F(EngineRegistryTest, BatchAndSweepPassThroughsMatchTheEngine) {
  GroupedGraph registry_gg = MakeGraph();
  GroupedGraph direct_gg = MakeGraph();
  EngineRegistry registry;
  ASSERT_TRUE(registry
                  .Register("t", std::move(registry_gg.graph),
                            std::move(registry_gg.groups))
                  .ok());
  Engine direct(direct_gg.graph, direct_gg.groups);

  const std::vector<ProblemSpec> specs = {
      ProblemSpec::Budget(8, kDeadline), ProblemSpec::Maximin(4, kDeadline)};
  const std::vector<Result<Solution>> via_registry =
      registry.SolveBatch("t", specs, options_);
  const std::vector<Result<Solution>> via_engine =
      direct.SolveBatch(specs, options_);
  ASSERT_EQ(via_registry.size(), via_engine.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(via_registry[i].ok());
    ASSERT_TRUE(via_engine[i].ok());
    EXPECT_EQ(via_registry[i]->seeds, via_engine[i]->seeds) << "spec " << i;
  }

  const std::vector<int> deadlines = {5, 10, 20};
  const Engine::SweepResult registry_sweep =
      registry.SolveSweep("t", ProblemSpec::Budget(8, 0), deadlines, options_);
  const Engine::SweepResult engine_sweep =
      direct.SolveSweep(ProblemSpec::Budget(8, 0), deadlines, options_);
  ASSERT_EQ(registry_sweep.solutions.size(), deadlines.size());
  for (size_t i = 0; i < deadlines.size(); ++i) {
    ASSERT_TRUE(registry_sweep.solutions[i].ok());
    ASSERT_TRUE(engine_sweep.solutions[i].ok());
    EXPECT_EQ(registry_sweep.solutions[i]->seeds,
              engine_sweep.solutions[i]->seeds)
        << "tau " << deadlines[i];
  }

  const Result<Solution> submitted =
      registry.SubmitSolve("t", specs[0], options_).get();
  ASSERT_TRUE(submitted.ok());
  EXPECT_EQ(submitted->seeds, via_engine[0]->seeds);
}

TEST_F(EngineRegistryTest, HandleStaysUsableAcrossUnregister) {
  EngineRegistry registry;
  GroupedGraph gg = MakeGraph();
  ASSERT_TRUE(
      registry.Register("t", std::move(gg.graph), std::move(gg.groups)).ok());

  const std::shared_ptr<Engine> handle = registry.Get("t");
  ASSERT_NE(handle, nullptr);
  const ProblemSpec spec = ProblemSpec::Budget(5, kDeadline);
  const Result<Solution> before = handle->Solve(spec, options_);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(registry.Unregister("t").ok());
  EXPECT_EQ(registry.Get("t"), nullptr);

  // The handle pins graph, groups and engine: solving still works and the
  // cached backend is still warm.
  const Result<Solution> after = handle->Solve(spec, options_);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->seeds, before->seeds);
  EXPECT_GT(handle->cache_stats().hits, 0);
}

TEST_F(EngineRegistryTest, AsyncSolveSurvivesImmediateUnregister) {
  EngineRegistry registry;
  GroupedGraph gg = MakeGraph();
  ASSERT_TRUE(
      registry.Register("t", std::move(gg.graph), std::move(gg.groups)).ok());

  // The queued task holds the tenant handle, so tearing the registration
  // down right away must not invalidate the in-flight solve.
  std::future<Result<Solution>> pending =
      registry.SubmitSolve("t", ProblemSpec::Budget(5, kDeadline), options_);
  ASSERT_TRUE(registry.Unregister("t").ok());
  const Result<Solution> solution = pending.get();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_FALSE(solution->seeds.empty());
}

TEST_F(EngineRegistryTest, StatsAggregateAcrossTenants) {
  EngineRegistry registry;
  GroupedGraph a = MakeGraph(1);
  GroupedGraph b = MakeGraph(2);
  ASSERT_TRUE(
      registry.Register("a", std::move(a.graph), std::move(a.groups)).ok());
  ASSERT_TRUE(
      registry.Register("b", std::move(b.graph), std::move(b.groups)).ok());

  const ProblemSpec spec = ProblemSpec::Budget(5, kDeadline);
  ASSERT_TRUE(registry.Solve("a", spec, options_).ok());
  ASSERT_TRUE(registry.Solve("a", spec, options_).ok());  // warm hit
  ASSERT_TRUE(registry.Solve("b", spec, options_).ok());

  const RegistryStats stats = registry.Stats();
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].id, "a");
  EXPECT_EQ(stats.tenants[1].id, "b");

  // Tenant a: 2 backends built (selection + evaluation), then 2 warm hits;
  // tenant b: 2 backends built.
  EXPECT_EQ(stats.tenants[0].cache.misses, 2);
  EXPECT_EQ(stats.tenants[0].cache.hits, 2);
  EXPECT_EQ(stats.tenants[1].cache.misses, 2);
  EXPECT_EQ(stats.tenants[1].cache.hits, 0);
  EXPECT_GT(stats.tenants[0].resident_bytes, 0u);

  // Totals are the field-wise sum, resident bytes included.
  EXPECT_EQ(stats.totals.misses, 4);
  EXPECT_EQ(stats.totals.hits, 2);
  EXPECT_EQ(stats.totals.entries, 4u);
  EXPECT_EQ(stats.resident_bytes,
            stats.tenants[0].resident_bytes + stats.tenants[1].resident_bytes);
  EXPECT_EQ(stats.resident_bytes, registry.resident_bytes());
  EXPECT_EQ(stats.cross_tenant_evictions, 0);
  EXPECT_NE(stats.DebugString().find("tenants=2"), std::string::npos);

  // The per-tenant snapshot matches the engine's own counters.
  const std::shared_ptr<Engine> engine_a = registry.Get("a");
  ASSERT_NE(engine_a, nullptr);
  EXPECT_EQ(engine_a->cache_stats().misses, stats.tenants[0].cache.misses);
  EXPECT_EQ(engine_a->resident_bytes(), stats.tenants[0].resident_bytes);
}

TEST_F(EngineRegistryTest, TenantsShareOnePoolAndOneLruClock) {
  EngineRegistry registry;
  GroupedGraph a = MakeGraph(1);
  GroupedGraph b = MakeGraph(2);
  ASSERT_TRUE(
      registry.Register("a", std::move(a.graph), std::move(a.groups)).ok());
  ASSERT_TRUE(
      registry.Register("b", std::move(b.graph), std::move(b.groups)).ok());

  const std::shared_ptr<Engine> engine_a = registry.Get("a");
  const std::shared_ptr<Engine> engine_b = registry.Get("b");
  ASSERT_NE(engine_a, nullptr);
  ASSERT_NE(engine_b, nullptr);
  EXPECT_NE(engine_a->options().pool, nullptr);
  EXPECT_EQ(engine_a->options().pool, engine_b->options().pool);
  EXPECT_NE(engine_a->options().lru_clock, nullptr);
  EXPECT_EQ(engine_a->options().lru_clock, engine_b->options().lru_clock);
}

// ---------------------------------------------------------------------------
// Cross-tenant eviction policy. All tenants use the SAME graph seed, so
// every (montecarlo, evaluate=false) solve materializes one backend of
// exactly the same byte size W — which makes the budget arithmetic, and
// therefore the eviction order, fully deterministic.
// ---------------------------------------------------------------------------

class CrossTenantEvictionTest : public EngineRegistryTest {
 protected:
  CrossTenantEvictionTest() {
    no_eval_ = options_;
    no_eval_.evaluate = false;  // exactly ONE backend (of bytes W) per tenant
    spec_ = ProblemSpec::Budget(5, kDeadline);
  }

  // W: the resident footprint of one tenant's single backend.
  size_t MeasureBackendBytes() {
    EngineRegistry probe;
    GroupedGraph gg = MakeGraph();
    EXPECT_TRUE(
        probe.Register("w", std::move(gg.graph), std::move(gg.groups)).ok());
    EXPECT_TRUE(probe.Solve("w", spec_, no_eval_).ok());
    const size_t bytes = probe.resident_bytes();
    EXPECT_GT(bytes, 0u);
    return bytes;
  }

  static RegistryStats::Tenant TenantStats(const RegistryStats& stats,
                                           const std::string& id) {
    for (const auto& tenant : stats.tenants) {
      if (tenant.id == id) return tenant;
    }
    ADD_FAILURE() << "tenant " << id << " missing from Stats()";
    return {};
  }

  SolveOptions no_eval_;
  ProblemSpec spec_;
};

TEST_F(CrossTenantEvictionTest, GlobalBudgetEvictsTheColdestEntryAnywhere) {
  const size_t w = MeasureBackendBytes();

  RegistryOptions registry_options;
  registry_options.max_total_bytes = w * 5 / 2;  // room for two, not three
  EngineRegistry registry(registry_options);
  for (const std::string& id : {"a", "b", "c"}) {
    GroupedGraph gg = MakeGraph();
    ASSERT_TRUE(
        registry.Register(id, std::move(gg.graph), std::move(gg.groups)).ok());
  }

  ASSERT_TRUE(registry.Solve("a", spec_, no_eval_).ok());
  ASSERT_TRUE(registry.Solve("b", spec_, no_eval_).ok());
  EXPECT_EQ(registry.resident_bytes(), 2 * w);  // both fit, nothing evicted
  EXPECT_EQ(registry.Stats().cross_tenant_evictions, 0);

  // Touch a's entry so b's becomes the globally coldest ...
  ASSERT_TRUE(registry.Solve("a", spec_, no_eval_).ok());
  // ... then push the registry over budget: c's build must evict B's
  // entry — not its own, not a's.
  ASSERT_TRUE(registry.Solve("c", spec_, no_eval_).ok());

  const RegistryStats stats = registry.Stats();
  EXPECT_EQ(stats.resident_bytes, 2 * w);
  EXPECT_LE(stats.resident_bytes, registry_options.max_total_bytes);
  EXPECT_EQ(stats.cross_tenant_evictions, 1);
  EXPECT_EQ(TenantStats(stats, "a").resident_bytes, w);
  EXPECT_EQ(TenantStats(stats, "b").resident_bytes, 0u);
  EXPECT_EQ(TenantStats(stats, "b").cache.evictions, 1);
  EXPECT_EQ(TenantStats(stats, "c").resident_bytes, w);

  // The survivor is still warm; the victim rebuilds on its next solve.
  ASSERT_TRUE(registry.Solve("a", spec_, no_eval_).ok());
  EXPECT_EQ(TenantStats(registry.Stats(), "a").cache.misses, 1);
  ASSERT_TRUE(registry.Solve("b", spec_, no_eval_).ok());
  EXPECT_EQ(TenantStats(registry.Stats(), "b").cache.misses, 2);
}

TEST_F(CrossTenantEvictionTest, MinResidentBytesFloorShieldsATenant) {
  const size_t w = MeasureBackendBytes();

  RegistryOptions registry_options;
  registry_options.max_total_bytes = w * 5 / 2;
  EngineRegistry registry(registry_options);

  // b is floored at its full working set; a and c are fair game.
  TenantOptions floored;
  floored.min_resident_bytes = w;
  GroupedGraph gg_b = MakeGraph();
  ASSERT_TRUE(registry
                  .Register("b", std::move(gg_b.graph), std::move(gg_b.groups),
                            floored)
                  .ok());
  for (const std::string& id : {"a", "c"}) {
    GroupedGraph gg = MakeGraph();
    ASSERT_TRUE(
        registry.Register(id, std::move(gg.graph), std::move(gg.groups)).ok());
  }

  // b's entry becomes the globally coldest — but its floor protects it, so
  // the budget pass falls through to the next-coldest: a's entry.
  ASSERT_TRUE(registry.Solve("b", spec_, no_eval_).ok());
  ASSERT_TRUE(registry.Solve("a", spec_, no_eval_).ok());
  ASSERT_TRUE(registry.Solve("c", spec_, no_eval_).ok());

  const RegistryStats stats = registry.Stats();
  EXPECT_EQ(stats.resident_bytes, 2 * w);
  EXPECT_EQ(stats.cross_tenant_evictions, 1);
  EXPECT_EQ(TenantStats(stats, "b").resident_bytes, w);  // floored, intact
  EXPECT_EQ(TenantStats(stats, "a").resident_bytes, 0u);  // sacrificed
  EXPECT_EQ(TenantStats(stats, "c").resident_bytes, w);
}

TEST_F(CrossTenantEvictionTest, AllFloorsBlockedBudgetStaysExceededSafely) {
  const size_t w = MeasureBackendBytes();

  RegistryOptions registry_options;
  registry_options.max_total_bytes = w * 3 / 2;  // only one entry fits
  EngineRegistry registry(registry_options);

  TenantOptions floored;
  floored.min_resident_bytes = w;
  for (const std::string& id : {"a", "b"}) {
    GroupedGraph gg = MakeGraph();
    ASSERT_TRUE(registry
                    .Register(id, std::move(gg.graph), std::move(gg.groups),
                              floored)
                    .ok());
  }

  ASSERT_TRUE(registry.Solve("a", spec_, no_eval_).ok());
  ASSERT_TRUE(registry.Solve("b", spec_, no_eval_).ok());

  // Every byte is floor-protected: the registry tolerates the overshoot
  // (visible in Stats) instead of violating a floor or spinning.
  const RegistryStats stats = registry.Stats();
  EXPECT_EQ(stats.resident_bytes, 2 * w);
  EXPECT_GT(stats.resident_bytes, registry_options.max_total_bytes);
  EXPECT_EQ(stats.cross_tenant_evictions, 0);
  registry.EnforceGlobalBudget();  // idempotent, still no victim
  EXPECT_EQ(registry.Stats().cross_tenant_evictions, 0);
}

}  // namespace
}  // namespace tcim
