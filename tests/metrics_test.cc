#include "graph/metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/datasets.h"
#include "graph/generators.h"

namespace tcim {
namespace {

Graph Triangle() {
  GraphBuilder builder(3);
  builder.AddUndirectedEdge(0, 1, 0.5);
  builder.AddUndirectedEdge(1, 2, 0.5);
  builder.AddUndirectedEdge(2, 0, 0.5);
  return builder.Build();
}

Graph Star(NodeId leaves) {
  GraphBuilder builder(leaves + 1);
  for (NodeId v = 1; v <= leaves; ++v) builder.AddUndirectedEdge(0, v, 0.5);
  return builder.Build();
}

TEST(ClusteringTest, TriangleIsFullyClustered) {
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(Triangle()), 1.0);
  EXPECT_DOUBLE_EQ(AverageLocalClustering(Triangle()), 1.0);
}

TEST(ClusteringTest, StarHasNoTriangles) {
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(Star(5)), 0.0);
  EXPECT_DOUBLE_EQ(AverageLocalClustering(Star(5)), 0.0);
}

TEST(ClusteringTest, TriangleWithPendant) {
  // Triangle {0,1,2} + pendant 3 on 0: 1 triangle, triples:
  // deg(0)=3 -> 3, deg(1)=deg(2)=2 -> 1 each, deg(3)=1 -> 0; total 5.
  GraphBuilder builder(4);
  builder.AddUndirectedEdge(0, 1, 0.5);
  builder.AddUndirectedEdge(1, 2, 0.5);
  builder.AddUndirectedEdge(2, 0, 0.5);
  builder.AddUndirectedEdge(0, 3, 0.5);
  const Graph graph = builder.Build();
  EXPECT_NEAR(GlobalClusteringCoefficient(graph), 3.0 / 5.0, 1e-12);
}

TEST(ClusteringTest, EmptyGraphIsZero) {
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(GraphBuilder(4).Build()), 0.0);
  EXPECT_DOUBLE_EQ(AverageLocalClustering(GraphBuilder(0).Build()), 0.0);
}

TEST(AssortativityTest, StarIsDisassortative) {
  // Hubs link only to leaves: strongly negative degree correlation.
  EXPECT_LT(DegreeAssortativity(Star(6)), -0.9);
}

TEST(AssortativityTest, RegularGraphReportsZero) {
  // A cycle is 2-regular: degree variance 0 -> defined as 0 here.
  GraphBuilder builder(5);
  for (NodeId v = 0; v < 5; ++v) {
    builder.AddUndirectedEdge(v, (v + 1) % 5, 0.5);
  }
  EXPECT_DOUBLE_EQ(DegreeAssortativity(builder.Build()), 0.0);
}

TEST(ModularityTest, DisjointCliquesNearHalf) {
  // Two equal disjoint cliques under their natural partition: Q = 1/2.
  GraphBuilder builder(8);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) builder.AddUndirectedEdge(u, v, 0.5);
  }
  for (NodeId u = 4; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) builder.AddUndirectedEdge(u, v, 0.5);
  }
  const GroupAssignment partition({0, 0, 0, 0, 1, 1, 1, 1});
  EXPECT_NEAR(Modularity(builder.Build(), partition), 0.5, 1e-12);
}

TEST(ModularityTest, SingleCommunityIsZero) {
  const GroupAssignment partition = GroupAssignment::SingleGroup(3);
  EXPECT_NEAR(Modularity(Triangle(), partition), 0.0, 1e-12);
}

TEST(ModularityTest, PlantedCommunitiesScoreHigh) {
  Rng rng(3);
  const GroupedGraph gg = datasets::FacebookSnapSurrogate(rng);
  EXPECT_GT(Modularity(gg.graph, gg.groups), 0.5);
}

TEST(HomophilyIndexTest, AllWithinGroup) {
  const GroupAssignment groups({0, 0, 0});
  EXPECT_DOUBLE_EQ(HomophilyIndex(Triangle(), groups), 1.0);
}

TEST(HomophilyIndexTest, MixedEdges) {
  // Triangle with nodes in groups {0,0,1}: edges 0-1 same, 1-2 and 2-0
  // across -> homophily 1/3.
  const GroupAssignment groups({0, 0, 1});
  EXPECT_NEAR(HomophilyIndex(Triangle(), groups), 1.0 / 3.0, 1e-12);
}

TEST(HomophilyIndexTest, SbmDefaultsAreHomophilous) {
  Rng rng(5);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  // p_hom = 25 x p_het: nearly all edges within groups.
  EXPECT_GT(HomophilyIndex(gg.graph, gg.groups), 0.9);
}

}  // namespace
}  // namespace tcim
