// Engine semantics: a long-lived tcim::Engine must answer exactly like the
// one-shot facade (seed-for-seed), while its backend cache turns repeated /
// batched / audited specs into hits instead of fresh world sampling — with
// observable CacheStats, an Invalidate() rebuild hook, thread-safe async
// submission, and precise Status rejection of bad --threads values.

#include "api/engine.h"

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/tcim.h"
#include "graph/datasets.h"

namespace tcim {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : gg_(MakeGraph()) { options_.num_worlds = 60; }
  static GroupedGraph MakeGraph() {
    Rng rng(7);
    return datasets::SyntheticDefault(rng);
  }

  static constexpr int kDeadline = 20;

  GroupedGraph gg_;
  SolveOptions options_;
};

TEST_F(EngineTest, SolveMatchesFreeSolveSeedForSeed) {
  Engine engine(gg_.graph, gg_.groups);
  for (const ProblemSpec& spec :
       {ProblemSpec::Budget(10, kDeadline),
        ProblemSpec::FairBudget(10, kDeadline),
        ProblemSpec::Cover(0.15, kDeadline),
        ProblemSpec::FairCover(0.15, kDeadline),
        ProblemSpec::Maximin(5, kDeadline)}) {
    const Result<Solution> via_engine = engine.Solve(spec, options_);
    const Result<Solution> via_free =
        Solve(gg_.graph, gg_.groups, spec, options_);
    ASSERT_TRUE(via_engine.ok()) << via_engine.status().ToString();
    ASSERT_TRUE(via_free.ok()) << via_free.status().ToString();
    EXPECT_EQ(via_engine->seeds, via_free->seeds)
        << "problem " << ProblemKindName(spec.kind);
    EXPECT_DOUBLE_EQ(via_engine->objective_value, via_free->objective_value);
    ASSERT_TRUE(via_engine->evaluation.has_value());
    EXPECT_EQ(via_engine->evaluation->coverage,
              via_free->evaluation->coverage);
  }
}

TEST_F(EngineTest, RepeatedSolvesHitTheBackendCache) {
  Engine engine(gg_.graph, gg_.groups);
  const ProblemSpec spec = ProblemSpec::Budget(8, kDeadline);

  const Result<Solution> first = engine.Solve(spec, options_);
  ASSERT_TRUE(first.ok());
  CacheStats stats = engine.cache_stats();
  // One selection backend + one evaluation backend, both built fresh.
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.constructions, 2);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.ensemble_bytes, 0u);

  const Result<Solution> second = engine.Solve(spec, options_);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->seeds, first->seeds);
  stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 2);  // unchanged: warm solve built nothing
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.constructions, 2);

  // A different problem kind over the same backend configuration is a hit
  // too — the cache keys on the backend, not the problem.
  const Result<Solution> fair =
      engine.Solve(ProblemSpec::FairBudget(8, kDeadline), options_);
  ASSERT_TRUE(fair.ok());
  EXPECT_EQ(engine.cache_stats().misses, 2);

  // A different deadline is a hit as well: world backends are deadline-
  // parametric (the oracle cursor applies τ' at query time), so a deadline
  // sweep re-uses one sampled world set.
  const Result<Solution> other =
      engine.Solve(ProblemSpec::Budget(8, kDeadline + 5), options_);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(engine.cache_stats().misses, 2);
  EXPECT_EQ(engine.cache_stats().constructions, 2);

  // A different world count IS a different backend.
  SolveOptions more_worlds = options_;
  more_worlds.num_worlds = options_.num_worlds + 20;
  ASSERT_TRUE(engine.Solve(spec, more_worlds).ok());
  EXPECT_EQ(engine.cache_stats().misses, 4);
}

// Satellite regression: a second audit of the same spec must NOT rebuild
// its evaluation worlds.
TEST_F(EngineTest, ConsecutiveEvaluationsBuildTheBackendOnce) {
  Engine engine(gg_.graph, gg_.groups);
  const ProblemSpec spec = ProblemSpec::Budget(5, kDeadline);
  const std::vector<NodeId> seeds = {0, 5, 17};

  const Result<GroupUtilityReport> first =
      engine.EvaluateSeeds(seeds, spec, options_);
  const Result<GroupUtilityReport> second =
      engine.EvaluateSeeds(seeds, spec, options_);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_DOUBLE_EQ(first->total, second->total);

  const CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.constructions, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);

  // And the audit agrees with the free function.
  const Result<GroupUtilityReport> via_free =
      EvaluateSeeds(gg_.graph, gg_.groups, seeds, spec, options_);
  ASSERT_TRUE(via_free.ok());
  EXPECT_DOUBLE_EQ(first->total, via_free->total);
  EXPECT_DOUBLE_EQ(first->disparity, via_free->disparity);
}

TEST_F(EngineTest, SolveBatchMatchesSequentialSolveSeedForSeed) {
  const std::vector<ProblemSpec> specs = {
      ProblemSpec::Budget(10, kDeadline),
      ProblemSpec::FairBudget(10, kDeadline),
      ProblemSpec::Cover(0.15, kDeadline),
      ProblemSpec::FairCover(0.15, kDeadline),
      ProblemSpec::Maximin(5, kDeadline),
      ProblemSpec::Budget(3, kDeadline),
  };

  Engine batch_engine(gg_.graph, gg_.groups);
  const std::vector<Result<Solution>> batch =
      batch_engine.SolveBatch(specs, options_);
  ASSERT_EQ(batch.size(), specs.size());

  Engine sequential_engine(gg_.graph, gg_.groups);
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << batch[i].status().ToString();
    const Result<Solution> sequential =
        sequential_engine.Solve(specs[i], options_);
    ASSERT_TRUE(sequential.ok());
    EXPECT_EQ(batch[i]->seeds, sequential->seeds) << "spec " << i;
    EXPECT_DOUBLE_EQ(batch[i]->objective_value, sequential->objective_value);
  }

  // All six specs share one (selection, evaluation) backend pair.
  const CacheStats stats = batch_engine.cache_stats();
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.constructions, 2);
}

TEST_F(EngineTest, SolveBatchReportsPerSpecErrors) {
  Engine engine(gg_.graph, gg_.groups);
  const std::vector<ProblemSpec> specs = {
      ProblemSpec::Budget(5, kDeadline),
      ProblemSpec::Budget(-3, kDeadline),  // invalid
  };
  const std::vector<Result<Solution>> batch = engine.SolveBatch(specs, options_);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch[0].ok());
  ASSERT_FALSE(batch[1].ok());
  EXPECT_EQ(batch[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(batch[1].status().message().find("-3"), std::string::npos);
}

TEST_F(EngineTest, ConcurrentSubmitSolveFromMultipleThreads) {
  Engine engine(gg_.graph, gg_.groups);
  const ProblemSpec spec = ProblemSpec::Budget(8, kDeadline);
  const Result<Solution> reference = engine.Solve(spec, options_);
  ASSERT_TRUE(reference.ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 3;
  std::vector<std::future<Result<Solution>>> futures(kThreads * kPerThread);
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        futures[t * kPerThread + i] = engine.SubmitSolve(spec, options_);
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();

  for (auto& future : futures) {
    const Result<Solution> solution = future.get();
    ASSERT_TRUE(solution.ok()) << solution.status().ToString();
    EXPECT_EQ(solution->seeds, reference->seeds);
  }
}

TEST_F(EngineTest, InvalidateForcesARebuild) {
  Engine engine(gg_.graph, gg_.groups);
  const ProblemSpec spec = ProblemSpec::Budget(5, kDeadline);
  ASSERT_TRUE(engine.Solve(spec, options_).ok());
  EXPECT_EQ(engine.cache_stats().misses, 2);
  EXPECT_EQ(engine.cache_stats().entries, 2u);

  engine.Invalidate();
  CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.invalidations, 1);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.ensemble_bytes, 0u);

  ASSERT_TRUE(engine.Solve(spec, options_).ok());
  stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 4);  // both backends rebuilt
  EXPECT_EQ(stats.constructions, 4);
}

TEST_F(EngineTest, LruEvictsLeastRecentlyUsedBackend) {
  EngineOptions engine_options;
  engine_options.max_cached_backends = 2;  // one spec's (selection, eval) pair
  Engine engine(gg_.graph, gg_.groups, engine_options);

  ASSERT_TRUE(engine.Solve(ProblemSpec::Budget(5, 10), options_).ok());
  EXPECT_EQ(engine.cache_stats().evictions, 0);
  // A different world count needs two new backends; the first pair is
  // evicted. (A different deadline would NOT: backends are deadline-
  // parametric since the sweep refactor.)
  SolveOptions more_worlds = options_;
  more_worlds.num_worlds = options_.num_worlds + 20;
  ASSERT_TRUE(engine.Solve(ProblemSpec::Budget(5, 10), more_worlds).ok());
  EXPECT_EQ(engine.cache_stats().evictions, 2);
  EXPECT_EQ(engine.cache_stats().entries, 2u);
  // Coming back to the first world count misses again.
  ASSERT_TRUE(engine.Solve(ProblemSpec::Budget(5, 10), options_).ok());
  EXPECT_EQ(engine.cache_stats().misses, 6);
}

TEST_F(EngineTest, ByteCapFallsBackToHashedWorldsWithIdenticalResults) {
  EngineOptions engine_options;
  engine_options.max_ensemble_bytes = 0;  // nothing may materialize
  Engine engine(gg_.graph, gg_.groups, engine_options);
  const ProblemSpec spec = ProblemSpec::Budget(8, kDeadline);

  const Result<Solution> capped = engine.Solve(spec, options_);
  ASSERT_TRUE(capped.ok());
  const CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.constructions, 0);  // fell back, nothing materialized
  EXPECT_EQ(stats.ensemble_bytes, 0u);

  const Result<Solution> reference =
      Solve(gg_.graph, gg_.groups, spec, options_);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(capped->seeds, reference->seeds);
}

TEST_F(EngineTest, NegativeNumThreadsIsAPreciseInvalidArgument) {
  Engine engine(gg_.graph, gg_.groups);
  SolveOptions bad = options_;
  bad.num_threads = -2;
  const ProblemSpec spec = ProblemSpec::Budget(5, kDeadline);

  const Result<Solution> solve = engine.Solve(spec, bad);
  ASSERT_FALSE(solve.ok());
  EXPECT_EQ(solve.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(solve.status().message().find("num_threads"), std::string::npos);
  EXPECT_NE(solve.status().message().find("-2"), std::string::npos);

  const std::vector<ProblemSpec> specs = {spec};
  const std::vector<Result<Solution>> batch = engine.SolveBatch(specs, bad);
  ASSERT_EQ(batch.size(), 1u);
  ASSERT_FALSE(batch[0].ok());
  EXPECT_EQ(batch[0].status().code(), StatusCode::kInvalidArgument);

  const Result<Solution> submitted = engine.SubmitSolve(spec, bad).get();
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kInvalidArgument);

  const Result<GroupUtilityReport> audit =
      engine.EvaluateSeeds({0, 1}, spec, bad);
  ASSERT_FALSE(audit.ok());
  EXPECT_EQ(audit.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, ExplicitThreadCountsSolveIdentically) {
  Engine engine(gg_.graph, gg_.groups);
  const ProblemSpec spec = ProblemSpec::Budget(8, kDeadline);
  const Result<Solution> reference = engine.Solve(spec, options_);
  ASSERT_TRUE(reference.ok());

  for (const int threads : {1, 2}) {
    SolveOptions threaded = options_;
    threaded.num_threads = threads;
    const Result<Solution> solution = engine.Solve(spec, threaded);
    ASSERT_TRUE(solution.ok()) << solution.status().ToString();
    EXPECT_EQ(solution->seeds, reference->seeds) << "threads=" << threads;

    const std::vector<ProblemSpec> specs = {spec, ProblemSpec::Budget(3, kDeadline)};
    const std::vector<Result<Solution>> batch =
        engine.SolveBatch(specs, threaded);
    ASSERT_TRUE(batch[0].ok());
    EXPECT_EQ(batch[0]->seeds, reference->seeds);
  }
}

// Satellite: the generalized cache must report per-backend-kind entry
// counts and bytes, so a mixed worlds/sketches workload is observable.
TEST_F(EngineTest, CacheStatsSplitWorldsAndSketches) {
  Engine engine(gg_.graph, gg_.groups);
  ASSERT_TRUE(engine.Solve(ProblemSpec::Budget(8, kDeadline), options_).ok());
  CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.world_entries, 2u);
  EXPECT_EQ(stats.sketch_entries, 0u);
  EXPECT_GT(stats.ensemble_bytes, 0u);
  EXPECT_EQ(stats.sketch_bytes, 0u);

  ProblemSpec rr_spec = ProblemSpec::Budget(8, kDeadline);
  rr_spec.oracle = "rr";
  SolveOptions rr_options = options_;
  rr_options.rr_sets_per_group = 500;
  ASSERT_TRUE(engine.Solve(rr_spec, rr_options).ok());
  stats = engine.cache_stats();
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.world_entries, 2u);
  EXPECT_EQ(stats.sketch_entries, 2u);  // selection + evaluation sketches
  EXPECT_GT(stats.ensemble_bytes, 0u);
  EXPECT_GT(stats.sketch_bytes, 0u);
  EXPECT_NE(stats.DebugString().find("sketches=2"), std::string::npos);
}

TEST_F(EngineTest, WarmRrSolvesHitTheSketchCache) {
  Engine engine(gg_.graph, gg_.groups);
  ProblemSpec spec = ProblemSpec::Budget(8, kDeadline);
  spec.oracle = "rr";
  SolveOptions rr_options = options_;
  rr_options.rr_sets_per_group = 800;

  const Result<Solution> first = engine.Solve(spec, rr_options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 2);  // selection + evaluation sketches built
  EXPECT_EQ(stats.constructions, 2);

  const Result<Solution> second = engine.Solve(spec, rr_options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->seeds, first->seeds);
  stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 2);  // warm re-solve built nothing
  EXPECT_EQ(stats.hits, 2);

  // A different sketch size is a different backend.
  SolveOptions other_size = rr_options;
  other_size.rr_sets_per_group = 400;
  ASSERT_TRUE(engine.Solve(spec, other_size).ok());
  EXPECT_EQ(engine.cache_stats().misses, 4);

  // Sketches have no hash-on-the-fly fallback, so even a zero byte budget
  // must still materialize them and solve identically — the budget instead
  // evicts older resident entries (the selection sketch, once the
  // evaluation sketch lands), never the entry just built.
  EngineOptions capped_options;
  capped_options.max_ensemble_bytes = 0;
  Engine capped(gg_.graph, gg_.groups, capped_options);
  const Result<Solution> capped_solve = capped.Solve(spec, rr_options);
  ASSERT_TRUE(capped_solve.ok());
  EXPECT_EQ(capped_solve->seeds, first->seeds);
  EXPECT_EQ(capped.cache_stats().constructions, 2);
  EXPECT_GT(capped.cache_stats().sketch_bytes, 0u);
  EXPECT_EQ(capped.cache_stats().entries, 1u);
  EXPECT_EQ(capped.cache_stats().evictions, 1);
}

// Satellite regression: RR sketches used to be EXEMPT from
// max_ensemble_bytes (PR 3 left them unbounded because they cannot fall
// back). Sketch bytes now count toward the unified budget, enforced by
// evicting least-recently-used resident entries once a build lands.
TEST_F(EngineTest, SketchBytesCountTowardTheUnifiedByteBudget) {
  ProblemSpec spec = ProblemSpec::Budget(8, kDeadline);
  spec.oracle = "rr";
  SolveOptions rr_options = options_;
  rr_options.rr_sets_per_group = 400;
  rr_options.evaluate = false;  // exactly one sketch per solve

  // Size one sketch on an unbounded engine.
  Engine probe(gg_.graph, gg_.groups);
  ASSERT_TRUE(probe.Solve(spec, rr_options).ok());
  const size_t one_sketch = probe.resident_bytes();
  ASSERT_GT(one_sketch, 0u);
  EXPECT_EQ(probe.cache_stats().sketch_bytes, one_sketch);

  // Budget fits one sketch and a half: the second (differently-seeded)
  // sketch must evict the first instead of blowing past the budget.
  EngineOptions capped_options;
  capped_options.max_ensemble_bytes = one_sketch * 3 / 2;
  Engine engine(gg_.graph, gg_.groups, capped_options);

  ASSERT_TRUE(engine.Solve(spec, rr_options).ok());
  EXPECT_EQ(engine.resident_bytes(), one_sketch);
  EXPECT_EQ(engine.cache_stats().evictions, 0);

  SolveOptions other_seed = rr_options;
  other_seed.selection_seed = 0x5eedull;
  const Result<Solution> second = engine.Solve(spec, other_seed);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  const CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.sketch_entries, 1u);
  EXPECT_LE(engine.resident_bytes(), capped_options.max_ensemble_bytes);
  EXPECT_GT(stats.sketch_bytes, 0u);

  // The evicted sketch rebuilds (deterministically) on its next use.
  const Result<Solution> rebuilt = engine.Solve(spec, rr_options);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(engine.cache_stats().misses, 3);
  EXPECT_EQ(engine.cache_stats().evictions, 2);
}

// Regression: the audit path must not read solver-only spec fields. With
// adaptive sizing in play, an unvalidated budget (ValidateForEvaluation
// deliberately skips it) must not reach the IMM sizing and crash —
// evaluation sketches use the fixed default size instead.
TEST_F(EngineTest, EvaluateSeedsWithRrOracleIgnoresTheBudgetField) {
  Engine engine(gg_.graph, gg_.groups);
  ProblemSpec spec = ProblemSpec::Budget(0, kDeadline);  // solver-only field
  spec.oracle = "rr";
  SolveOptions rr_options = options_;
  rr_options.rr_sets_per_group = 0;  // adaptive — must not apply to audits

  const Result<GroupUtilityReport> report =
      engine.EvaluateSeeds({0, 5, 17}, spec, rr_options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->total, 0.0);
}

// Tentpole: a 6-deadline sweep (the fig04c shape) must materialize exactly
// ONE backend per kind — not one per deadline.
TEST_F(EngineTest, SolveSweepBuildsOneBackendPerKind) {
  const std::vector<int> deadlines = {1, 2, 5, 10, 20, kNoDeadline};

  Engine engine(gg_.graph, gg_.groups);
  SolveOptions no_eval = options_;
  no_eval.evaluate = false;

  // Monte-Carlo: one world ensemble answers all six deadlines.
  const Engine::SweepResult mc =
      engine.SolveSweep(ProblemSpec::Budget(8, /*deadline=*/0), deadlines,
                        no_eval);
  ASSERT_EQ(mc.solutions.size(), deadlines.size());
  for (size_t i = 0; i < mc.solutions.size(); ++i) {
    ASSERT_TRUE(mc.solutions[i].ok()) << mc.solutions[i].status().ToString();
  }
  EXPECT_EQ(mc.after.world_constructions - mc.before.world_constructions, 1);
  EXPECT_EQ(mc.after.sketch_constructions - mc.before.sketch_constructions, 0);

  // RR: one sketch (built at the sweep's max deadline class) answers all.
  ProblemSpec rr_spec = ProblemSpec::Budget(8, /*deadline=*/0);
  rr_spec.oracle = "rr";
  SolveOptions rr_options = no_eval;
  rr_options.rr_sets_per_group = 500;
  const Engine::SweepResult rr = engine.SolveSweep(rr_spec, deadlines,
                                                   rr_options);
  for (size_t i = 0; i < rr.solutions.size(); ++i) {
    ASSERT_TRUE(rr.solutions[i].ok()) << rr.solutions[i].status().ToString();
  }
  EXPECT_EQ(rr.after.sketch_constructions - rr.before.sketch_constructions, 1);

  // With the fresh-world evaluation on, the story is one build per
  // (kind, selection/evaluation role): two, not twelve.
  Engine eval_engine(gg_.graph, gg_.groups);
  const Engine::SweepResult with_eval =
      eval_engine.SolveSweep(ProblemSpec::Budget(8, 0), deadlines, options_);
  for (const auto& solution : with_eval.solutions) ASSERT_TRUE(solution.ok());
  EXPECT_EQ(with_eval.after.world_constructions, 2);
}

TEST_F(EngineTest, SolveSweepRejectsBadDeadlineLists) {
  Engine engine(gg_.graph, gg_.groups);
  // An empty list is rejected VISIBLY: at least one failed entry, so an
  // error scan over solutions cannot mistake it for a successful sweep.
  const Engine::SweepResult empty =
      engine.SolveSweep(ProblemSpec::Budget(5, 0), {}, options_);
  ASSERT_EQ(empty.solutions.size(), 1u);
  ASSERT_FALSE(empty.solutions[0].ok());
  EXPECT_EQ(empty.solutions[0].status().code(), StatusCode::kInvalidArgument);
  // deadlines stays zip-aligned with solutions even then.
  ASSERT_EQ(empty.deadlines.size(), 1u);
  EXPECT_EQ(empty.deadlines[0], 0);

  const Engine::SweepResult negative =
      engine.SolveSweep(ProblemSpec::Budget(5, 0), {5, -1}, options_);
  ASSERT_EQ(negative.solutions.size(), 2u);
  for (const auto& solution : negative.solutions) {
    ASSERT_FALSE(solution.ok());
    EXPECT_EQ(solution.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(solution.status().message().find("-1"), std::string::npos);
  }
  // Nothing was built for a rejected sweep.
  EXPECT_EQ(engine.cache_stats().constructions, 0);

  const Engine::SweepResult duplicate =
      engine.SolveSweep(ProblemSpec::Budget(5, 0), {5, 10, 5}, options_);
  ASSERT_FALSE(duplicate.solutions[0].ok());
  EXPECT_NE(duplicate.solutions[0].status().message().find("duplicates"),
            std::string::npos);
}

// Satellite regression (pins the PR 3 generation check): a failed build
// must drop only ITS OWN cache entry — never a healthy entry that
// replaced it after an Invalidate() — and must not poison the next
// acquire of the same key.
TEST_F(EngineTest, InvalidateDuringInFlightBuildDoesNotPoisonTheCache) {
  const ProblemSpec spec = ProblemSpec::Budget(5, kDeadline);
  SolveOptions no_eval = options_;
  no_eval.evaluate = false;  // one backend per solve keeps the hook simple

  std::promise<void> build_started;
  std::promise<void> release_build;
  std::atomic<int> builds{0};
  EngineOptions engine_options;
  engine_options.backend_build_hook_for_test = [&] {
    if (builds.fetch_add(1) == 0) {
      // First build: report in, wait for the main thread, then fail.
      build_started.set_value();
      release_build.get_future().wait();
      throw std::runtime_error("injected build failure");
    }
  };
  Engine engine(gg_.graph, gg_.groups, engine_options);

  // Thread A starts the doomed build (generation 1).
  std::thread doomed([&] {
    try {
      (void)engine.Solve(spec, no_eval);
      FAIL() << "the injected failure should have propagated";
    } catch (const std::runtime_error&) {
    }
  });
  build_started.get_future().wait();

  // While it is in flight: Invalidate() drops its entry, and a fresh solve
  // of the SAME key builds a healthy generation-2 entry.
  engine.Invalidate();
  const Result<Solution> healthy = engine.Solve(spec, no_eval);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();

  // Now let the doomed build fail. Its cleanup must see the generation
  // mismatch and leave the healthy entry alone ...
  release_build.set_value();
  doomed.join();

  // ... so the next solve is a pure cache hit, not a rebuild (and not a
  // rethrow of the stale exception).
  const CacheStats before = engine.cache_stats();
  const Result<Solution> warm = engine.Solve(spec, no_eval);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->seeds, healthy->seeds);
  const CacheStats after = engine.cache_stats();
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.constructions, before.constructions);
  EXPECT_EQ(after.hits, before.hits + 1);
}

// And without any race: a failed build followed by a retry of the same key
// must rebuild instead of serving the stored exception.
TEST_F(EngineTest, FailedBuildIsRetriedOnTheNextAcquire) {
  const ProblemSpec spec = ProblemSpec::Budget(5, kDeadline);
  SolveOptions no_eval = options_;
  no_eval.evaluate = false;

  std::atomic<int> builds{0};
  EngineOptions engine_options;
  engine_options.backend_build_hook_for_test = [&] {
    if (builds.fetch_add(1) == 0) {
      throw std::runtime_error("injected build failure");
    }
  };
  Engine engine(gg_.graph, gg_.groups, engine_options);

  EXPECT_THROW((void)engine.Solve(spec, no_eval), std::runtime_error);
  EXPECT_EQ(engine.cache_stats().entries, 0u);

  const Result<Solution> retried = engine.Solve(spec, no_eval);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(engine.cache_stats().constructions, 1);
}

// Adaptively (IMM) sized sketches key on the EXACT deadline — sizing θ
// against a deeper deadline class would undersize the sketch vs OPT at
// the τ actually queried — while fixed-size sketches share classes.
TEST_F(EngineTest, AdaptiveSketchesKeyOnTheExactDeadline) {
  Engine engine(gg_.graph, gg_.groups);
  ProblemSpec spec = ProblemSpec::Budget(5, 17);
  spec.oracle = "rr";
  SolveOptions adaptive = options_;
  adaptive.rr_sets_per_group = 0;  // IMM sizing
  adaptive.evaluate = false;

  ASSERT_TRUE(engine.Solve(spec, adaptive).ok());
  EXPECT_EQ(engine.cache_stats().misses, 1);

  // τ=17 and τ=20 share the class-32 build when fixed-size; adaptive
  // sizing must rebuild per deadline instead.
  spec.deadline = 20;
  ASSERT_TRUE(engine.Solve(spec, adaptive).ok());
  EXPECT_EQ(engine.cache_stats().misses, 2);
  ASSERT_TRUE(engine.Solve(spec, adaptive).ok());
  EXPECT_EQ(engine.cache_stats().hits, 1);

  SolveOptions fixed = adaptive;
  fixed.rr_sets_per_group = 400;
  spec.deadline = 17;
  ASSERT_TRUE(engine.Solve(spec, fixed).ok());
  spec.deadline = 20;
  ASSERT_TRUE(engine.Solve(spec, fixed).ok());
  EXPECT_EQ(engine.cache_stats().misses, 3);  // one shared class-32 build
  EXPECT_EQ(engine.cache_stats().hits, 2);
}

TEST_F(EngineTest, ArrivalBackendIsCachedToo) {
  Engine engine(gg_.graph, gg_.groups);
  ProblemSpec spec = ProblemSpec::Budget(5, 10);
  spec.oracle = "arrival";
  spec.meeting_probability = 0.7;  // geometric delays join the cache key

  const Result<Solution> first = engine.Solve(spec, options_);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(engine.cache_stats().misses, 2);

  const Result<Solution> second = engine.Solve(spec, options_);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->seeds, first->seeds);
  EXPECT_EQ(engine.cache_stats().misses, 2);
  EXPECT_EQ(engine.cache_stats().hits, 2);

  // Same backend shape but different delay distribution: new backend.
  ProblemSpec other_delays = spec;
  other_delays.meeting_probability = 0.3;
  ASSERT_TRUE(engine.Solve(other_delays, options_).ok());
  EXPECT_EQ(engine.cache_stats().misses, 4);
}

}  // namespace
}  // namespace tcim
