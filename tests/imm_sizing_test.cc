// ComputeAdaptiveSetsPerGroup (sim/imm_sizing.cc): the IMM-style sizing
// must be a pure function of its inputs (the Engine caches sketches keyed
// by those inputs, so nondeterminism would split or poison cache entries),
// must ask for more sets as ε tightens, and must stay within a sane factor
// of the conservative fixed default on a small instance.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "sim/rr_sets.h"

namespace tcim {
namespace {

GroupedGraph SmallSbm(uint64_t seed) {
  Rng rng(seed);
  SbmParams params;
  params.num_nodes = 200;
  return GenerateSbm(params, rng);
}

TEST(ImmSizingTest, DeterministicUnderAFixedSeed) {
  const GroupedGraph gg = SmallSbm(41);
  RrSketchOptions base;
  base.deadline = 10;
  base.seed = 0xabcdeull;
  const int first = ComputeAdaptiveSetsPerGroup(gg.graph, gg.groups,
                                                /*budget=*/10,
                                                /*epsilon=*/0.4,
                                                /*delta=*/0.1, base);
  const int second = ComputeAdaptiveSetsPerGroup(gg.graph, gg.groups, 10, 0.4,
                                                 0.1, base);
  EXPECT_EQ(first, second);
  EXPECT_GE(first, 1);
}

TEST(ImmSizingTest, MonotonicallyShrinksAsEpsilonLoosens) {
  const GroupedGraph gg = SmallSbm(43);
  RrSketchOptions base;
  base.deadline = 10;
  int previous = 0;
  bool first = true;
  for (const double epsilon : {0.2, 0.35, 0.5, 0.7}) {
    const int count = ComputeAdaptiveSetsPerGroup(gg.graph, gg.groups,
                                                  /*budget=*/10, epsilon,
                                                  /*delta=*/0.1, base);
    ASSERT_GE(count, 1) << "epsilon " << epsilon;
    if (!first) {
      // θ scales as 1/ε²; the per-group count must not grow as ε loosens.
      EXPECT_LE(count, previous) << "epsilon " << epsilon;
    }
    previous = count;
    first = false;
  }
}

TEST(ImmSizingTest, StaysWithinASaneFactorOfTheFixedDefault) {
  const GroupedGraph gg = SmallSbm(47);
  RrSketchOptions base;
  base.deadline = 10;
  const int fixed_default = RrSketchOptions().sets_per_group;
  const int adaptive = ComputeAdaptiveSetsPerGroup(gg.graph, gg.groups,
                                                   /*budget=*/10,
                                                   /*epsilon=*/0.5,
                                                   /*delta=*/0.2, base);
  // On a 200-node instance at a loose ε the adaptive count must neither
  // degenerate to nothing nor blow past the conservative fixed default by
  // more than a small factor (it is usually well below it).
  EXPECT_GE(adaptive, 1);
  EXPECT_LE(adaptive, 4 * fixed_default);
}

TEST(ImmSizingTest, TighterDeltaNeverAsksForFewerSets) {
  const GroupedGraph gg = SmallSbm(53);
  RrSketchOptions base;
  base.deadline = 10;
  const int confident = ComputeAdaptiveSetsPerGroup(gg.graph, gg.groups, 10,
                                                    /*epsilon=*/0.4,
                                                    /*delta=*/0.01, base);
  const int loose = ComputeAdaptiveSetsPerGroup(gg.graph, gg.groups, 10,
                                                /*epsilon=*/0.4,
                                                /*delta=*/0.3, base);
  EXPECT_GE(confident, loose);
}

}  // namespace
}  // namespace tcim
