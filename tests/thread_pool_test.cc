#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace tcim {
namespace {

TEST(ThreadPoolTest, ReportsThreadCount) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
}

TEST(ThreadPoolTest, DefaultPicksHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversWholeRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(1000, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) {
    EXPECT_EQ(t.load(), 1);  // exactly once, no overlap, no gap
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(8);
  std::atomic<int> count(0);
  pool.ParallelFor(1, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSumMatchesSerial) {
  ThreadPool pool(6);
  const size_t n = 123457;
  std::atomic<int64_t> sum(0);
  pool.ParallelFor(n, [&](size_t begin, size_t end) {
    int64_t local = 0;
    for (size_t i = begin; i < end; ++i) local += static_cast<int64_t>(i);
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), static_cast<int64_t>(n) * (n - 1) / 2);
}

TEST(ThreadPoolTest, ScheduleAndWait) {
  ThreadPool pool(3);
  std::atomic<int> done(0);
  for (int i = 0; i < 50; ++i) {
    pool.Schedule([&] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, WaitWithNothingScheduledReturns) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, RepeatedParallelForIsStable) {
  ThreadPool pool(4);
  for (int round = 0; round < 100; ++round) {
    std::atomic<int> count(0);
    pool.ParallelFor(64, [&](size_t begin, size_t end) {
      count.fetch_add(static_cast<int>(end - begin));
    });
    ASSERT_EQ(count.load(), 64);
  }
}

TEST(ThreadPoolTest, DefaultPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::Default(), &ThreadPool::Default());
}

}  // namespace
}  // namespace tcim
