#include "core/robustness.h"

#include <gtest/gtest.h>

#include "graph/datasets.h"

namespace tcim {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest() : gg_(MakeGraph()) {
    config_.num_worlds = 80;
    config_.deadline = 20;
  }
  static GroupedGraph MakeGraph() {
    Rng rng(44);
    return datasets::SyntheticDefault(rng);
  }
  GroupedGraph gg_;
  ExperimentConfig config_;
};

TEST_F(RobustnessTest, FullSurvivalMatchesPlainEvaluation) {
  const std::vector<NodeId> seeds = {1, 50, 200, 400};
  SeedDeactivationOptions options;
  options.survival_probability = 1.0;
  options.num_patterns = 3;
  const RobustnessReport report = EvaluateUnderSeedDeactivation(
      gg_.graph, gg_.groups, seeds, config_, options);
  const GroupUtilityReport plain =
      EvaluateSeedSet(gg_.graph, gg_.groups, seeds, config_);
  EXPECT_NEAR(report.mean.total, plain.total, 1e-9);
  EXPECT_NEAR(report.worst_total_fraction, plain.total_fraction, 1e-9);
}

TEST_F(RobustnessTest, ZeroSurvivalGivesNothing) {
  const std::vector<NodeId> seeds = {1, 2, 3};
  SeedDeactivationOptions options;
  options.survival_probability = 0.0;
  options.num_patterns = 3;
  const RobustnessReport report = EvaluateUnderSeedDeactivation(
      gg_.graph, gg_.groups, seeds, config_, options);
  EXPECT_NEAR(report.mean.total, 0.0, 1e-9);
  EXPECT_NEAR(report.worst_total_fraction, 0.0, 1e-9);
}

TEST_F(RobustnessTest, PartialSurvivalDegradesGracefully) {
  const std::vector<NodeId> seeds = {1, 50, 200, 400, 90, 137};
  SeedDeactivationOptions options;
  options.survival_probability = 0.5;
  options.num_patterns = 60;
  const RobustnessReport report = EvaluateUnderSeedDeactivation(
      gg_.graph, gg_.groups, seeds, config_, options);
  const GroupUtilityReport plain =
      EvaluateSeedSet(gg_.graph, gg_.groups, seeds, config_);
  // Mean under 50% survival sits strictly between 0 and the full utility.
  EXPECT_GT(report.mean.total, 0.0);
  EXPECT_LT(report.mean.total, plain.total);
  // Worst pattern cannot beat the full set (monotonicity).
  EXPECT_LE(report.worst_total_fraction, plain.total_fraction + 1e-9);
}

TEST_F(RobustnessTest, WorstStatisticsBracketMean) {
  const std::vector<NodeId> seeds = {1, 50, 200};
  SeedDeactivationOptions options;
  options.survival_probability = 0.7;
  options.num_patterns = 40;
  const RobustnessReport report = EvaluateUnderSeedDeactivation(
      gg_.graph, gg_.groups, seeds, config_, options);
  EXPECT_LE(report.worst_total_fraction, report.mean.total_fraction + 1e-9);
  EXPECT_GE(report.worst_disparity, report.mean.disparity - 1e-9);
}

TEST_F(RobustnessTest, ScaledProbabilitiesOneIsIdentity) {
  const std::vector<NodeId> seeds = {1, 2, 3};
  const GroupUtilityReport scaled = EvaluateWithScaledProbabilities(
      gg_.graph, gg_.groups, seeds, config_, 1.0);
  const GroupUtilityReport plain =
      EvaluateSeedSet(gg_.graph, gg_.groups, seeds, config_);
  EXPECT_NEAR(scaled.total, plain.total, 1e-9);
}

TEST_F(RobustnessTest, ScalingDownShrinksInfluence) {
  const std::vector<NodeId> seeds = {1, 50, 200, 400};
  const GroupUtilityReport half = EvaluateWithScaledProbabilities(
      gg_.graph, gg_.groups, seeds, config_, 0.5);
  const GroupUtilityReport full =
      EvaluateSeedSet(gg_.graph, gg_.groups, seeds, config_);
  EXPECT_LT(half.total, full.total);
  EXPECT_GE(half.total, static_cast<double>(seeds.size()) - 1e-9);
}

TEST_F(RobustnessTest, ScalingUpGrowsInfluence) {
  const std::vector<NodeId> seeds = {1, 50, 200, 400};
  const GroupUtilityReport boosted = EvaluateWithScaledProbabilities(
      gg_.graph, gg_.groups, seeds, config_, 2.0);
  const GroupUtilityReport full =
      EvaluateSeedSet(gg_.graph, gg_.groups, seeds, config_);
  EXPECT_GT(boosted.total, full.total);
}

TEST_F(RobustnessTest, ScaleZeroLeavesOnlySeeds) {
  const std::vector<NodeId> seeds = {1, 2, 3, 4};
  const GroupUtilityReport report = EvaluateWithScaledProbabilities(
      gg_.graph, gg_.groups, seeds, config_, 0.0);
  EXPECT_NEAR(report.total, 4.0, 1e-9);
}

}  // namespace
}  // namespace tcim
