// End-to-end integration tests: the full pipeline (dataset -> solver ->
// fresh-world evaluation) on every dataset surrogate, reproducing the
// paper's qualitative claims at reduced scale.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/baselines.h"
#include "core/experiment.h"
#include "graph/datasets.h"
#include "graph/spectral.h"

namespace tcim {
namespace {

TEST(IllustrativeExampleTest, StandardSolutionPicksTheHubs) {
  const GroupedGraph gg = datasets::IllustrativeGraph();
  ExperimentConfig config;
  config.deadline = kNoDeadline;
  config.num_worlds = 400;
  const ExperimentOutcome p1 =
      RunBudgetExperiment(gg.graph, gg.groups, config, /*budget=*/2);
  // P1 must pick the two central majority hubs a and b (Figure 1 row 1).
  std::vector<NodeId> seeds = p1.selection.seeds;
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(seeds, (std::vector<NodeId>{datasets::kIllustrativeA,
                                        datasets::kIllustrativeB}));
}

TEST(IllustrativeExampleTest, TightDeadlineZeroesOutMinority) {
  // Figure 1, τ = 2 row: under P1's {a, b}, group V2 gets zero utility.
  const GroupedGraph gg = datasets::IllustrativeGraph();
  ExperimentConfig config;
  config.deadline = 2;
  config.num_worlds = 400;
  const ExperimentOutcome p1 =
      RunBudgetExperiment(gg.graph, gg.groups, config, 2);
  EXPECT_NEAR(p1.report.normalized[1], 0.0, 1e-9);
  EXPECT_GT(p1.report.normalized[0], 0.2);
}

TEST(IllustrativeExampleTest, FairSolutionServesBothGroupsAtAnyDeadline) {
  const GroupedGraph gg = datasets::IllustrativeGraph();
  const ConcaveFunction log_h = ConcaveFunction::Log();
  for (const int deadline : {2, 4, kNoDeadline}) {
    ExperimentConfig config;
    config.deadline = deadline;
    config.num_worlds = 400;
    const ExperimentOutcome p4 =
        RunBudgetExperiment(gg.graph, gg.groups, config, 2, &log_h);
    const ExperimentOutcome p1 =
        RunBudgetExperiment(gg.graph, gg.groups, config, 2);
    EXPECT_GT(p4.report.normalized[1], 0.1)
        << "tau=" << deadline << ": fair solution abandoned the minority";
    EXPECT_LT(p4.report.disparity, p1.report.disparity + 1e-9)
        << "tau=" << deadline;
  }
}

TEST(IllustrativeExampleTest, DisparityGrowsAsDeadlineTightens) {
  // Figure 1 columns: P1's minority utility drops 0.16 -> 0.08 -> 0.00.
  const GroupedGraph gg = datasets::IllustrativeGraph();
  double previous_minority = -1.0;
  for (const int deadline : {2, 4, kNoDeadline}) {
    ExperimentConfig config;
    config.deadline = deadline;
    config.num_worlds = 400;
    const ExperimentOutcome p1 =
        RunBudgetExperiment(gg.graph, gg.groups, config, 2);
    EXPECT_GE(p1.report.normalized[1], previous_minority - 0.02)
        << "minority utility should not shrink as tau grows";
    previous_minority = p1.report.normalized[1];
  }
}

TEST(SyntheticPipelineTest, FullBudgetAndCoverRun) {
  Rng rng(7);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  ExperimentConfig config;
  config.num_worlds = 120;
  config.deadline = 20;

  const ConcaveFunction log_h = ConcaveFunction::Log();
  const ExperimentOutcome p1 =
      RunBudgetExperiment(gg.graph, gg.groups, config, 30);
  const ExperimentOutcome p4 =
      RunBudgetExperiment(gg.graph, gg.groups, config, 30, &log_h);
  EXPECT_LT(p4.report.disparity, p1.report.disparity);
  EXPECT_GT(p4.report.total, 0.5 * p1.report.total);

  const ExperimentOutcome p2 =
      RunCoverExperiment(gg.graph, gg.groups, config, 0.2, /*fair=*/false);
  const ExperimentOutcome p6 =
      RunCoverExperiment(gg.graph, gg.groups, config, 0.2, /*fair=*/true);
  EXPECT_TRUE(p2.selection.target_reached);
  EXPECT_TRUE(p6.selection.target_reached);
  EXPECT_GE(p6.selection.seeds.size(), p2.selection.seeds.size());
  EXPECT_LT(p6.report.disparity, p2.report.disparity + 0.05);
}

TEST(RiceSurrogatePipelineTest, FairBudgetReducesMaxPairDisparity) {
  Rng rng(9);
  const GroupedGraph gg = datasets::RiceFacebookSurrogate(rng);
  ExperimentConfig config;
  config.num_worlds = 60;  // reduced for test speed (paper: 500)
  config.deadline = 20;

  const ConcaveFunction log_h = ConcaveFunction::Log();
  const ExperimentOutcome p1 =
      RunBudgetExperiment(gg.graph, gg.groups, config, 30);
  const ExperimentOutcome p4 =
      RunBudgetExperiment(gg.graph, gg.groups, config, 30, &log_h);

  // Compare on the most-disparate pair under P1 (the paper's reporting).
  const auto [hi, lo] = MostDisparatePair(p1.report);
  EXPECT_LT(p4.report.DisparityAmong({hi, lo}),
            p1.report.DisparityAmong({hi, lo}) + 1e-9);
}

TEST(FacebookSnapPipelineTest, SpectralGroupsFeedTheSolvers) {
  Rng rng(11);
  const GroupedGraph planted = datasets::FacebookSnapSurrogate(rng);
  SpectralClusteringOptions cluster_options;
  cluster_options.num_clusters = 5;
  cluster_options.power_iterations = 60;  // reduced for test speed
  cluster_options.kmeans_restarts = 3;
  Rng cluster_rng(13);
  const GroupAssignment spectral =
      SpectralClustering(planted.graph, cluster_options, cluster_rng);
  ASSERT_EQ(spectral.num_groups(), 5);

  ExperimentConfig config;
  config.num_worlds = 40;
  config.deadline = 20;
  const ExperimentOutcome p1 =
      RunBudgetExperiment(planted.graph, spectral, config, 20);
  const ConcaveFunction log_h = ConcaveFunction::Log();
  const ExperimentOutcome p4 =
      RunBudgetExperiment(planted.graph, spectral, config, 20, &log_h);
  EXPECT_EQ(p1.report.normalized.size(), 5u);
  EXPECT_LE(p4.report.disparity, p1.report.disparity + 0.05);
}

TEST(InstagramSurrogatePipelineTest, CandidateRestrictedCoverRun) {
  // Scaled-down Instagram pipeline: 1/100 scale, restricted candidates,
  // tiny quotas — the Fig-9 protocol end to end.
  Rng rng(21);
  const GroupedGraph gg = datasets::InstagramSurrogate(rng, /*scale=*/100);
  Rng candidate_rng(22);
  const std::vector<NodeId> candidates =
      RandomSeeds(gg.graph, 500, candidate_rng);

  ExperimentConfig config;
  config.deadline = 2;
  config.num_worlds = 300;
  config.candidates = &candidates;

  const ExperimentOutcome p2 = RunCoverExperiment(
      gg.graph, gg.groups, config, /*quota=*/0.002, /*fair=*/false, 100);
  const ExperimentOutcome p6 = RunCoverExperiment(
      gg.graph, gg.groups, config, 0.002, /*fair=*/true, 100);
  EXPECT_TRUE(p2.selection.target_reached);
  EXPECT_TRUE(p6.selection.target_reached);
  // P6 serves both genders up to quota on the selection estimate.
  for (GroupId g = 0; g < 2; ++g) {
    EXPECT_GE(p6.selection.coverage[g] / gg.groups.GroupSize(g),
              0.002 - 1e-9);
  }
  // All seeds drawn from the candidate set.
  for (const NodeId s : p6.selection.seeds) {
    EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), s) !=
                candidates.end());
  }
}

TEST(LinearThresholdPipelineTest, FairnessExtendsToLtModel) {
  // The paper claims the approach "can easily be extended to the LT model".
  Rng rng(15);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  ExperimentConfig config;
  config.num_worlds = 100;
  config.deadline = 20;
  config.model = DiffusionModel::kLinearThreshold;

  const ConcaveFunction log_h = ConcaveFunction::Log();
  const ExperimentOutcome p1 =
      RunBudgetExperiment(gg.graph, gg.groups, config, 20);
  const ExperimentOutcome p4 =
      RunBudgetExperiment(gg.graph, gg.groups, config, 20, &log_h);
  EXPECT_LT(p4.report.disparity, p1.report.disparity + 1e-9);
  EXPECT_GT(p1.report.total, 0.0);
}

}  // namespace
}  // namespace tcim
