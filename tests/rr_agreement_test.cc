// Backend agreement: solving with oracle = "rr" must land within the
// sketch's ε tolerance of the Monte-Carlo backend on every problem kind it
// serves. Property-style: each problem is solved under several selection
// seeds, both backends' seed sets are then re-scored on ONE shared
// Monte-Carlo evaluation (same worlds, same seed) so the comparison
// isolates selection quality from estimator noise. Registered under
// `ctest -L api` (CMakeLists label rule).

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "api/tcim.h"

namespace tcim {
namespace {

constexpr int kDeadline = 20;

class RrAgreementTest : public ::testing::Test {
 protected:
  RrAgreementTest() : gg_(MakeGraph()), engine_(gg_.graph, gg_.groups) {
    // Selection fidelity; the shared evaluation below is what is compared.
    options_.num_worlds = 150;
    options_.rr_sets_per_group = 4000;
    options_.evaluate = false;
  }
  static GroupedGraph MakeGraph() {
    Rng rng(7);
    return datasets::SyntheticDefault(rng);
  }

  // Both backends' picks scored on one fixed Monte-Carlo world set.
  GroupVector SharedEvaluation(const std::vector<NodeId>& seeds) {
    ProblemSpec eval_spec = ProblemSpec::Budget(1, kDeadline);
    SolveOptions eval_options;
    eval_options.num_worlds = 400;
    const Result<GroupUtilityReport> report =
        engine_.EvaluateSeeds(seeds, eval_spec, eval_options);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report->coverage;
  }

  Solution MustSolve(ProblemSpec spec, const std::string& oracle,
                     uint64_t selection_seed) {
    spec.oracle = oracle;
    SolveOptions options = options_;
    options.selection_seed = selection_seed;
    Result<Solution> solution = engine_.Solve(spec, options);
    EXPECT_TRUE(solution.ok()) << solution.status().ToString();
    return std::move(solution).value();
  }

  GroupedGraph gg_;
  Engine engine_;
  SolveOptions options_;
};

// P1: total influence of the RR pick within tolerance of the MC pick.
TEST_F(RrAgreementTest, BudgetObjectivesAgree) {
  for (const uint64_t seed : {0x5e1ec7ull, 0xfeedull, 0x1234ull}) {
    const ProblemSpec spec = ProblemSpec::Budget(10, kDeadline);
    const Solution mc = MustSolve(spec, "montecarlo", seed);
    const Solution rr = MustSolve(spec, "rr", seed);
    const double mc_total = GroupVectorTotal(SharedEvaluation(mc.seeds));
    const double rr_total = GroupVectorTotal(SharedEvaluation(rr.seeds));
    ASSERT_GT(mc_total, 0.0);
    // Both maximize the same submodular objective from unbiased estimates;
    // disagreement beyond the estimator tolerance means a broken adapter.
    EXPECT_NEAR(rr_total, mc_total, 0.15 * mc_total) << "seed " << seed;
  }
}

// P4: the concave-fair objective of both picks agrees on shared worlds.
TEST_F(RrAgreementTest, FairBudgetObjectivesAgree) {
  for (const uint64_t seed : {0x5e1ec7ull, 0xfeedull, 0x1234ull}) {
    const ProblemSpec spec = ProblemSpec::FairBudget(10, kDeadline);
    const Solution mc = MustSolve(spec, "montecarlo", seed);
    const Solution rr = MustSolve(spec, "rr", seed);
    const auto objective = [&](const std::vector<NodeId>& seeds) {
      return internal::BudgetObjectiveValue(spec, gg_.groups,
                                            SharedEvaluation(seeds));
    };
    const double mc_value = objective(mc.seeds);
    const double rr_value = objective(rr.seeds);
    ASSERT_GT(mc_value, 0.0);
    EXPECT_NEAR(rr_value, mc_value, 0.15 * mc_value) << "seed " << seed;
  }
}

// P6: the RR pick reaches (close to) the per-group quota on shared worlds
// whenever the MC pick does, without exploding the seed count.
TEST_F(RrAgreementTest, FairCoverQuotasAgree) {
  const double quota = 0.12;
  for (const uint64_t seed : {0x5e1ec7ull, 0xfeedull, 0x1234ull}) {
    const ProblemSpec spec = ProblemSpec::FairCover(quota, kDeadline);
    const Solution mc = MustSolve(spec, "montecarlo", seed);
    const Solution rr = MustSolve(spec, "rr", seed);
    EXPECT_TRUE(rr.target_reached) << "seed " << seed;

    const auto min_normalized = [&](const std::vector<NodeId>& seeds) {
      const GroupVector coverage = SharedEvaluation(seeds);
      double worst = 1.0;
      for (GroupId g = 0; g < gg_.groups.num_groups(); ++g) {
        worst = std::min(worst, coverage[g] / gg_.groups.GroupSize(g));
      }
      return worst;
    };
    const double mc_worst = min_normalized(mc.seeds);
    const double rr_worst = min_normalized(rr.seeds);
    // Same tolerance band for both: cover solutions overfit their own
    // estimator, so compare the two re-scored minima against each other.
    EXPECT_NEAR(rr_worst, mc_worst, 0.05) << "seed " << seed;
    // And the sketch must not need wildly more seeds to get there.
    EXPECT_LE(rr.seeds.size(), 2 * mc.seeds.size() + 5) << "seed " << seed;
  }
}

// The rr_select fast path optimizes the same estimated objective as the
// generic greedy adapter on the same sketch.
TEST_F(RrAgreementTest, RrSelectFastPathAgreesWithGreedyAdapter) {
  ProblemSpec spec = ProblemSpec::Budget(10, kDeadline);
  spec.oracle = "rr";
  const Result<Solution> greedy = engine_.Solve(spec, options_);
  spec.solver = "rr_select";
  const Result<Solution> fast = engine_.Solve(spec, options_);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  // Same sketch, same objective; only tie-breaking may differ.
  EXPECT_NEAR(fast->objective_value, greedy->objective_value,
              1e-6 * std::max(1.0, greedy->objective_value));
}

// Satellite (PR 3 parity gap): rr_select honors a candidate restriction
// and matches the generic greedy adapter under it — same sketch, same
// objective, same restricted argmax.
TEST_F(RrAgreementTest, RrSelectHonorsCandidateRestriction) {
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < gg_.graph.num_nodes(); v += 4) {
    candidates.push_back(v);
  }
  SolveOptions restricted = options_;
  restricted.candidates = &candidates;

  ProblemSpec spec = ProblemSpec::Budget(10, kDeadline);
  spec.oracle = "rr";
  const Result<Solution> greedy = engine_.Solve(spec, restricted);
  spec.solver = "rr_select";
  const Result<Solution> fast = engine_.Solve(spec, restricted);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  for (const NodeId s : fast->seeds) {
    EXPECT_EQ(s % 4, 0) << "seed " << s << " is not a candidate";
  }
  EXPECT_NEAR(fast->objective_value, greedy->objective_value,
              1e-6 * std::max(1.0, greedy->objective_value));

  // The fair-cover path is restricted too.
  ProblemSpec cover_spec = ProblemSpec::FairCover(0.1, kDeadline);
  cover_spec.oracle = "rr";
  cover_spec.solver = "rr_select";
  const Result<Solution> cover = engine_.Solve(cover_spec, restricted);
  ASSERT_TRUE(cover.ok()) << cover.status().ToString();
  for (const NodeId s : cover->seeds) {
    EXPECT_EQ(s % 4, 0) << "seed " << s << " is not a candidate";
  }
}

// Non-default group policies remain a precise InvalidArgument on the fast
// path (the generic greedy adapter handles them).
TEST_F(RrAgreementTest, RrSelectRejectsNonDefaultGroupPoliciesPrecisely) {
  ProblemSpec spec = ProblemSpec::FairBudget(10, kDeadline);
  spec.oracle = "rr";
  spec.solver = "rr_select";
  spec.group_policy.weights = {2.0, 1.0};
  const Result<Solution> solution = engine_.Solve(spec, options_);
  ASSERT_FALSE(solution.ok());
  EXPECT_EQ(solution.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(solution.status().message().find("group policy"),
            std::string::npos);
  EXPECT_NE(solution.status().message().find("greedy"), std::string::npos);
}

// rr_select without the rr oracle is a precise InvalidArgument, not UB.
TEST_F(RrAgreementTest, RrSelectRequiresTheRrOracle) {
  ProblemSpec spec = ProblemSpec::Budget(10, kDeadline);
  spec.solver = "rr_select";  // oracle left at "montecarlo"
  const Result<Solution> solution = engine_.Solve(spec, options_);
  ASSERT_FALSE(solution.ok());
  EXPECT_EQ(solution.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(solution.status().message().find("rr"), std::string::npos);
}

}  // namespace
}  // namespace tcim
