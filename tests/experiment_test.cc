#include "core/experiment.h"

#include <gtest/gtest.h>

#include "graph/datasets.h"

namespace tcim {
namespace {

class ExperimentHarnessTest : public ::testing::Test {
 protected:
  ExperimentHarnessTest() : gg_(MakeGraph()) {
    config_.num_worlds = 80;
    config_.deadline = 20;
  }
  static GroupedGraph MakeGraph() {
    Rng rng(55);
    return datasets::SyntheticDefault(rng);
  }
  GroupedGraph gg_;
  ExperimentConfig config_;
};

TEST_F(ExperimentHarnessTest, OracleOptionsDifferBetweenPhases) {
  const OracleOptions select = SelectionOracleOptions(config_);
  const OracleOptions eval = EvaluationOracleOptions(config_);
  EXPECT_NE(select.seed, eval.seed);
  EXPECT_EQ(select.deadline, eval.deadline);
  EXPECT_EQ(select.num_worlds, eval.num_worlds);
}

TEST_F(ExperimentHarnessTest, EvalWorldsOverrideHonored) {
  config_.eval_num_worlds = 500;
  EXPECT_EQ(EvaluationOracleOptions(config_).num_worlds, 500);
}

TEST_F(ExperimentHarnessTest, BudgetExperimentProducesSeedsAndReport) {
  const ExperimentOutcome outcome =
      RunBudgetExperiment(gg_.graph, gg_.groups, config_, /*budget=*/10);
  EXPECT_EQ(outcome.selection.seeds.size(), 10u);
  EXPECT_EQ(outcome.report.normalized.size(), 2u);
  EXPECT_GT(outcome.report.total, 0.0);
}

TEST_F(ExperimentHarnessTest, FairBudgetLowersDisparity) {
  const ExperimentOutcome p1 =
      RunBudgetExperiment(gg_.graph, gg_.groups, config_, 20);
  const ConcaveFunction log_h = ConcaveFunction::Log();
  const ExperimentOutcome p4 =
      RunBudgetExperiment(gg_.graph, gg_.groups, config_, 20, &log_h);
  EXPECT_LT(p4.report.disparity, p1.report.disparity + 1e-9);
}

TEST_F(ExperimentHarnessTest, EvaluationUsesFreshWorlds) {
  // Selection-time estimate and fresh-world evaluation should be close but
  // generally not identical — different world seeds.
  const ExperimentOutcome outcome =
      RunBudgetExperiment(gg_.graph, gg_.groups, config_, 10);
  const double selection_total = GroupVectorTotal(outcome.selection.coverage);
  EXPECT_NEAR(outcome.report.total, selection_total,
              0.35 * selection_total + 3.0);
}

TEST_F(ExperimentHarnessTest, CoverExperimentReachesQuota) {
  const ExperimentOutcome outcome = RunCoverExperiment(
      gg_.graph, gg_.groups, config_, /*quota=*/0.15, /*fair=*/true);
  EXPECT_TRUE(outcome.selection.target_reached);
  // Fresh-world evaluation should also be near the quota per group.
  for (const double fraction : outcome.report.normalized) {
    EXPECT_GE(fraction, 0.15 - 0.05);
  }
}

TEST_F(ExperimentHarnessTest, DeterministicGivenConfig) {
  const ExperimentOutcome a =
      RunBudgetExperiment(gg_.graph, gg_.groups, config_, 5);
  const ExperimentOutcome b =
      RunBudgetExperiment(gg_.graph, gg_.groups, config_, 5);
  EXPECT_EQ(a.selection.seeds, b.selection.seeds);
  EXPECT_DOUBLE_EQ(a.report.total, b.report.total);
}

TEST_F(ExperimentHarnessTest, EvaluateSeedSetStandalone) {
  const std::vector<NodeId> seeds = {1, 2, 3};
  const GroupUtilityReport report =
      EvaluateSeedSet(gg_.graph, gg_.groups, seeds, config_);
  EXPECT_GE(report.total, 3.0 - 1e-9);  // at least the seeds themselves
}

TEST_F(ExperimentHarnessTest, CandidateRestrictionFlowsThrough) {
  const std::vector<NodeId> candidates = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  config_.candidates = &candidates;
  const ExperimentOutcome outcome =
      RunBudgetExperiment(gg_.graph, gg_.groups, config_, 4);
  for (const NodeId s : outcome.selection.seeds) {
    EXPECT_LT(s, 10);
  }
}

}  // namespace
}  // namespace tcim
