#include "graph/centrality.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

namespace tcim {
namespace {

// Star with center 0 and leaves 1..4 (undirected).
Graph StarGraph() {
  GraphBuilder builder(5);
  for (NodeId v = 1; v < 5; ++v) builder.AddUndirectedEdge(0, v, 0.5);
  return builder.Build();
}

TEST(DegreeCentralityTest, StarCenterDominates) {
  const std::vector<double> scores = DegreeCentrality(StarGraph());
  EXPECT_DOUBLE_EQ(scores[0], 4.0);
  for (NodeId v = 1; v < 5; ++v) EXPECT_DOUBLE_EQ(scores[v], 1.0);
}

TEST(PageRankTest, SumsToOne) {
  const std::vector<double> rank = PageRank(StarGraph());
  const double total = std::accumulate(rank.begin(), rank.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PageRankTest, StarCenterHasHighestRank) {
  const std::vector<double> rank = PageRank(StarGraph());
  for (NodeId v = 1; v < 5; ++v) EXPECT_GT(rank[0], rank[v]);
}

TEST(PageRankTest, SymmetricCycleIsUniform) {
  GraphBuilder builder(4);
  for (NodeId v = 0; v < 4; ++v) {
    builder.AddEdge(v, (v + 1) % 4, 0.5);
  }
  const std::vector<double> rank = PageRank(builder.Build());
  for (const double r : rank) EXPECT_NEAR(r, 0.25, 1e-9);
}

TEST(PageRankTest, DanglingNodesHandled) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 0.5).AddEdge(0, 2, 0.5);  // 1, 2 are sinks
  const std::vector<double> rank = PageRank(builder.Build());
  const double total = std::accumulate(rank.begin(), rank.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(rank[1], rank[0]);  // sinks absorb the source's mass
}

TEST(PageRankTest, EmptyGraph) {
  EXPECT_TRUE(PageRank(GraphBuilder(0).Build()).empty());
}

TEST(SampledHarmonicClosenessTest, StarCenterWins) {
  // Exact harmonic in-closeness: center 4.0, each leaf 2.5; with enough
  // pivot samples the estimate must preserve that ordering.
  Rng rng(3);
  const std::vector<double> scores =
      SampledHarmonicCloseness(StarGraph(), 400, rng);
  for (NodeId v = 1; v < 5; ++v) EXPECT_GT(scores[0], scores[v]);
  EXPECT_NEAR(scores[0], 4.0, 0.8);
  EXPECT_NEAR(scores[1], 2.5, 0.8);
}

TEST(SampledHarmonicClosenessTest, DisconnectedNodeScoresZero) {
  GraphBuilder builder(3);
  builder.AddUndirectedEdge(0, 1, 0.5);  // node 2 isolated
  Rng rng(7);
  const std::vector<double> scores =
      SampledHarmonicCloseness(builder.Build(), 3, rng);
  EXPECT_DOUBLE_EQ(scores[2], 0.0);
}

TEST(TopKByScoreTest, PicksLargest) {
  const std::vector<double> scores = {0.1, 0.9, 0.5, 0.7};
  EXPECT_EQ(TopKByScore(scores, 2), (std::vector<NodeId>{1, 3}));
}

TEST(TopKByScoreTest, TieBreaksBySmallerId) {
  const std::vector<double> scores = {0.5, 0.5, 0.5};
  EXPECT_EQ(TopKByScore(scores, 2), (std::vector<NodeId>{0, 1}));
}

TEST(TopKByScoreTest, KLargerThanNReturnsAll) {
  const std::vector<double> scores = {0.3, 0.1};
  EXPECT_EQ(TopKByScore(scores, 10).size(), 2u);
}

TEST(TopKByScoreTest, ZeroK) {
  EXPECT_TRUE(TopKByScore({1.0, 2.0}, 0).empty());
}

}  // namespace
}  // namespace tcim
