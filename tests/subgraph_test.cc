#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace tcim {
namespace {

// Path 0-1-2 plus isolated pair 3-4 (undirected).
Graph TwoComponents() {
  GraphBuilder builder(5);
  builder.AddUndirectedEdge(0, 1, 0.5);
  builder.AddUndirectedEdge(1, 2, 0.25);
  builder.AddUndirectedEdge(3, 4, 0.75);
  return builder.Build();
}

TEST(InducedSubgraphTest, KeepsSelectedNodesAndInternalEdges) {
  const Graph graph = TwoComponents();
  const SubgraphResult sub = InducedSubgraph(graph, {0, 1, 3});
  EXPECT_EQ(sub.graph.num_nodes(), 3);
  // Only the 0-1 undirected edge survives (3's partner 4 was dropped).
  EXPECT_EQ(sub.graph.num_edges(), 2);
  EXPECT_EQ(sub.new_to_old, (std::vector<NodeId>{0, 1, 3}));
  EXPECT_EQ(sub.old_to_new[3], 2);
  EXPECT_EQ(sub.old_to_new[4], -1);
}

TEST(InducedSubgraphTest, PreservesEdgeProbabilities) {
  const Graph graph = TwoComponents();
  const SubgraphResult sub = InducedSubgraph(graph, {1, 2});
  ASSERT_EQ(sub.graph.num_edges(), 2);
  EXPECT_NEAR(sub.graph.EdgeProbability(0), 0.25, 1e-6);
}

TEST(InducedSubgraphTest, DuplicatesIgnored) {
  const Graph graph = TwoComponents();
  const SubgraphResult sub = InducedSubgraph(graph, {2, 2, 1, 1});
  EXPECT_EQ(sub.graph.num_nodes(), 2);
}

TEST(InducedSubgraphTest, EmptySelection) {
  const Graph graph = TwoComponents();
  const SubgraphResult sub = InducedSubgraph(graph, {});
  EXPECT_EQ(sub.graph.num_nodes(), 0);
  EXPECT_EQ(sub.graph.num_edges(), 0);
}

TEST(LargestComponentTest, PicksTheBiggerComponent) {
  const Graph graph = TwoComponents();
  const SubgraphResult sub = LargestComponent(graph);
  EXPECT_EQ(sub.graph.num_nodes(), 3);  // the path 0-1-2
  EXPECT_EQ(sub.new_to_old, (std::vector<NodeId>{0, 1, 2}));
}

TEST(LargestComponentTest, ConnectedGraphIsUnchanged) {
  Rng rng(3);
  const Graph graph = GenerateBarabasiAlbert(100, 2, 0.1, rng);
  const SubgraphResult sub = LargestComponent(graph);
  EXPECT_EQ(sub.graph.num_nodes(), 100);
  EXPECT_EQ(sub.graph.num_edges(), graph.num_edges());
}

TEST(RestrictGroupsTest, CarriesGroupsAcross) {
  const Graph graph = TwoComponents();
  const GroupAssignment groups({0, 0, 1, 1, 0});
  const SubgraphResult sub = InducedSubgraph(graph, {1, 2, 3});
  const GroupAssignment restricted = RestrictGroups(groups, sub);
  EXPECT_EQ(restricted.num_nodes(), 3);
  EXPECT_EQ(restricted.GroupOf(0), groups.GroupOf(1));
  EXPECT_EQ(restricted.GroupOf(1), groups.GroupOf(2));
}

TEST(RestrictGroupsTest, CompactsDroppedGroups) {
  const Graph graph = TwoComponents();
  // Group 0 only on dropped nodes -> remaining groups renumber densely.
  const GroupAssignment groups({0, 1, 1, 2, 2});
  const SubgraphResult sub = InducedSubgraph(graph, {1, 2, 3, 4});
  const GroupAssignment restricted = RestrictGroups(groups, sub);
  EXPECT_EQ(restricted.num_groups(), 2);
}

TEST(RestrictNodesTest, MapsAndDrops) {
  const Graph graph = TwoComponents();
  const SubgraphResult sub = InducedSubgraph(graph, {0, 2, 4});
  const std::vector<NodeId> mapped = RestrictNodes({0, 1, 4}, sub);
  EXPECT_EQ(mapped, (std::vector<NodeId>{0, 2}));  // node 1 dropped
}

TEST(SubgraphRoundTripTest, LargestComponentOfSbmKeepsStructure) {
  Rng rng(9);
  SbmParams params;
  params.num_nodes = 300;
  const GroupedGraph gg = GenerateSbm(params, rng);
  const SubgraphResult sub = LargestComponent(gg.graph);
  EXPECT_GT(sub.graph.num_nodes(), 200);  // giant component
  const GroupAssignment groups = RestrictGroups(gg.groups, sub);
  EXPECT_EQ(groups.num_nodes(), sub.graph.num_nodes());
  // Degrees of kept nodes can only shrink (edges to dropped nodes vanish).
  for (NodeId new_id = 0; new_id < sub.graph.num_nodes(); ++new_id) {
    EXPECT_LE(sub.graph.OutDegree(new_id),
              gg.graph.OutDegree(sub.new_to_old[new_id]));
  }
}

TEST(InducedSubgraphDeathTest, OutOfRangeNodeAborts) {
  const Graph graph = TwoComponents();
  EXPECT_DEATH(InducedSubgraph(graph, {99}), "out of range");
}

}  // namespace
}  // namespace tcim
