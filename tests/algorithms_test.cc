#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace tcim {
namespace {

// Path 0 -> 1 -> 2 -> 3 plus an isolated node 4.
Graph PathGraph() {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1, 1.0).AddEdge(1, 2, 1.0).AddEdge(2, 3, 1.0);
  return builder.Build();
}

TEST(BfsDistancesTest, DistancesAlongPath) {
  const Graph graph = PathGraph();
  const std::vector<int> dist = BfsDistances(graph, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], 3);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(BfsDistancesTest, RespectsDirection) {
  const Graph graph = PathGraph();
  const std::vector<int> dist = BfsDistances(graph, 3);
  EXPECT_EQ(dist[3], 0);
  EXPECT_EQ(dist[0], kUnreachable);  // edges point forward only
}

TEST(BfsDistancesTest, MaxDepthTruncates) {
  const Graph graph = PathGraph();
  const std::vector<int> dist = BfsDistances(graph, 0, /*max_depth=*/2);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(BfsDistancesTest, MultiSourceTakesNearest) {
  const Graph graph = PathGraph();
  const std::vector<int> dist = BfsDistances(graph, {0, 3});
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[3], 0);
  EXPECT_EQ(dist[2], 2);
}

TEST(BfsDistancesTest, DuplicateSourcesAreFine) {
  const Graph graph = PathGraph();
  const std::vector<int> dist = BfsDistances(graph, {0, 0, 0});
  EXPECT_EQ(dist[1], 1);
}

TEST(WeaklyConnectedComponentsTest, CountsComponents) {
  const Graph graph = PathGraph();  // path of 4 + isolated node
  int num_components = 0;
  const std::vector<int> component =
      WeaklyConnectedComponents(graph, &num_components);
  EXPECT_EQ(num_components, 2);
  EXPECT_EQ(component[0], component[3]);
  EXPECT_NE(component[0], component[4]);
}

TEST(WeaklyConnectedComponentsTest, DirectionIgnored) {
  GraphBuilder builder(3);
  builder.AddEdge(1, 0, 1.0).AddEdge(1, 2, 1.0);  // star pointing out of 1
  int num_components = 0;
  WeaklyConnectedComponents(builder.Build(), &num_components);
  EXPECT_EQ(num_components, 1);
}

TEST(CoreNumbersTest, CliqueHasUniformCore) {
  GraphBuilder builder(4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) builder.AddUndirectedEdge(u, v, 1.0);
  }
  const std::vector<int> core = CoreNumbers(builder.Build());
  for (const int c : core) EXPECT_EQ(c, 3);
}

TEST(CoreNumbersTest, PendantVertexHasCoreOne) {
  // Triangle {0,1,2} plus pendant 3 attached to 0.
  GraphBuilder builder(4);
  builder.AddUndirectedEdge(0, 1, 1.0);
  builder.AddUndirectedEdge(1, 2, 1.0);
  builder.AddUndirectedEdge(2, 0, 1.0);
  builder.AddUndirectedEdge(0, 3, 1.0);
  const std::vector<int> core = CoreNumbers(builder.Build());
  EXPECT_EQ(core[0], 2);
  EXPECT_EQ(core[1], 2);
  EXPECT_EQ(core[2], 2);
  EXPECT_EQ(core[3], 1);
}

TEST(ComputeOutDegreeStatsTest, PathStats) {
  const DegreeStats stats = ComputeOutDegreeStats(PathGraph());
  EXPECT_EQ(stats.min, 0);
  EXPECT_EQ(stats.max, 1);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0 / 5.0);
}

TEST(ReachableCountTest, CountsIncludingSource) {
  const Graph graph = PathGraph();
  EXPECT_EQ(ReachableCount(graph, 0), 4);
  EXPECT_EQ(ReachableCount(graph, 0, 1), 2);
  EXPECT_EQ(ReachableCount(graph, 4), 1);
}

TEST(AlgorithmsIntegrationTest, SbmIsMostlyOneComponent) {
  Rng rng(5);
  SbmParams params;  // defaults give a mostly connected giant component
  const GroupedGraph gg = GenerateSbm(params, rng);
  int num_components = 0;
  const std::vector<int> component =
      WeaklyConnectedComponents(gg.graph, &num_components);
  std::vector<int> sizes(num_components, 0);
  for (const int c : component) sizes[c]++;
  EXPECT_GT(*std::max_element(sizes.begin(), sizes.end()), 400);
}

}  // namespace
}  // namespace tcim
