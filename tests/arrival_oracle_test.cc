#include "sim/arrival_oracle.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/budget.h"
#include "graph/generators.h"
#include "sim/influence_oracle.h"

namespace tcim {
namespace {

// Path 0 -> 1 -> 2 -> 3 with sure edges; groups {0,1} and {2,3}.
struct PathFixture {
  PathFixture() {
    GraphBuilder builder(4);
    builder.AddEdge(0, 1, 1.0).AddEdge(1, 2, 1.0).AddEdge(2, 3, 1.0);
    graph = builder.Build();
    groups = GroupAssignment({0, 0, 1, 1});
  }
  Graph graph;
  GroupAssignment groups;
  ArrivalOracleOptions options;
};

TEST(ArrivalOracleTest, StepWeightMatchesInfluenceOracle) {
  // With w = Step(τ) and unit delays, the two oracles estimate the same
  // quantity on the same worlds — they must agree exactly.
  Rng rng(3);
  SbmParams params;
  params.num_nodes = 120;
  params.activation_probability = 0.2;
  const GroupedGraph gg = GenerateSbm(params, rng);

  ArrivalOracleOptions arrival_options;
  arrival_options.num_worlds = 40;
  arrival_options.seed = 99;
  ArrivalOracle arrival(&gg.graph, &gg.groups, TemporalWeight::Step(4),
                        DelaySampler::Unit(), arrival_options);

  OracleOptions step_options;
  step_options.num_worlds = 40;
  step_options.deadline = 4;
  step_options.seed = 99;
  InfluenceOracle step(&gg.graph, &gg.groups, step_options);

  for (const NodeId seed : {7, 42, 100}) {
    const GroupVector a = arrival.AddSeed(seed);
    const GroupVector b = step.AddSeed(seed);
    ASSERT_EQ(a.size(), b.size());
    for (size_t g = 0; g < a.size(); ++g) {
      EXPECT_NEAR(a[g], b[g], 1e-9) << "seed " << seed << " group " << g;
    }
  }
}

TEST(ArrivalOracleTest, SurePathArrivalTimes) {
  PathFixture fx;
  fx.options.num_worlds = 5;
  ArrivalOracle oracle(&fx.graph, &fx.groups, TemporalWeight::Step(10),
                       DelaySampler::Unit(), fx.options);
  oracle.AddSeed(0);
  for (uint32_t world = 0; world < 5; ++world) {
    EXPECT_EQ(oracle.ArrivalTime(world, 0), 0);
    EXPECT_EQ(oracle.ArrivalTime(world, 1), 1);
    EXPECT_EQ(oracle.ArrivalTime(world, 2), 2);
    EXPECT_EQ(oracle.ArrivalTime(world, 3), 3);
  }
}

TEST(ArrivalOracleTest, HorizonTruncatesReach) {
  PathFixture fx;
  fx.options.num_worlds = 3;
  ArrivalOracle oracle(&fx.graph, &fx.groups, TemporalWeight::Step(2),
                       DelaySampler::Unit(), fx.options);
  oracle.AddSeed(0);
  for (uint32_t world = 0; world < 3; ++world) {
    EXPECT_EQ(oracle.ArrivalTime(world, 2), 2);
    EXPECT_EQ(oracle.ArrivalTime(world, 3), -1);  // beyond horizon
  }
}

TEST(ArrivalOracleTest, DiscountedUtilityOnSurePath) {
  PathFixture fx;
  fx.options.num_worlds = 8;
  const double gamma = 0.5;
  ArrivalOracle oracle(&fx.graph, &fx.groups,
                       TemporalWeight::ExponentialDiscount(gamma, 10),
                       DelaySampler::Unit(), fx.options);
  const GroupVector gain = oracle.AddSeed(0);
  // Arrivals 0,1,2,3 -> weights 1, 0.5, 0.25, 0.125 split by group.
  EXPECT_NEAR(gain[0], 1.0 + 0.5, 1e-9);
  EXPECT_NEAR(gain[1], 0.25 + 0.125, 1e-9);
}

TEST(ArrivalOracleTest, SecondSeedImprovesArrivalTimes) {
  PathFixture fx;
  fx.options.num_worlds = 4;
  const double gamma = 0.5;
  ArrivalOracle oracle(&fx.graph, &fx.groups,
                       TemporalWeight::ExponentialDiscount(gamma, 10),
                       DelaySampler::Unit(), fx.options);
  oracle.AddSeed(0);
  // Seeding node 2 moves its arrival 2 -> 0 and node 3's 3 -> 1: the gain
  // is exactly the weight improvement, not the full weight.
  const GroupVector gain = oracle.AddSeed(2);
  EXPECT_NEAR(gain[0], 0.0, 1e-9);
  EXPECT_NEAR(gain[1], (1.0 - 0.25) + (0.5 - 0.125), 1e-9);
  EXPECT_EQ(oracle.ArrivalTime(0, 2), 0);
  EXPECT_EQ(oracle.ArrivalTime(0, 3), 1);
}

TEST(ArrivalOracleTest, MarginalGainMatchesAddSeed) {
  Rng rng(5);
  SbmParams params;
  params.num_nodes = 100;
  params.activation_probability = 0.15;
  const GroupedGraph gg = GenerateSbm(params, rng);
  ArrivalOracleOptions options;
  options.num_worlds = 30;
  ArrivalOracle oracle(&gg.graph, &gg.groups,
                       TemporalWeight::ExponentialDiscount(0.8, 15),
                       DelaySampler::Geometric(0.5, 7), options);
  for (const NodeId seed : {3, 50, 77}) {
    const GroupVector expected = oracle.MarginalGain(seed);
    const GroupVector realized = oracle.AddSeed(seed);
    for (size_t g = 0; g < expected.size(); ++g) {
      EXPECT_NEAR(expected[g], realized[g], 1e-9);
    }
  }
}

TEST(ArrivalOracleTest, ResetRestoresInitialState) {
  PathFixture fx;
  fx.options.num_worlds = 4;
  ArrivalOracle oracle(&fx.graph, &fx.groups, TemporalWeight::Step(5),
                       DelaySampler::Unit(), fx.options);
  oracle.AddSeed(0);
  oracle.Reset();
  EXPECT_TRUE(oracle.seeds().empty());
  EXPECT_NEAR(oracle.total_coverage(), 0.0, 1e-12);
  EXPECT_EQ(oracle.ArrivalTime(0, 0), -1);
  const GroupVector gain = oracle.AddSeed(0);
  EXPECT_NEAR(GroupVectorTotal(gain), 4.0, 1e-9);
}

TEST(ArrivalOracleTest, GeometricDelaysSlowTheCascade) {
  // With IC-M meeting delays, far nodes arrive later, so a tight horizon
  // yields strictly less utility than with unit delays.
  Rng rng(9);
  SbmParams params;
  params.num_nodes = 150;
  params.activation_probability = 0.3;
  const GroupedGraph gg = GenerateSbm(params, rng);
  ArrivalOracleOptions options;
  options.num_worlds = 60;

  ArrivalOracle fast(&gg.graph, &gg.groups, TemporalWeight::Step(4),
                     DelaySampler::Unit(), options);
  ArrivalOracle slow(&gg.graph, &gg.groups, TemporalWeight::Step(4),
                     DelaySampler::Geometric(0.3, 5), options);
  const double fast_total = GroupVectorTotal(fast.AddSeed(0));
  const double slow_total = GroupVectorTotal(slow.AddSeed(0));
  EXPECT_LT(slow_total, fast_total);
  EXPECT_GE(slow_total, 1.0 - 1e-9);  // the seed itself always counts
}

TEST(ArrivalOracleTest, CrossValidatedAgainstBellmanFord) {
  // Independent implementation: per world, compute delay-shortest-path
  // arrival times by Bellman-Ford over live edges and compare.
  Rng rng(13);
  SbmParams params;
  params.num_nodes = 60;
  params.p_hom = 0.1;
  params.p_het = 0.04;
  params.activation_probability = 0.4;
  const GroupedGraph gg = GenerateSbm(params, rng);
  const int horizon = 6;
  ArrivalOracleOptions options;
  options.num_worlds = 20;
  options.seed = 555;
  const DelaySampler delays = DelaySampler::Geometric(0.5, 777);
  ArrivalOracle oracle(&gg.graph, &gg.groups, TemporalWeight::Step(horizon),
                       delays, options);
  const std::vector<NodeId> seeds = {0, 30};
  for (const NodeId s : seeds) oracle.AddSeed(s);

  WorldSampler sampler(&gg.graph, DiffusionModel::kIndependentCascade, 555);
  for (uint32_t world = 0; world < 20; ++world) {
    const int kInf = 1 << 20;
    std::vector<int> dist(gg.graph.num_nodes(), kInf);
    for (const NodeId s : seeds) dist[s] = 0;
    // Bellman-Ford relaxation until fixpoint.
    bool changed = true;
    while (changed) {
      changed = false;
      for (NodeId v = 0; v < gg.graph.num_nodes(); ++v) {
        if (dist[v] >= kInf) continue;
        for (const AdjacentEdge& edge : gg.graph.OutEdges(v)) {
          if (!sampler.IsLive(world, edge.edge_id)) continue;
          const int nt =
              dist[v] + delays.Delay(world, edge.edge_id, horizon + 1);
          if (nt < dist[edge.node]) {
            dist[edge.node] = nt;
            changed = true;
          }
        }
      }
    }
    for (NodeId v = 0; v < gg.graph.num_nodes(); ++v) {
      const int expected = dist[v] <= horizon ? dist[v] : -1;
      EXPECT_EQ(oracle.ArrivalTime(world, v), expected)
          << "world " << world << " node " << v;
    }
  }
}

TEST(ArrivalOracleTest, WorksWithGreedySolvers) {
  // The whole point of the oracle interface: P1/P4 run unchanged on the
  // discounted-utility oracle.
  Rng rng(17);
  SbmParams params;  // paper defaults: imbalanced two-group SBM
  const GroupedGraph gg = GenerateSbm(params, rng);
  ArrivalOracleOptions options;
  options.num_worlds = 60;
  ArrivalOracle oracle(&gg.graph, &gg.groups,
                       TemporalWeight::ExponentialDiscount(0.7, 20),
                       DelaySampler::Unit(), options);

  BudgetOptions budget;
  budget.budget = 15;
  const GreedyResult p1 = SolveTcimBudget(oracle, budget);
  EXPECT_EQ(p1.seeds.size(), 15u);

  const GreedyResult p4 =
      SolveFairTcimBudget(oracle, ConcaveFunction::Log(), budget);
  // Disparity in *discounted* per-capita utility: P4 lower than P1.
  auto disparity = [&](const GroupVector& cov) {
    return std::abs(cov[0] / gg.groups.GroupSize(0) -
                    cov[1] / gg.groups.GroupSize(1));
  };
  EXPECT_LT(disparity(p4.coverage), disparity(p1.coverage) + 1e-9);
}

// Property sweep: the discounted estimate must be monotone and submodular
// on fixed worlds (nonincreasing weights over min-arrival times).
class ArrivalLawsTest : public ::testing::TestWithParam<int> {};

TEST_P(ArrivalLawsTest, MonotoneAndSubmodular) {
  const int config = GetParam();
  Rng rng(3000 + config);
  SbmParams params;
  params.num_nodes = 60;
  params.p_hom = 0.08;
  params.p_het = 0.03;
  params.activation_probability = 0.35;
  const GroupedGraph gg = GenerateSbm(params, rng);

  ArrivalOracleOptions options;
  options.num_worlds = 15;
  options.seed = 100 + config;
  const TemporalWeight weight =
      (config % 3 == 0)   ? TemporalWeight::Step(3)
      : (config % 3 == 1) ? TemporalWeight::ExponentialDiscount(0.6, 8)
                          : TemporalWeight::LinearDecay(6);
  const DelaySampler delays = (config % 2 == 0)
                                  ? DelaySampler::Unit()
                                  : DelaySampler::Geometric(0.5, 42 + config);

  auto value = [&](const std::vector<NodeId>& seeds) {
    ArrivalOracle oracle(&gg.graph, &gg.groups, weight, delays, options);
    for (const NodeId s : seeds) oracle.AddSeed(s);
    return oracle.total_coverage();
  };

  Rng pick(4000 + config);
  std::vector<NodeId> small, large;
  for (NodeId v = 0; v < gg.graph.num_nodes(); ++v) {
    const double coin = pick.NextDouble();
    if (coin < 0.08) small.push_back(v);
    if (coin < 0.20) large.push_back(v);
  }
  NodeId extra = -1;
  for (NodeId v = 0; v < gg.graph.num_nodes(); ++v) {
    if (std::find(large.begin(), large.end(), v) == large.end()) {
      extra = v;
      break;
    }
  }
  ASSERT_GE(extra, 0);

  const double f_small = value(small);
  const double f_large = value(large);
  EXPECT_LE(f_small, f_large + 1e-9);

  auto with = [](std::vector<NodeId> base, NodeId v) {
    base.push_back(v);
    return base;
  };
  const double gain_small = value(with(small, extra)) - f_small;
  const double gain_large = value(with(large, extra)) - f_large;
  EXPECT_GE(gain_small, gain_large - 1e-9);
  EXPECT_GE(gain_large, -1e-9);
}

INSTANTIATE_TEST_SUITE_P(Configs, ArrivalLawsTest, ::testing::Range(0, 18));

}  // namespace
}  // namespace tcim
