#include "core/maximin.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/budget.h"
#include "core/fairness.h"
#include "graph/datasets.h"
#include "sim/influence_oracle.h"

namespace tcim {
namespace {

class MaximinTest : public ::testing::Test {
 protected:
  MaximinTest() : gg_(MakeGraph()) {
    options_.num_worlds = 100;
    options_.deadline = 20;
  }
  static GroupedGraph MakeGraph() {
    Rng rng(77);
    return datasets::SyntheticDefault(rng);
  }
  GroupedGraph gg_;
  OracleOptions options_;
};

TEST_F(MaximinTest, RespectsBudget) {
  InfluenceOracle oracle(&gg_.graph, &gg_.groups, options_);
  MaximinOptions maximin;
  maximin.budget = 10;
  const MaximinResult result = SolveMaximinTcim(oracle, maximin);
  EXPECT_LE(result.seeds.size(), 10u);
  EXPECT_GT(result.probes, 0);
}

TEST_F(MaximinTest, RelaxedBudgetCapHonored) {
  InfluenceOracle oracle(&gg_.graph, &gg_.groups, options_);
  MaximinOptions maximin;
  maximin.budget = 10;
  maximin.budget_relaxation = 1.5;
  const MaximinResult result = SolveMaximinTcim(oracle, maximin);
  EXPECT_LE(result.seeds.size(), 15u);
}

TEST_F(MaximinTest, BeatsP1OnMinGroupUtility) {
  // The whole point of maximin: the worst-served group does far better
  // than under plain total-influence maximization.
  MaximinOptions maximin;
  maximin.budget = 20;
  InfluenceOracle oracle_mm(&gg_.graph, &gg_.groups, options_);
  const MaximinResult mm = SolveMaximinTcim(oracle_mm, maximin);

  InfluenceOracle oracle_p1(&gg_.graph, &gg_.groups, options_);
  BudgetOptions budget;
  budget.budget = 20;
  const GreedyResult p1 = SolveTcimBudget(oracle_p1, budget);
  double p1_min = 1.0;
  for (GroupId g = 0; g < gg_.groups.num_groups(); ++g) {
    p1_min = std::min(p1_min, p1.coverage[g] / gg_.groups.GroupSize(g));
  }
  EXPECT_GT(mm.min_group_utility, p1_min);
}

TEST_F(MaximinTest, SaturationLevelConsistentWithCoverage) {
  InfluenceOracle oracle(&gg_.graph, &gg_.groups, options_);
  MaximinOptions maximin;
  maximin.budget = 20;
  const MaximinResult result = SolveMaximinTcim(oracle, maximin);
  // The achieved min-group utility should be at least (close to) the
  // feasible saturation level found by the bisection.
  EXPECT_GE(result.min_group_utility,
            result.saturation_level - maximin.level_tolerance - 1e-9);
}

TEST_F(MaximinTest, OracleLeftHoldingReturnedSeeds) {
  InfluenceOracle oracle(&gg_.graph, &gg_.groups, options_);
  MaximinOptions maximin;
  maximin.budget = 8;
  const MaximinResult result = SolveMaximinTcim(oracle, maximin);
  EXPECT_EQ(oracle.seeds(), result.seeds);
  for (size_t g = 0; g < result.coverage.size(); ++g) {
    EXPECT_NEAR(oracle.group_coverage()[g], result.coverage[g], 1e-9);
  }
}

TEST_F(MaximinTest, ZeroBudgetReturnsEmpty) {
  InfluenceOracle oracle(&gg_.graph, &gg_.groups, options_);
  MaximinOptions maximin;
  maximin.budget = 0;
  const MaximinResult result = SolveMaximinTcim(oracle, maximin);
  EXPECT_TRUE(result.seeds.empty());
  EXPECT_DOUBLE_EQ(result.min_group_utility, 0.0);
}

TEST_F(MaximinTest, MaximinVsParityTradeoff) {
  // Maximin lifts the floor; P4-parity targets equal levels. Both must
  // dominate P1 on the minority, and their disparities should be in the
  // same ballpark on this instance.
  MaximinOptions maximin;
  maximin.budget = 20;
  InfluenceOracle oracle_mm(&gg_.graph, &gg_.groups, options_);
  const MaximinResult mm = SolveMaximinTcim(oracle_mm, maximin);

  InfluenceOracle oracle_p4(&gg_.graph, &gg_.groups, options_);
  BudgetOptions budget;
  budget.budget = 20;
  const GreedyResult p4 =
      SolveFairTcimBudget(oracle_p4, ConcaveFunction::Log(), budget);

  const double mm_minority = mm.coverage[1] / gg_.groups.GroupSize(1);
  const double p4_minority = p4.coverage[1] / gg_.groups.GroupSize(1);
  EXPECT_GT(mm_minority, 0.02);
  EXPECT_GT(p4_minority, 0.02);
}

TEST(MaximinDeathTest, BadRelaxationAborts) {
  Rng rng(1);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  OracleOptions options;
  options.num_worlds = 10;
  InfluenceOracle oracle(&gg.graph, &gg.groups, options);
  MaximinOptions maximin;
  maximin.budget_relaxation = 0.5;
  EXPECT_DEATH(SolveMaximinTcim(oracle, maximin), "relaxation");
}

}  // namespace
}  // namespace tcim
