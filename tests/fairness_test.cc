#include "core/fairness.h"

#include <gtest/gtest.h>

namespace tcim {
namespace {

TEST(DisparityOfNormalizedTest, MaxPairwiseGap) {
  EXPECT_DOUBLE_EQ(DisparityOfNormalized({0.4, 0.1, 0.3}), 0.3);
  EXPECT_DOUBLE_EQ(DisparityOfNormalized({0.2, 0.2}), 0.0);
}

TEST(DisparityOfNormalizedTest, FewerThanTwoGroupsIsZero) {
  EXPECT_DOUBLE_EQ(DisparityOfNormalized({0.7}), 0.0);
  EXPECT_DOUBLE_EQ(DisparityOfNormalized({}), 0.0);
}

TEST(MakeGroupUtilityReportTest, ComputesNormalizedUtilities) {
  const GroupAssignment groups({0, 0, 0, 0, 1});  // sizes 4 and 1
  const GroupUtilityReport report =
      MakeGroupUtilityReport({2.0, 0.5}, groups);
  EXPECT_DOUBLE_EQ(report.normalized[0], 0.5);
  EXPECT_DOUBLE_EQ(report.normalized[1], 0.5);
  EXPECT_DOUBLE_EQ(report.total, 2.5);
  EXPECT_DOUBLE_EQ(report.total_fraction, 0.5);
  EXPECT_DOUBLE_EQ(report.disparity, 0.0);
}

TEST(MakeGroupUtilityReportTest, DisparityIsEquationTwo) {
  const GroupAssignment groups({0, 0, 1, 1, 2, 2});
  const GroupUtilityReport report =
      MakeGroupUtilityReport({2.0, 1.0, 0.0}, groups);
  // Normalized: 1.0, 0.5, 0.0 -> max gap 1.0.
  EXPECT_DOUBLE_EQ(report.disparity, 1.0);
}

TEST(MakeGroupUtilityReportTest, NormalizationIsGroupSizeAgnostic) {
  // Same per-capita utility in very different group sizes -> no disparity.
  const GroupAssignment groups(
      {0, 0, 0, 0, 0, 0, 0, 0, 0, 1});  // sizes 9 and 1
  const GroupUtilityReport report =
      MakeGroupUtilityReport({4.5, 0.5}, groups);
  EXPECT_DOUBLE_EQ(report.disparity, 0.0);
}

TEST(DisparityAmongTest, RestrictsToPair) {
  const GroupAssignment groups({0, 1, 2});
  const GroupUtilityReport report =
      MakeGroupUtilityReport({1.0, 0.6, 0.1}, groups);
  EXPECT_DOUBLE_EQ(report.DisparityAmong({0, 1}), 0.4);
  EXPECT_NEAR(report.DisparityAmong({1, 2}), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(report.DisparityAmong({2}), 0.0);
}

TEST(MostDisparatePairTest, FindsExtremes) {
  const GroupAssignment groups({0, 1, 2});
  const GroupUtilityReport report =
      MakeGroupUtilityReport({0.9, 0.2, 0.5}, groups);
  const auto [a, b] = MostDisparatePair(report);
  EXPECT_EQ(a, 0);  // highest normalized utility
  EXPECT_EQ(b, 1);  // lowest
}

TEST(DebugStringTest, MentionsDisparity) {
  const GroupAssignment groups({0, 1});
  const GroupUtilityReport report = MakeGroupUtilityReport({1.0, 0.0}, groups);
  EXPECT_NE(report.DebugString().find("disparity=1"), std::string::npos);
}

}  // namespace
}  // namespace tcim
