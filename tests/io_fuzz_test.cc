// Failure-injection battery for the parsers: every malformed input must be
// rejected with a clean error Status (never a crash, never a bogus graph),
// and every well-formed quirky input must parse to the documented result.

#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/io.h"

namespace tcim {
namespace {

class MalformedEdgeListTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MalformedEdgeListTest, IsRejectedCleanly) {
  const auto result = ParseEdgeList(GetParam());
  EXPECT_FALSE(result.ok()) << "input was accepted: [" << GetParam() << "]";
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(result.status().message().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, MalformedEdgeListTest,
    ::testing::Values(
        "0",                       // one field
        "0 1 0.5 extra",           // four fields
        "a b",                     // non-numeric ids
        "0 b",                     // one bad id
        "0x1 2",                   // hex not allowed
        "1.5 2",                   // fractional id
        "-1 2",                    // negative source
        "1 -2",                    // negative target
        "3 3",                     // self loop
        "0 1 nan",                 // NaN-ish probability field
        "0 1 -0.5",                // negative probability
        "0 1 1.00001",             // probability above one
        "0 1 0.5x",                // trailing garbage in probability
        "0 1\n2",                  // second line truncated
        "0 1\n1 2 3 4 5",          // later line too long
        "9999999999999999999 1",   // id overflow
        "0 1 2 "                   // trailing field + space
        ));

class MalformedGroupFileTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(MalformedGroupFileTest, IsRejectedCleanly) {
  const auto result = ParseGroupFile(GetParam(), /*num_nodes=*/3);
  EXPECT_FALSE(result.ok()) << "input was accepted: [" << GetParam() << "]";
}

INSTANTIATE_TEST_SUITE_P(Inputs, MalformedGroupFileTest,
                         ::testing::Values(
                             "",               // all nodes missing
                             "0 0",            // nodes 1, 2 missing
                             "0 0\n1 0",       // node 2 missing
                             "0 0\n1 0\n2",    // truncated line
                             "0 0\n1 0\n2 x",  // non-numeric group
                             "0 0\n1 0\n2 -1", // negative group
                             "0 0\n1 0\n5 0",  // node out of range
                             "0 0\n1 0\n2 0\nextra tokens here"));

class QuirkyButValidEdgeListTest
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(QuirkyButValidEdgeListTest, ParsesWithExpectedEdgeCount) {
  const auto [input, expected_edges] = GetParam();
  const auto result = ParseEdgeList(input);
  ASSERT_TRUE(result.ok()) << result.status().ToString() << " for ["
                           << input << "]";
  EXPECT_EQ(result->num_edges(), expected_edges);
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, QuirkyButValidEdgeListTest,
    ::testing::Values(
        std::make_pair("", 0),                         // empty file
        std::make_pair("# only a comment\n", 0),       //
        std::make_pair("\n\n\n", 0),                   // blank lines
        std::make_pair("0 1", 1),                      // no trailing newline
        std::make_pair("0 1\r\n1 2\r\n", 2),           // CRLF endings
        std::make_pair("  0   1  \n", 1),              // extra spaces
        std::make_pair("\t0\t1\t\n", 1),               // tabs
        std::make_pair("0 1\n0 1\n", 2),               // parallel edges kept
        std::make_pair("0 1 0\n", 1),                  // p = 0 allowed
        std::make_pair("0 1 1\n", 1),                  // p = 1 allowed
        std::make_pair("5 6\n", 1),                    // ids define n = 7
        std::make_pair("# c\n0 1\n# c\n1 0\n# c\n", 2)));

TEST(GroupFileQuirksTest, WhitespaceAndCommentsAccepted) {
  const auto result =
      ParseGroupFile("# header\n  0 1 \n\n1 0\r\n2 1\n", 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_groups(), 2);
}

TEST(GroupFileQuirksTest, LaterAssignmentWins) {
  const auto result = ParseGroupFile("0 0\n1 0\n2 0\n2 1\n", 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->GroupOf(2), 1);
}

TEST(RoundTripFuzzTest, RandomGraphsSurviveSerialization) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId n = 5 + static_cast<NodeId>(rng.NextIndex(40));
    GraphBuilder builder(n);
    const int edges = 1 + static_cast<int>(rng.NextIndex(80));
    for (int i = 0; i < edges; ++i) {
      const NodeId a = static_cast<NodeId>(rng.NextIndex(n));
      const NodeId b = static_cast<NodeId>(rng.NextIndex(n));
      if (a == b) continue;
      builder.AddEdge(a, b, rng.NextDouble());
    }
    const Graph original = builder.Build();
    const auto parsed = ParseEdgeList(SerializeEdgeList(original));
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(parsed->num_edges(), original.num_edges());
    for (EdgeId e = 0; e < original.num_edges(); ++e) {
      EXPECT_EQ(parsed->EdgeSource(e), original.EdgeSource(e));
      EXPECT_EQ(parsed->EdgeTarget(e), original.EdgeTarget(e));
      EXPECT_NEAR(parsed->EdgeProbability(e), original.EdgeProbability(e),
                  1e-6);
    }
  }
}

}  // namespace
}  // namespace tcim
