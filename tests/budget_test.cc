#include "core/budget.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/fairness.h"
#include "graph/datasets.h"

namespace tcim {
namespace {

// Shared synthetic instance (paper defaults) for the budget solvers.
class BudgetSolverTest : public ::testing::Test {
 protected:
  BudgetSolverTest() : gg_(MakeGraph()) {
    options_.num_worlds = 100;
    options_.deadline = 20;
  }
  static GroupedGraph MakeGraph() {
    Rng rng(77);
    return datasets::SyntheticDefault(rng);
  }

  GroupedGraph gg_;
  OracleOptions options_;
};

TEST_F(BudgetSolverTest, TcimBudgetReturnsRequestedSize) {
  InfluenceOracle oracle(&gg_.graph, &gg_.groups, options_);
  BudgetOptions budget;
  budget.budget = 10;
  const GreedyResult result = SolveTcimBudget(oracle, budget);
  EXPECT_EQ(result.seeds.size(), 10u);
}

TEST_F(BudgetSolverTest, FairBudgetReturnsRequestedSize) {
  InfluenceOracle oracle(&gg_.graph, &gg_.groups, options_);
  BudgetOptions budget;
  budget.budget = 10;
  const GreedyResult result =
      SolveFairTcimBudget(oracle, ConcaveFunction::Log(), budget);
  EXPECT_EQ(result.seeds.size(), 10u);
}

TEST_F(BudgetSolverTest, FairLogReducesDisparity) {
  // The paper's headline: P4-log yields lower disparity than P1 on the
  // imbalanced SBM, at only marginal loss of total influence.
  BudgetOptions budget;
  budget.budget = 20;

  InfluenceOracle oracle_p1(&gg_.graph, &gg_.groups, options_);
  const GreedyResult p1 = SolveTcimBudget(oracle_p1, budget);
  InfluenceOracle oracle_p4(&gg_.graph, &gg_.groups, options_);
  const GreedyResult p4 =
      SolveFairTcimBudget(oracle_p4, ConcaveFunction::Log(), budget);

  const GroupUtilityReport report_p1 =
      MakeGroupUtilityReport(p1.coverage, gg_.groups);
  const GroupUtilityReport report_p4 =
      MakeGroupUtilityReport(p4.coverage, gg_.groups);

  EXPECT_LT(report_p4.disparity, report_p1.disparity);
  // P1 maximizes total influence: it cannot lose to the constrained-style
  // objective on the same estimate.
  EXPECT_GE(report_p1.total, report_p4.total - 1e-9);
  // ... but the fairness cost must be bounded (Theorem 1 sanity: within a
  // generous constant of P1's total on this instance).
  EXPECT_GT(report_p4.total, 0.4 * report_p1.total);
}

TEST_F(BudgetSolverTest, CurvatureOrderingLogVsSqrt) {
  BudgetOptions budget;
  budget.budget = 20;

  InfluenceOracle oracle_log(&gg_.graph, &gg_.groups, options_);
  const GreedyResult log_result =
      SolveFairTcimBudget(oracle_log, ConcaveFunction::Log(), budget);
  InfluenceOracle oracle_sqrt(&gg_.graph, &gg_.groups, options_);
  const GreedyResult sqrt_result =
      SolveFairTcimBudget(oracle_sqrt, ConcaveFunction::Sqrt(), budget);

  const auto report_log = MakeGroupUtilityReport(log_result.coverage, gg_.groups);
  const auto report_sqrt =
      MakeGroupUtilityReport(sqrt_result.coverage, gg_.groups);
  // Higher curvature -> lower (or equal) disparity; lower curvature ->
  // higher (or equal) total influence.
  EXPECT_LE(report_log.disparity, report_sqrt.disparity + 0.03);
  EXPECT_GE(report_sqrt.total, report_log.total - 1.0);
}

TEST_F(BudgetSolverTest, IdentityWrapperMatchesP1) {
  // H = identity makes P4 degenerate to P1 exactly (same estimate, same
  // tie-breaking), per the paper's §5.1.2 remark.
  BudgetOptions budget;
  budget.budget = 8;
  InfluenceOracle oracle_p1(&gg_.graph, &gg_.groups, options_);
  const GreedyResult p1 = SolveTcimBudget(oracle_p1, budget);
  InfluenceOracle oracle_id(&gg_.graph, &gg_.groups, options_);
  const GreedyResult id =
      SolveFairTcimBudget(oracle_id, ConcaveFunction::Identity(), budget);
  EXPECT_EQ(p1.seeds, id.seeds);
}

TEST_F(BudgetSolverTest, MinorityWeightsSteerSelection) {
  // Upweighting the minority group must not decrease its coverage.
  BudgetOptions budget;
  budget.budget = 10;
  InfluenceOracle oracle_plain(&gg_.graph, &gg_.groups, options_);
  const GreedyResult plain =
      SolveFairTcimBudget(oracle_plain, ConcaveFunction::Sqrt(), budget);

  ConcaveSumObjective::Options weighted;
  weighted.weights = {1.0, 5.0};
  InfluenceOracle oracle_weighted(&gg_.graph, &gg_.groups, options_);
  const GreedyResult heavy = SolveFairTcimBudget(
      oracle_weighted, ConcaveFunction::Sqrt(), budget, weighted);

  EXPECT_GE(heavy.coverage[1], plain.coverage[1] - 1e-9);
}

TEST_F(BudgetSolverTest, SeedsAreDistinct) {
  InfluenceOracle oracle(&gg_.graph, &gg_.groups, options_);
  BudgetOptions budget;
  budget.budget = 15;
  const GreedyResult result = SolveTcimBudget(oracle, budget);
  std::vector<NodeId> sorted = result.seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST_F(BudgetSolverTest, LargerBudgetNeverHurtsTotal) {
  BudgetOptions small;
  small.budget = 5;
  BudgetOptions large;
  large.budget = 15;
  InfluenceOracle oracle_a(&gg_.graph, &gg_.groups, options_);
  const double small_total =
      GroupVectorTotal(SolveTcimBudget(oracle_a, small).coverage);
  InfluenceOracle oracle_b(&gg_.graph, &gg_.groups, options_);
  const double large_total =
      GroupVectorTotal(SolveTcimBudget(oracle_b, large).coverage);
  EXPECT_GE(large_total, small_total - 1e-9);
}

}  // namespace
}  // namespace tcim
