// Deadline-parametric backend semantics (the sweep tentpole):
//
//   * monotonicity — for a FIXED seed set served off one cached build, the
//     estimated objective at effective deadline τ' is non-decreasing in τ'
//     (hop/depth filtering is nested, so this is exact, not statistical);
//   * agreement — SolveSweep's per-τ solutions match direct Solve calls at
//     the same τ: bit-identically for the montecarlo backend (the world
//     ensemble key is deadline-free either way) and within the
//     rr_agreement tolerance for the rr backend (sweep and direct builds
//     may use different deadline classes, hence different IMM/fixed
//     sketches of the same distribution);
//   * sweep-spec validation — precise Statuses out of
//     ValidateSweepDeadlines / ParseDeadlineList.
//
// Registered under `ctest -L api` (CMakeLists label rule).

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "api/tcim.h"

namespace tcim {
namespace {

const std::vector<int> kSweep = {1, 2, 5, 10, 20, kNoDeadline};

class DeadlineSweepTest : public ::testing::Test {
 protected:
  DeadlineSweepTest() : gg_(MakeGraph()) {
    options_.num_worlds = 100;
    options_.rr_sets_per_group = 800;
  }
  static GroupedGraph MakeGraph() {
    Rng rng(7);
    return datasets::SyntheticDefault(rng);
  }

  GroupedGraph gg_;
  SolveOptions options_;
};

// Fixed seeds, one cached build per backend kind: coverage must be
// non-decreasing in the effective deadline, exactly.
TEST_F(DeadlineSweepTest, ObjectiveIsMonotoneInTheEffectiveDeadline) {
  const std::vector<NodeId> seeds = {3, 50, 120, 180, 7};
  for (const std::string& oracle : {std::string("montecarlo"),
                                    std::string("rr")}) {
    Engine engine(gg_.graph, gg_.groups);
    SolveOptions options = options_;
    // Pin one shared build for every τ' (kNoDeadline dominates the sweep).
    options.min_backend_deadline = kNoDeadline;

    double previous_total = -1.0;
    GroupVector previous_coverage;
    for (const int deadline : kSweep) {
      ProblemSpec spec = ProblemSpec::Budget(5, deadline);
      spec.oracle = oracle;
      const Result<GroupUtilityReport> report =
          engine.EvaluateSeeds(seeds, spec, options);
      ASSERT_TRUE(report.ok()) << oracle << " tau " << deadline << ": "
                               << report.status().ToString();
      EXPECT_GE(report->total, previous_total - 1e-9)
          << oracle << " violates monotonicity at tau " << deadline;
      // Monotone per group too, not just in aggregate.
      if (!previous_coverage.empty()) {
        for (size_t g = 0; g < report->coverage.size(); ++g) {
          EXPECT_GE(report->coverage[g], previous_coverage[g] - 1e-9)
              << oracle << " group " << g << " at tau " << deadline;
        }
      }
      previous_total = report->total;
      previous_coverage = report->coverage;
    }
    // The whole τ' ladder ran off ONE materialized backend.
    EXPECT_EQ(engine.cache_stats().constructions, 1)
        << oracle << ": " << engine.cache_stats().DebugString();
  }
}

// Montecarlo: the sweep's per-τ solutions are bit-identical to direct
// solves at each τ — the cached world ensemble is the same object a
// one-shot solve would build.
TEST_F(DeadlineSweepTest, MontecarloSweepMatchesDirectSolvesSeedForSeed) {
  Engine sweep_engine(gg_.graph, gg_.groups);
  const Engine::SweepResult sweep =
      sweep_engine.SolveSweep(ProblemSpec::Budget(8, 0), kSweep, options_);
  ASSERT_EQ(sweep.solutions.size(), kSweep.size());

  Engine direct_engine(gg_.graph, gg_.groups);
  for (size_t i = 0; i < kSweep.size(); ++i) {
    ASSERT_TRUE(sweep.solutions[i].ok())
        << sweep.solutions[i].status().ToString();
    const Result<Solution> direct =
        direct_engine.Solve(ProblemSpec::Budget(8, kSweep[i]), options_);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(sweep.solutions[i]->seeds, direct->seeds)
        << "tau " << kSweep[i];
    EXPECT_DOUBLE_EQ(sweep.solutions[i]->objective_value,
                     direct->objective_value);
  }
  // ... and the sweep built one selection + one evaluation ensemble while
  // the direct engine rebuilt nothing per deadline either (deadline-free
  // world keys), so both report exactly two constructions.
  EXPECT_EQ(sweep_engine.cache_stats().world_constructions, 2);
  EXPECT_EQ(direct_engine.cache_stats().world_constructions, 2);
}

// RR: a single-point sweep at τ uses the same deadline class as a direct
// solve at τ, so it is bit-identical; the full sweep (whose shared build
// is deeper) must agree with direct solves within the estimator tolerance
// when both seed sets are re-scored on one shared Monte-Carlo evaluation.
TEST_F(DeadlineSweepTest, RrSweepAgreesWithDirectSolves) {
  ProblemSpec spec = ProblemSpec::Budget(8, 0);
  spec.oracle = "rr";
  SolveOptions no_eval = options_;
  no_eval.evaluate = false;

  Engine engine(gg_.graph, gg_.groups);

  // Exact case: same deadline class, same sketch, same seeds.
  const Engine::SweepResult point = engine.SolveSweep(spec, {20}, no_eval);
  ASSERT_TRUE(point.solutions[0].ok());
  spec.deadline = 20;
  const Result<Solution> direct20 = engine.Solve(spec, no_eval);
  ASSERT_TRUE(direct20.ok());
  EXPECT_EQ(point.solutions[0]->seeds, direct20->seeds);

  // Tolerance case: the ∞-classed shared build vs per-τ classed builds.
  spec.deadline = 0;
  const Engine::SweepResult sweep = engine.SolveSweep(spec, kSweep, no_eval);
  for (size_t i = 0; i < kSweep.size(); ++i) {
    ASSERT_TRUE(sweep.solutions[i].ok())
        << sweep.solutions[i].status().ToString();
    ProblemSpec direct_spec = spec;
    direct_spec.deadline = kSweep[i];
    const Result<Solution> direct = engine.Solve(direct_spec, no_eval);
    ASSERT_TRUE(direct.ok());

    // Re-score both picks on one shared Monte-Carlo evaluation.
    ProblemSpec eval_spec = ProblemSpec::Budget(1, kSweep[i]);
    const auto score = [&](const std::vector<NodeId>& seeds) {
      SolveOptions eval_options;
      eval_options.num_worlds = 400;
      const Result<GroupUtilityReport> report =
          engine.EvaluateSeeds(seeds, eval_spec, eval_options);
      EXPECT_TRUE(report.ok()) << report.status().ToString();
      return report->total;
    };
    const double direct_total = score(direct->seeds);
    const double sweep_total = score(sweep.solutions[i]->seeds);
    ASSERT_GT(direct_total, 0.0);
    EXPECT_NEAR(sweep_total, direct_total, 0.15 * direct_total)
        << "tau " << kSweep[i];
  }
}

TEST_F(DeadlineSweepTest, SweepValidationHasPreciseStatuses) {
  EXPECT_TRUE(ValidateSweepDeadlines(kSweep).ok());

  const Status empty = ValidateSweepDeadlines({});
  EXPECT_EQ(empty.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(empty.message().find("at least one"), std::string::npos);

  const Status zero = ValidateSweepDeadlines({5, 0});
  EXPECT_EQ(zero.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(zero.message().find("positive"), std::string::npos);

  const Status duplicate = ValidateSweepDeadlines({5, 10, 5});
  EXPECT_EQ(duplicate.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(duplicate.message().find("duplicates"), std::string::npos);

  // kNoDeadline and anything beyond it both mean infinity.
  const Status double_inf =
      ValidateSweepDeadlines({kNoDeadline, kNoDeadline + 1});
  EXPECT_EQ(double_inf.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(double_inf.message().find("infinity"), std::string::npos);
}

TEST_F(DeadlineSweepTest, ParseDeadlineListRoundTrips) {
  const Result<std::vector<int>> parsed =
      ParseDeadlineList("1, 2,5,10,20, inf");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, kSweep);

  EXPECT_FALSE(ParseDeadlineList("").ok());
  EXPECT_FALSE(ParseDeadlineList("1,,2").ok());
  EXPECT_FALSE(ParseDeadlineList("1,two").ok());
  EXPECT_FALSE(ParseDeadlineList("1,2,1").ok());
  // Whitespace inside an entry must not silently concatenate digits.
  EXPECT_FALSE(ParseDeadlineList("1 0, 20").ok());
  // Out-of-int-range values must not silently wrap to a small deadline.
  EXPECT_FALSE(ParseDeadlineList("4294967301").ok());
  EXPECT_FALSE(ParseDeadlineList("2147483648").ok());
  const Result<std::vector<int>> none = ParseDeadlineList("none");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ((*none)[0], kNoDeadline);
}

}  // namespace
}  // namespace tcim
