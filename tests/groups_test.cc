#include "graph/groups.h"

#include <vector>

#include <gtest/gtest.h>

namespace tcim {
namespace {

TEST(GroupAssignmentTest, SingleGroupCoversAllNodes) {
  const GroupAssignment groups = GroupAssignment::SingleGroup(7);
  EXPECT_EQ(groups.num_nodes(), 7);
  EXPECT_EQ(groups.num_groups(), 1);
  EXPECT_EQ(groups.GroupSize(0), 7);
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(groups.GroupOf(v), 0);
}

TEST(GroupAssignmentTest, TwoGroupSizes) {
  const GroupAssignment groups({0, 0, 1, 0, 1});
  EXPECT_EQ(groups.num_groups(), 2);
  EXPECT_EQ(groups.GroupSize(0), 3);
  EXPECT_EQ(groups.GroupSize(1), 2);
  EXPECT_DOUBLE_EQ(groups.GroupFraction(0), 0.6);
  EXPECT_DOUBLE_EQ(groups.GroupFraction(1), 0.4);
}

TEST(GroupAssignmentTest, GroupMembersInNodeOrder) {
  const GroupAssignment groups({1, 0, 1, 0, 1});
  EXPECT_EQ(groups.GroupMembers(0), (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(groups.GroupMembers(1), (std::vector<NodeId>{0, 2, 4}));
}

TEST(GroupAssignmentTest, DebugStringShowsSizes) {
  const GroupAssignment groups({0, 1, 1});
  EXPECT_EQ(groups.DebugString(), "GroupAssignment(k=2 sizes=[1,2])");
}

TEST(GroupAssignmentDeathTest, RejectsSparseGroupIds) {
  // Group 1 missing: ids {0, 2} are not dense.
  EXPECT_DEATH(GroupAssignment({0, 2}), "dense");
}

TEST(GroupAssignmentDeathTest, RejectsNegativeIds) {
  EXPECT_DEATH(GroupAssignment({0, -1}), "negative");
}

TEST(GroupEdgeStatsTest, CountsWithinAndAcross) {
  // 0,1 in group 0; 2,3 in group 1.
  GraphBuilder builder(4);
  builder.AddUndirectedEdge(0, 1, 0.5);  // within group 0 (2 directed)
  builder.AddUndirectedEdge(2, 3, 0.5);  // within group 1 (2 directed)
  builder.AddEdge(0, 2, 0.5);            // across 0 -> 1
  const Graph graph = builder.Build();
  const GroupAssignment groups({0, 0, 1, 1});

  const GroupEdgeStats stats = ComputeGroupEdgeStats(graph, groups);
  EXPECT_EQ(stats.within[0], 2);
  EXPECT_EQ(stats.within[1], 2);
  EXPECT_EQ(stats.across[0][1], 1);
  EXPECT_EQ(stats.across[1][0], 0);
  EXPECT_EQ(stats.total_within, 4);
  EXPECT_EQ(stats.total_across, 1);
}

TEST(GroupEdgeStatsDeathTest, NodeCountMismatchAborts) {
  const Graph graph = GraphBuilder(3).Build();
  const GroupAssignment groups({0, 1});
  EXPECT_DEATH(ComputeGroupEdgeStats(graph, groups), "mismatch");
}

}  // namespace
}  // namespace tcim
