#include "graph/generators.h"

#include <cmath>
#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "graph/algorithms.h"

namespace tcim {
namespace {

TEST(GenerateSbmTest, GroupSizesFollowMajorityFraction) {
  Rng rng(1);
  SbmParams params;
  params.num_nodes = 500;
  params.majority_fraction = 0.7;
  const GroupedGraph gg = GenerateSbm(params, rng);
  EXPECT_EQ(gg.graph.num_nodes(), 500);
  EXPECT_EQ(gg.groups.num_groups(), 2);
  EXPECT_EQ(gg.groups.GroupSize(0), 350);
  EXPECT_EQ(gg.groups.GroupSize(1), 150);
}

TEST(GenerateSbmTest, EdgeCountsNearExpectation) {
  Rng rng(7);
  SbmParams params;  // paper defaults: 0.025 / 0.001
  const GroupedGraph gg = GenerateSbm(params, rng);
  const GroupEdgeStats stats = ComputeGroupEdgeStats(gg.graph, gg.groups);

  // Expected within group 0: C(350,2)*0.025 ≈ 1527 undirected = 3054 directed.
  const double expected_within0 = 350.0 * 349.0 / 2.0 * 0.025 * 2;
  EXPECT_NEAR(stats.within[0], expected_within0, 0.15 * expected_within0);
  // Expected across: 350*150*0.001 = 52.5 undirected = 105 directed.
  const double expected_across = 350.0 * 150.0 * 0.001 * 2;
  EXPECT_NEAR(stats.across[0][1] + stats.across[1][0], expected_across,
              0.5 * expected_across);
}

TEST(GenerateSbmTest, AllEdgesCarryActivationProbability) {
  Rng rng(3);
  SbmParams params;
  params.num_nodes = 100;
  params.activation_probability = 0.42;
  const GroupedGraph gg = GenerateSbm(params, rng);
  for (EdgeId e = 0; e < gg.graph.num_edges(); ++e) {
    EXPECT_NEAR(gg.graph.EdgeProbability(e), 0.42, 1e-6);
  }
}

TEST(GenerateSbmTest, DeterministicGivenSeed) {
  SbmParams params;
  params.num_nodes = 200;
  Rng rng1(99), rng2(99);
  const GroupedGraph a = GenerateSbm(params, rng1);
  const GroupedGraph b = GenerateSbm(params, rng2);
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (EdgeId e = 0; e < a.graph.num_edges(); ++e) {
    EXPECT_EQ(a.graph.EdgeSource(e), b.graph.EdgeSource(e));
    EXPECT_EQ(a.graph.EdgeTarget(e), b.graph.EdgeTarget(e));
  }
}

TEST(GenerateSbmTest, SymmetricSincesUndirected) {
  Rng rng(5);
  SbmParams params;
  params.num_nodes = 120;
  const GroupedGraph gg = GenerateSbm(params, rng);
  for (NodeId v = 0; v < gg.graph.num_nodes(); ++v) {
    EXPECT_EQ(gg.graph.OutDegree(v), gg.graph.InDegree(v));
  }
}

TEST(GenerateBlockModelTest, ThreeGroups) {
  Rng rng(11);
  const GroupedGraph gg = GenerateBlockModel(
      {50, 30, 20},
      {{0.2, 0.01, 0.01}, {0.01, 0.2, 0.01}, {0.01, 0.01, 0.2}}, 0.1, rng);
  EXPECT_EQ(gg.graph.num_nodes(), 100);
  EXPECT_EQ(gg.groups.num_groups(), 3);
  const GroupEdgeStats stats = ComputeGroupEdgeStats(gg.graph, gg.groups);
  EXPECT_GT(stats.total_within, stats.total_across);
}

TEST(GenerateBlockModelDeathTest, AsymmetricMatrixAborts) {
  Rng rng(1);
  EXPECT_DEATH(
      GenerateBlockModel({10, 10}, {{0.1, 0.2}, {0.3, 0.1}}, 0.1, rng),
      "symmetric");
}

TEST(GenerateExactBlockGraphTest, HitsExactCounts) {
  Rng rng(13);
  const GroupedGraph gg = GenerateExactBlockGraph(
      {40, 60}, {{100, 50}, {50, 200}}, 0.05, rng);
  const GroupEdgeStats stats = ComputeGroupEdgeStats(gg.graph, gg.groups);
  // Undirected edges count twice in directed stats.
  EXPECT_EQ(stats.within[0], 200);
  EXPECT_EQ(stats.within[1], 400);
  EXPECT_EQ(stats.across[0][1] + stats.across[1][0], 100);
  EXPECT_EQ(gg.graph.num_edges(), 2 * (100 + 50 + 200));
}

TEST(GenerateExactBlockGraphTest, NoDuplicateUndirectedEdges) {
  Rng rng(17);
  const GroupedGraph gg =
      GenerateExactBlockGraph({20}, {{150}}, 0.05, rng);
  // 150 distinct undirected edges among C(20,2)=190 pairs.
  std::set<std::pair<NodeId, NodeId>> pairs;
  for (EdgeId e = 0; e < gg.graph.num_edges(); ++e) {
    NodeId a = gg.graph.EdgeSource(e), b = gg.graph.EdgeTarget(e);
    if (a > b) std::swap(a, b);
    pairs.insert({a, b});
  }
  EXPECT_EQ(pairs.size(), 150u);
}

TEST(GenerateExactBlockGraphDeathTest, OverfullBlockAborts) {
  Rng rng(1);
  // C(5,2) = 10 < 11 requested.
  EXPECT_DEATH(GenerateExactBlockGraph({5}, {{11}}, 0.1, rng), "capacity");
}

TEST(GenerateErdosRenyiTest, ExactEdgeCount) {
  Rng rng(23);
  const Graph graph = GenerateErdosRenyi(100, 300, 0.1, rng);
  EXPECT_EQ(graph.num_nodes(), 100);
  EXPECT_EQ(graph.num_edges(), 600);  // 300 undirected
}

TEST(GenerateBarabasiAlbertTest, DegreeSkewIsHeavy) {
  Rng rng(29);
  const Graph graph = GenerateBarabasiAlbert(500, 3, 0.1, rng);
  EXPECT_EQ(graph.num_nodes(), 500);
  const DegreeStats stats = ComputeOutDegreeStats(graph);
  // Preferential attachment produces hubs: max degree far above the mean.
  EXPECT_GT(stats.max, 4 * stats.mean);
  EXPECT_GE(stats.min, 3);
}

TEST(WithWeightedCascadeProbabilitiesTest, UsesInverseInDegree) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 2, 0.9);
  builder.AddEdge(1, 2, 0.9);
  const Graph graph = WithWeightedCascadeProbabilities(builder.Build());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    EXPECT_NEAR(graph.EdgeProbability(e), 0.5, 1e-6);  // in-degree of 2 is 2
  }
}

TEST(WithUniformProbabilityTest, OverridesAllEdges) {
  Rng rng(31);
  const Graph base = GenerateErdosRenyi(50, 100, 0.5, rng);
  const Graph uniform = WithUniformProbability(base, 0.07);
  EXPECT_EQ(uniform.num_edges(), base.num_edges());
  for (EdgeId e = 0; e < uniform.num_edges(); ++e) {
    EXPECT_NEAR(uniform.EdgeProbability(e), 0.07, 1e-6);
  }
}

}  // namespace
}  // namespace tcim
