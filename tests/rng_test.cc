#include "common/rng.h"

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace tcim {
namespace {

TEST(SplitMix64MixTest, IsDeterministic) {
  EXPECT_EQ(SplitMix64Mix(42), SplitMix64Mix(42));
  EXPECT_NE(SplitMix64Mix(42), SplitMix64Mix(43));
}

TEST(SplitMix64MixTest, MixesLowBitChanges) {
  // Flipping one input bit should flip roughly half the output bits.
  const uint64_t a = SplitMix64Mix(1);
  const uint64_t b = SplitMix64Mix(2);
  const int hamming = __builtin_popcountll(a ^ b);
  EXPECT_GT(hamming, 16);
  EXPECT_LT(hamming, 48);
}

TEST(HashCombineTest, OrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(ToUnitDoubleTest, RangeIsHalfOpen) {
  EXPECT_EQ(ToUnitDouble(0), 0.0);
  EXPECT_LT(ToUnitDouble(UINT64_MAX), 1.0);
  EXPECT_GE(ToUnitDouble(UINT64_MAX), 0.999999);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextIndexStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextIndex(17), 17u);
  }
}

TEST(RngTest, NextIndexCoversAllValues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextIndex(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextIndexIsApproximatelyUniform) {
  Rng rng(13);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) counts[rng.NextIndex(8)]++;
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 8, 4 * std::sqrt(n / 8.0));
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(21);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(123);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, SplitProducesDecorrelatedStream) {
  Rng parent(17);
  Rng child = parent.Split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextU64() == child.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ZeroSeedStillWorks) {
  Rng rng(0);
  std::set<uint64_t> values;
  for (int i = 0; i < 100; ++i) values.insert(rng.NextU64());
  EXPECT_GT(values.size(), 95u);  // no degenerate all-zero state
}

}  // namespace
}  // namespace tcim
