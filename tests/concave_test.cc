#include "core/concave.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tcim {
namespace {

TEST(ConcaveFunctionTest, IdentityIsIdentity) {
  const ConcaveFunction h = ConcaveFunction::Identity();
  EXPECT_DOUBLE_EQ(h(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h(3.7), 3.7);
  EXPECT_EQ(h.name(), "identity");
}

TEST(ConcaveFunctionTest, LogIsLog1p) {
  const ConcaveFunction h = ConcaveFunction::Log();
  EXPECT_DOUBLE_EQ(h(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h(std::exp(1.0) - 1.0), 1.0);
  EXPECT_EQ(h.name(), "log");
}

TEST(ConcaveFunctionTest, SqrtValues) {
  const ConcaveFunction h = ConcaveFunction::Sqrt();
  EXPECT_DOUBLE_EQ(h(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h(9.0), 3.0);
  EXPECT_EQ(h.name(), "sqrt");
}

TEST(ConcaveFunctionTest, PowerValues) {
  const ConcaveFunction h = ConcaveFunction::Power(0.25);
  EXPECT_DOUBLE_EQ(h(16.0), 2.0);
  EXPECT_EQ(h.name(), "power(0.25)");
}

TEST(ConcaveFunctionDeathTest, PowerRejectsBadAlpha) {
  EXPECT_DEATH(ConcaveFunction::Power(0.0), "exponent");
  EXPECT_DEATH(ConcaveFunction::Power(1.5), "exponent");
}

TEST(ConcaveFunctionTest, AlphaFairSpecialCases) {
  // α = 0 is utilitarian (identity); α = 1 is proportional fairness (log).
  EXPECT_EQ(ConcaveFunction::AlphaFair(0.0).name(), "identity");
  EXPECT_EQ(ConcaveFunction::AlphaFair(1.0).name(), "log");
  EXPECT_EQ(ConcaveFunction::AlphaFair(2.0).name(), "alpha_fair(2)");
}

TEST(ConcaveFunctionTest, AlphaFairValues) {
  // α = 2: ((1+z)^{-1} - 1) / (-1) = 1 - 1/(1+z) = z/(1+z).
  const ConcaveFunction h = ConcaveFunction::AlphaFair(2.0);
  EXPECT_DOUBLE_EQ(h(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h(1.0), 0.5);
  EXPECT_DOUBLE_EQ(h(3.0), 0.75);
}

TEST(ConcaveFunctionTest, AlphaFairCurvatureGrowsWithAlpha) {
  // Larger α -> relatively less marginal value at large z.
  const ConcaveFunction mild = ConcaveFunction::AlphaFair(0.5);
  const ConcaveFunction harsh = ConcaveFunction::AlphaFair(3.0);
  const double z = 50.0;
  const double mild_ratio =
      (mild(z + 1) - mild(z)) / (mild(1) - mild(0));
  const double harsh_ratio =
      (harsh(z + 1) - harsh(z)) / (harsh(1) - harsh(0));
  EXPECT_LT(harsh_ratio, mild_ratio);
}

TEST(ConcaveFunctionDeathTest, AlphaFairRejectsNegativeAlpha) {
  EXPECT_DEATH(ConcaveFunction::AlphaFair(-0.5), "alpha");
}

// Parameterized law checks: every wrapper must be nondecreasing and concave
// (diminishing differences) on a grid — these are the properties Theorem 1
// and the P4 surrogate rely on.
class ConcaveLawsTest : public ::testing::TestWithParam<int> {
 protected:
  ConcaveFunction Function() const {
    switch (GetParam()) {
      case 0:
        return ConcaveFunction::Identity();
      case 1:
        return ConcaveFunction::Log();
      case 2:
        return ConcaveFunction::Sqrt();
      case 3:
        return ConcaveFunction::Power(0.25);
      case 4:
        return ConcaveFunction::Power(0.75);
      case 5:
        return ConcaveFunction::AlphaFair(0.5);
      case 6:
        return ConcaveFunction::AlphaFair(2.0);
      default:
        return ConcaveFunction::AlphaFair(4.0);
    }
  }
};

TEST_P(ConcaveLawsTest, NonDecreasing) {
  const ConcaveFunction h = Function();
  double previous = h(0.0);
  for (double z = 0.1; z < 50.0; z += 0.1) {
    const double current = h(z);
    EXPECT_GE(current, previous - 1e-12) << "at z=" << z;
    previous = current;
  }
}

TEST_P(ConcaveLawsTest, DiminishingDifferences) {
  const ConcaveFunction h = Function();
  const double delta = 0.5;
  for (double z = 0.0; z < 40.0; z += 0.7) {
    const double gain_here = h(z + delta) - h(z);
    const double gain_later = h(z + 5.0 + delta) - h(z + 5.0);
    EXPECT_GE(gain_here, gain_later - 1e-12) << "at z=" << z;
  }
}

TEST_P(ConcaveLawsTest, NonNegativeAtZero) {
  EXPECT_GE(Function()(0.0), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllWrappers, ConcaveLawsTest, ::testing::Range(0, 8));

TEST(ConcaveCurvatureTest, LogHasHigherCurvatureThanSqrt) {
  // Curvature ordering drives the fairness/influence trade-off: relative
  // marginal value at large z must be smallest for log.
  const ConcaveFunction log_h = ConcaveFunction::Log();
  const ConcaveFunction sqrt_h = ConcaveFunction::Sqrt();
  const double z = 100.0;
  const double log_ratio = (log_h(z + 1) - log_h(z)) / (log_h(1) - log_h(0));
  const double sqrt_ratio =
      (sqrt_h(z + 1) - sqrt_h(z)) / (sqrt_h(1) - sqrt_h(0));
  EXPECT_LT(log_ratio, sqrt_ratio);
}

}  // namespace
}  // namespace tcim
