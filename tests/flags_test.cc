#include "cli/flags.h"

#include <vector>

#include <gtest/gtest.h>

namespace tcim {
namespace {

FlagParser MakeParser() {
  FlagParser flags;
  flags.AddString("name", "default", "a string");
  flags.AddInt("count", 7, "an int");
  flags.AddDouble("rate", 0.5, "a double");
  flags.AddBool("fair", false, "a bool");
  return flags;
}

Status ParseArgs(FlagParser& flags, std::vector<const char*> args) {
  return flags.Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, DefaultsWithNoArgs) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {}).ok());
  EXPECT_EQ(flags.GetString("name"), "default");
  EXPECT_EQ(flags.GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.5);
  EXPECT_FALSE(flags.GetBool("fair"));
}

TEST(FlagParserTest, EqualsForm) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(
      ParseArgs(flags, {"--name=abc", "--count=42", "--rate=0.25"}).ok());
  EXPECT_EQ(flags.GetString("name"), "abc");
  EXPECT_EQ(flags.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.25);
}

TEST(FlagParserTest, SpaceForm) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {"--name", "xyz", "--count", "-3"}).ok());
  EXPECT_EQ(flags.GetString("name"), "xyz");
  EXPECT_EQ(flags.GetInt("count"), -3);
}

TEST(FlagParserTest, BareBoolSetsTrue) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {"--fair"}).ok());
  EXPECT_TRUE(flags.GetBool("fair"));
}

TEST(FlagParserTest, BoolExplicitValues) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {"--fair=false"}).ok());
  EXPECT_FALSE(flags.GetBool("fair"));
  ASSERT_TRUE(ParseArgs(flags, {"--fair=1"}).ok());
  EXPECT_TRUE(flags.GetBool("fair"));
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {"input.txt", "--count=1", "out.txt"}).ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.txt", "out.txt"}));
}

TEST(FlagParserTest, UnknownFlagIsError) {
  FlagParser flags = MakeParser();
  const Status status = ParseArgs(flags, {"--nope=1"});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unknown flag"), std::string::npos);
}

TEST(FlagParserTest, MalformedIntIsError) {
  FlagParser flags = MakeParser();
  EXPECT_FALSE(ParseArgs(flags, {"--count=abc"}).ok());
}

TEST(FlagParserTest, MalformedDoubleIsError) {
  FlagParser flags = MakeParser();
  EXPECT_FALSE(ParseArgs(flags, {"--rate=fast"}).ok());
}

TEST(FlagParserTest, MalformedBoolIsError) {
  FlagParser flags = MakeParser();
  EXPECT_FALSE(ParseArgs(flags, {"--fair=maybe"}).ok());
}

TEST(FlagParserTest, MissingValueIsError) {
  FlagParser flags = MakeParser();
  EXPECT_FALSE(ParseArgs(flags, {"--name"}).ok());
}

TEST(FlagParserTest, LastValueWins) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {"--count=1", "--count=2"}).ok());
  EXPECT_EQ(flags.GetInt("count"), 2);
}

TEST(FlagParserTest, HelpListsFlagsAndDefaults) {
  FlagParser flags = MakeParser();
  const std::string help = flags.Help();
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("default: 7"), std::string::npos);
}

TEST(FlagParserDeathTest, UndeclaredGetterAborts) {
  FlagParser flags = MakeParser();
  EXPECT_DEATH((void)flags.GetInt("nope"), "undeclared");
}

TEST(FlagParserDeathTest, TypeMismatchAborts) {
  FlagParser flags = MakeParser();
  EXPECT_DEATH((void)flags.GetInt("name"), "type mismatch");
}

TEST(FlagParserDeathTest, DuplicateDeclarationAborts) {
  FlagParser flags = MakeParser();
  EXPECT_DEATH(flags.AddInt("count", 1, "again"), "duplicate");
}

}  // namespace
}  // namespace tcim
