#include "sim/rr_sets.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/generators.h"

namespace tcim {
namespace {

TEST(RrSketchTest, RootAlwaysInItsSet) {
  Rng rng(1);
  SbmParams params;
  params.num_nodes = 100;
  const GroupedGraph gg = GenerateSbm(params, rng);
  RrSketchOptions options;
  options.sets_per_group = 200;
  options.deadline = 3;
  RrSketch sketch(&gg.graph, &gg.groups, options);
  for (int s = 0; s < sketch.num_sets(); ++s) {
    const auto& members = sketch.SetMembers(s);
    ASSERT_FALSE(members.empty());
    // The first member is the root; its group must match the set's group.
    EXPECT_EQ(gg.groups.GroupOf(members[0]), sketch.SetRootGroup(s));
  }
}

TEST(RrSketchTest, SetsPerGroupBalanced) {
  Rng rng(2);
  SbmParams params;
  params.num_nodes = 100;
  const GroupedGraph gg = GenerateSbm(params, rng);
  RrSketchOptions options;
  options.sets_per_group = 150;
  RrSketch sketch(&gg.graph, &gg.groups, options);
  EXPECT_EQ(sketch.num_sets(), 300);
  int per_group[2] = {0, 0};
  for (int s = 0; s < sketch.num_sets(); ++s) {
    per_group[sketch.SetRootGroup(s)]++;
  }
  EXPECT_EQ(per_group[0], 150);
  EXPECT_EQ(per_group[1], 150);
}

TEST(RrSketchTest, SurePathReverseReachability) {
  // Path 0 -> 1 -> 2 with sure edges, τ = ∞: RR set of root 2 is {2,1,0}.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 1.0).AddEdge(1, 2, 1.0);
  const Graph graph = builder.Build();
  const GroupAssignment groups = GroupAssignment::SingleGroup(3);
  RrSketchOptions options;
  options.sets_per_group = 50;
  RrSketch sketch(&graph, &groups, options);
  for (int s = 0; s < sketch.num_sets(); ++s) {
    const auto& members = sketch.SetMembers(s);
    const NodeId root = members[0];
    // With sure edges every ancestor of the root must be in the set.
    EXPECT_EQ(members.size(), static_cast<size_t>(root + 1));
  }
}

TEST(RrSketchTest, DeadlineBoundsSetRadius) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0).AddEdge(1, 2, 1.0).AddEdge(2, 3, 1.0);
  const Graph graph = builder.Build();
  const GroupAssignment groups = GroupAssignment::SingleGroup(4);
  RrSketchOptions options;
  options.sets_per_group = 100;
  options.deadline = 1;
  RrSketch sketch(&graph, &groups, options);
  for (int s = 0; s < sketch.num_sets(); ++s) {
    EXPECT_LE(sketch.SetMembers(s).size(), 2u);  // root + 1 hop
  }
}

// Tentpole: one sketch built at deadline τ answers any τ' <= τ EXACTLY —
// hop filtering reproduces the fresh τ' build bit for bit (same per-set
// coins, nested BFS).
TEST(RrSketchTest, EffectiveDeadlineFilteringMatchesAFreshSmallerBuild) {
  Rng rng(41);
  SbmParams params;
  params.num_nodes = 200;
  const GroupedGraph gg = GenerateSbm(params, rng);

  RrSketchOptions deep_options;
  deep_options.sets_per_group = 600;
  deep_options.deadline = 8;
  const RrSketch deep(&gg.graph, &gg.groups, deep_options);

  for (const int tau : {1, 3, 8}) {
    RrSketchOptions shallow_options = deep_options;
    shallow_options.deadline = tau;
    const RrSketch shallow(&gg.graph, &gg.groups, shallow_options);

    // Membership: the deep sketch filtered to tau is the shallow sketch.
    for (int s = 0; s < deep.num_sets(); ++s) {
      std::vector<NodeId> filtered;
      const auto& members = deep.SetMembers(s);
      const auto& hops = deep.SetMemberHops(s);
      for (size_t i = 0; i < members.size(); ++i) {
        if (hops[i] <= tau) filtered.push_back(members[i]);
      }
      // Both BFS orders are level order over the same coins.
      EXPECT_EQ(filtered, shallow.SetMembers(s)) << "set " << s << " tau "
                                                 << tau;
    }

    // Estimates and selections follow.
    RrSelectOptions select;
    select.deadline = tau;
    const std::vector<NodeId> seeds = {3, 50, 120, 180};
    EXPECT_EQ(deep.EstimateGroupCoverage(seeds, select),
              shallow.EstimateGroupCoverage(seeds));
    EXPECT_EQ(deep.SelectSeedsBudget(8, [](double z) { return z; }, select),
              shallow.SelectSeedsBudget(8, [](double z) { return z; }));
    EXPECT_EQ(deep.SelectSeedsCover(0.1, 50, select),
              shallow.SelectSeedsCover(0.1, 50));
  }
}

// Satellite: SelectSeeds* honor a candidate restriction — every pick comes
// from the candidate set, and the restricted optimum is found among them.
TEST(RrSketchTest, SelectionHonorsCandidateRestriction) {
  Rng rng(43);
  SbmParams params;
  params.num_nodes = 200;
  const GroupedGraph gg = GenerateSbm(params, rng);
  RrSketchOptions options;
  options.sets_per_group = 800;
  options.deadline = 10;
  const RrSketch sketch(&gg.graph, &gg.groups, options);

  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < 200; v += 3) candidates.push_back(v);
  candidates.push_back(0);  // duplicates are tolerated
  RrSelectOptions select;
  select.candidates = &candidates;

  const auto budget_seeds =
      sketch.SelectSeedsBudget(6, [](double z) { return z; }, select);
  EXPECT_EQ(budget_seeds.size(), 6u);
  for (const NodeId s : budget_seeds) {
    EXPECT_EQ(s % 3, 0) << "seed " << s << " is not a candidate";
  }

  const auto cover_seeds = sketch.SelectSeedsCover(0.1, 100, select);
  for (const NodeId s : cover_seeds) {
    EXPECT_EQ(s % 3, 0) << "seed " << s << " is not a candidate";
  }

  // Restricting to the unrestricted winners reproduces them.
  const auto free_seeds =
      sketch.SelectSeedsBudget(6, [](double z) { return z; });
  RrSelectOptions winners;
  winners.candidates = &free_seeds;
  EXPECT_EQ(sketch.SelectSeedsBudget(6, [](double z) { return z; }, winners),
            free_seeds);
}

TEST(RrSketchTest, EstimateAgreesWithMonteCarloOracle) {
  Rng rng(7);
  SbmParams params;
  params.num_nodes = 200;
  params.activation_probability = 0.1;
  const GroupedGraph gg = GenerateSbm(params, rng);

  RrSketchOptions rr_options;
  rr_options.sets_per_group = 8000;
  rr_options.deadline = 5;
  RrSketch sketch(&gg.graph, &gg.groups, rr_options);

  OracleOptions mc_options;
  mc_options.num_worlds = 4000;
  mc_options.deadline = 5;
  InfluenceOracle oracle(&gg.graph, &gg.groups, mc_options);

  const std::vector<NodeId> seeds = {3, 50, 120, 180};
  const GroupVector rr = sketch.EstimateGroupCoverage(seeds);
  const GroupVector mc = oracle.EstimateGroupCoverage(seeds);
  for (size_t g = 0; g < rr.size(); ++g) {
    // Both are unbiased estimators of the same quantity.
    EXPECT_NEAR(rr[g], mc[g], 0.15 * std::max(1.0, mc[g]))
        << "group " << g;
  }
}

TEST(RrSketchTest, BudgetSelectionCoversMoreThanRandom) {
  Rng rng(11);
  SbmParams params;
  params.num_nodes = 300;
  const GroupedGraph gg = GenerateSbm(params, rng);
  RrSketchOptions options;
  options.sets_per_group = 2000;
  options.deadline = 10;
  RrSketch sketch(&gg.graph, &gg.groups, options);

  const auto greedy_seeds =
      sketch.SelectSeedsBudget(10, [](double z) { return z; });
  ASSERT_EQ(greedy_seeds.size(), 10u);

  Rng pick(13);
  std::vector<NodeId> random_seeds;
  for (int i = 0; i < 10; ++i) {
    random_seeds.push_back(static_cast<NodeId>(pick.NextIndex(300)));
  }
  const double greedy_total =
      GroupVectorTotal(sketch.EstimateGroupCoverage(greedy_seeds));
  const double random_total =
      GroupVectorTotal(sketch.EstimateGroupCoverage(random_seeds));
  EXPECT_GT(greedy_total, random_total);
}

TEST(RrSketchTest, SelectionHasNoDuplicates) {
  Rng rng(17);
  SbmParams params;
  params.num_nodes = 150;
  const GroupedGraph gg = GenerateSbm(params, rng);
  RrSketchOptions options;
  options.sets_per_group = 500;
  RrSketch sketch(&gg.graph, &gg.groups, options);
  auto seeds = sketch.SelectSeedsBudget(20, [](double z) { return z; });
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(RrSketchTest, ConcaveSelectionReducesDisparity) {
  Rng rng(19);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  RrSketchOptions options;
  options.sets_per_group = 3000;
  options.deadline = 20;
  RrSketch sketch(&gg.graph, &gg.groups, options);

  const auto plain = sketch.SelectSeedsBudget(20, [](double z) { return z; });
  const auto fair =
      sketch.SelectSeedsBudget(20, [](double z) { return std::log1p(z); });

  auto disparity = [&](const std::vector<NodeId>& seeds) {
    const GroupVector cov = sketch.EstimateGroupCoverage(seeds);
    const double n0 = cov[0] / gg.groups.GroupSize(0);
    const double n1 = cov[1] / gg.groups.GroupSize(1);
    return std::abs(n0 - n1);
  };
  EXPECT_LT(disparity(fair), disparity(plain) + 1e-9);
}

TEST(RrSketchTest, CoverSelectionReachesAllGroupQuotas) {
  Rng rng(23);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  RrSketchOptions options;
  options.sets_per_group = 3000;
  options.deadline = 20;
  RrSketch sketch(&gg.graph, &gg.groups, options);

  const double quota = 0.15;
  const auto seeds = sketch.SelectSeedsCover(quota, /*max_seeds=*/200);
  const GroupVector cov = sketch.EstimateGroupCoverage(seeds);
  for (GroupId g = 0; g < gg.groups.num_groups(); ++g) {
    EXPECT_GE(cov[g] / gg.groups.GroupSize(g), quota - 0.02) << "group " << g;
  }
}

TEST(AdaptiveSizingTest, ShrinksWithLooserEpsilon) {
  Rng rng(31);
  SbmParams params;
  params.num_nodes = 200;
  const GroupedGraph gg = GenerateSbm(params, rng);
  RrSketchOptions base;
  base.deadline = 10;
  const int tight = ComputeAdaptiveSetsPerGroup(gg.graph, gg.groups, 10,
                                                /*epsilon=*/0.2, 0.1, base);
  const int loose = ComputeAdaptiveSetsPerGroup(gg.graph, gg.groups, 10,
                                                /*epsilon=*/0.5, 0.1, base);
  EXPECT_GT(tight, loose);
  EXPECT_GE(loose, 1);
}

TEST(AdaptiveSizingTest, AdaptiveSketchMatchesLargeFixedSketch) {
  Rng rng(37);
  SbmParams params;
  params.num_nodes = 200;
  const GroupedGraph gg = GenerateSbm(params, rng);
  RrSketchOptions base;
  base.deadline = 10;
  const int per_group = ComputeAdaptiveSetsPerGroup(gg.graph, gg.groups, 5,
                                                    0.5, 0.2, base);
  RrSketchOptions adaptive = base;
  adaptive.sets_per_group = per_group;
  RrSketch sketch(&gg.graph, &gg.groups, adaptive);
  const auto adaptive_seeds =
      sketch.SelectSeedsBudget(5, [](double z) { return z; });

  RrSketchOptions big = base;
  big.sets_per_group = 20000;
  big.seed = 999;  // independent reference sketch
  RrSketch reference(&gg.graph, &gg.groups, big);
  const auto reference_seeds =
      reference.SelectSeedsBudget(5, [](double z) { return z; });

  const double adaptive_value =
      GroupVectorTotal(reference.EstimateGroupCoverage(adaptive_seeds));
  const double reference_value =
      GroupVectorTotal(reference.EstimateGroupCoverage(reference_seeds));
  // Adaptive sizing must be within the (1 - 1/e - eps)-ish ballpark on an
  // independent evaluation sketch.
  EXPECT_GT(adaptive_value, 0.4 * reference_value);
}

TEST(AdaptiveSizingDeathTest, RejectsBadParameters) {
  Rng rng(1);
  SbmParams params;
  params.num_nodes = 50;
  const GroupedGraph gg = GenerateSbm(params, rng);
  RrSketchOptions base;
  EXPECT_DEATH(
      ComputeAdaptiveSetsPerGroup(gg.graph, gg.groups, 5, 1.5, 0.1, base),
      "epsilon");
  EXPECT_DEATH(
      ComputeAdaptiveSetsPerGroup(gg.graph, gg.groups, 5, 0.2, 0.0, base),
      "delta");
  EXPECT_DEATH(
      ComputeAdaptiveSetsPerGroup(gg.graph, gg.groups, 0, 0.2, 0.1, base),
      "budget");
}

TEST(RrSketchTest, DeterministicGivenSeed) {
  Rng rng(29);
  SbmParams params;
  params.num_nodes = 100;
  const GroupedGraph gg = GenerateSbm(params, rng);
  RrSketchOptions options;
  options.sets_per_group = 300;
  RrSketch a(&gg.graph, &gg.groups, options);
  RrSketch b(&gg.graph, &gg.groups, options);
  ASSERT_EQ(a.num_sets(), b.num_sets());
  for (int s = 0; s < a.num_sets(); ++s) {
    EXPECT_EQ(a.SetMembers(s), b.SetMembers(s));
  }
}

}  // namespace
}  // namespace tcim
