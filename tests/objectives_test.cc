#include "core/objectives.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tcim {
namespace {

TEST(TotalInfluenceObjectiveTest, SumsGroups) {
  TotalInfluenceObjective objective;
  EXPECT_DOUBLE_EQ(objective.Value({2.0, 3.0, 4.5}), 9.5);
  EXPECT_DOUBLE_EQ(objective.Value({}), 0.0);
}

TEST(ObjectiveGainTest, GainIsValueDifference) {
  TotalInfluenceObjective objective;
  EXPECT_DOUBLE_EQ(objective.Gain({1.0, 1.0}, {0.5, 2.0}), 2.5);
}

TEST(ConcaveSumObjectiveTest, IdentityEqualsTotal) {
  const GroupAssignment groups({0, 0, 1});
  ConcaveSumObjective objective(ConcaveFunction::Identity(), &groups);
  EXPECT_DOUBLE_EQ(objective.Value({2.0, 5.0}), 7.0);
}

TEST(ConcaveSumObjectiveTest, LogAppliedPerGroup) {
  const GroupAssignment groups({0, 1});
  ConcaveSumObjective objective(ConcaveFunction::Log(), &groups);
  EXPECT_DOUBLE_EQ(objective.Value({1.0, 3.0}),
                   std::log1p(1.0) + std::log1p(3.0));
}

TEST(ConcaveSumObjectiveTest, FavorsBalancedCoverage) {
  // Same total, balanced vs skewed: concavity must prefer balance.
  const GroupAssignment groups({0, 1});
  ConcaveSumObjective objective(ConcaveFunction::Log(), &groups);
  EXPECT_GT(objective.Value({5.0, 5.0}), objective.Value({9.0, 1.0}));
}

TEST(ConcaveSumObjectiveTest, WeightsScaleGroups) {
  const GroupAssignment groups({0, 1});
  ConcaveSumObjective::Options options;
  options.weights = {1.0, 2.0};
  ConcaveSumObjective objective(ConcaveFunction::Identity(), &groups, options);
  EXPECT_DOUBLE_EQ(objective.Value({3.0, 4.0}), 3.0 + 8.0);
}

TEST(ConcaveSumObjectiveTest, NormalizationDividesByGroupSize) {
  const GroupAssignment groups({0, 0, 0, 0, 1});  // sizes 4 and 1
  ConcaveSumObjective::Options options;
  options.normalize_by_group_size = true;
  ConcaveSumObjective objective(ConcaveFunction::Identity(), &groups, options);
  EXPECT_DOUBLE_EQ(objective.Value({2.0, 1.0}), 0.5 + 1.0);
}

TEST(ConcaveSumObjectiveTest, NameIncludesWrapper) {
  const GroupAssignment groups({0});
  ConcaveSumObjective objective(ConcaveFunction::Sqrt(), &groups);
  EXPECT_EQ(objective.name(), "concave_sum(sqrt)");
}

TEST(ConcaveSumObjectiveDeathTest, WrongWeightArityAborts) {
  const GroupAssignment groups({0, 1});
  ConcaveSumObjective::Options options;
  options.weights = {1.0};
  EXPECT_DEATH(
      ConcaveSumObjective(ConcaveFunction::Log(), &groups, options),
      "arity");
}

TEST(TruncatedQuotaObjectiveTest, TruncatesAtQuota) {
  const GroupAssignment groups({0, 0, 0, 0, 1, 1});  // sizes 4 and 2
  TruncatedQuotaObjective objective(0.5, &groups);
  // Group 0: 1/4 = 0.25 < 0.5; group 1: 2/2 = 1.0 -> truncated to 0.5.
  EXPECT_DOUBLE_EQ(objective.Value({1.0, 2.0}), 0.25 + 0.5);
}

TEST(TruncatedQuotaObjectiveTest, SaturationValueIsKQ) {
  const GroupAssignment groups({0, 1, 2});
  TruncatedQuotaObjective objective(0.2, &groups);
  EXPECT_DOUBLE_EQ(objective.SaturationValue(), 0.6);
}

TEST(TruncatedQuotaObjectiveTest, SaturatedExactlyWhenAllGroupsMeetQuota) {
  const GroupAssignment groups({0, 0, 1, 1});
  TruncatedQuotaObjective objective(0.5, &groups);
  EXPECT_DOUBLE_EQ(objective.Value({1.0, 1.0}), objective.SaturationValue());
  EXPECT_LT(objective.Value({1.0, 0.5}), objective.SaturationValue());
}

TEST(TruncatedQuotaObjectiveTest, ExtraCoverageBeyondQuotaIsWorthless) {
  // The Fig-3 mechanism: once a group reaches Q, more coverage there adds 0.
  const GroupAssignment groups({0, 0, 1, 1});
  TruncatedQuotaObjective objective(0.5, &groups);
  const double before = objective.Value({1.0, 0.0});
  EXPECT_DOUBLE_EQ(objective.Gain({1.0, 0.0}, {1.0, 0.0}), 0.0);
  EXPECT_GT(objective.Gain({1.0, 0.0}, {0.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(objective.Value({2.0, 0.0}), before);
}

TEST(TotalQuotaObjectiveTest, TruncatesTotalFraction) {
  TotalQuotaObjective objective(0.3, /*num_nodes=*/10);
  EXPECT_DOUBLE_EQ(objective.Value({1.0, 1.0}), 0.2);
  EXPECT_DOUBLE_EQ(objective.Value({2.0, 2.0}), 0.3);  // truncated
  EXPECT_DOUBLE_EQ(objective.SaturationValue(), 0.3);
}

TEST(TotalQuotaObjectiveDeathTest, RejectsBadQuota) {
  EXPECT_DEATH(TotalQuotaObjective(1.5, 10), "quota");
  const GroupAssignment groups({0});
  EXPECT_DEATH(TruncatedQuotaObjective(-0.1, &groups), "quota");
}

// ---------------------------------------------------------------------------
// Objective laws, parameterized over every objective type: nondecreasing in
// each coordinate, and diminishing gains as the base coverage grows — the
// properties RunGreedy's correctness (and CELF's staleness bound) rest on.
// ---------------------------------------------------------------------------

class ObjectiveLawsTest : public ::testing::TestWithParam<int> {
 protected:
  // Three groups with sizes 5, 3, 2.
  ObjectiveLawsTest() : groups_({0, 0, 0, 0, 0, 1, 1, 1, 2, 2}) {}

  std::unique_ptr<Objective> MakeObjective() const {
    switch (GetParam()) {
      case 0:
        return std::make_unique<TotalInfluenceObjective>();
      case 1:
        return std::make_unique<ConcaveSumObjective>(ConcaveFunction::Log(),
                                                     &groups_);
      case 2:
        return std::make_unique<ConcaveSumObjective>(ConcaveFunction::Sqrt(),
                                                     &groups_);
      case 3: {
        ConcaveSumObjective::Options options;
        options.weights = {1.0, 2.0, 4.0};
        return std::make_unique<ConcaveSumObjective>(
            ConcaveFunction::AlphaFair(2.0), &groups_, options);
      }
      case 4: {
        ConcaveSumObjective::Options options;
        options.normalize_by_group_size = true;
        return std::make_unique<ConcaveSumObjective>(ConcaveFunction::Log(),
                                                     &groups_, options);
      }
      case 5:
        return std::make_unique<TruncatedQuotaObjective>(0.4, &groups_);
      default:
        return std::make_unique<TotalQuotaObjective>(0.5, 10);
    }
  }

  GroupAssignment groups_;
};

TEST_P(ObjectiveLawsTest, NondecreasingInEachCoordinate) {
  const auto objective = MakeObjective();
  Rng rng(123 + GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    GroupVector base = {rng.Uniform(0, 4), rng.Uniform(0, 2),
                        rng.Uniform(0, 1.5)};
    for (size_t g = 0; g < base.size(); ++g) {
      GroupVector bumped = base;
      bumped[g] += rng.Uniform(0, 1);
      EXPECT_GE(objective->Value(bumped), objective->Value(base) - 1e-12);
    }
  }
}

TEST_P(ObjectiveLawsTest, GainsDiminishInBaseCoverage) {
  const auto objective = MakeObjective();
  Rng rng(456 + GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    GroupVector small = {rng.Uniform(0, 2), rng.Uniform(0, 1),
                         rng.Uniform(0, 0.8)};
    GroupVector large = small;
    for (double& c : large) c += rng.Uniform(0, 2);
    GroupVector marginal = {rng.Uniform(0, 1), rng.Uniform(0, 1),
                            rng.Uniform(0, 0.5)};
    EXPECT_GE(objective->Gain(small, marginal),
              objective->Gain(large, marginal) - 1e-12);
  }
}

TEST_P(ObjectiveLawsTest, ZeroMarginalHasZeroGain) {
  const auto objective = MakeObjective();
  const GroupVector base = {1.0, 0.5, 0.2};
  const GroupVector zero = {0.0, 0.0, 0.0};
  EXPECT_NEAR(objective->Gain(base, zero), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllObjectives, ObjectiveLawsTest,
                         ::testing::Range(0, 7));

}  // namespace
}  // namespace tcim
