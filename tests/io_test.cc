#include "graph/io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace tcim {
namespace {

TEST(ParseEdgeListTest, BasicDirectedEdges) {
  const auto graph = ParseEdgeList("0 1 0.5\n1 2 0.25\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 3);
  EXPECT_EQ(graph->num_edges(), 2);
  EXPECT_NEAR(graph->OutEdges(0)[0].probability, 0.5, 1e-6);
}

TEST(ParseEdgeListTest, CommentsAndBlankLinesSkipped) {
  const auto graph = ParseEdgeList("# header\n\n0 1\n  # indented comment\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 1);
}

TEST(ParseEdgeListTest, DefaultProbabilityApplied) {
  EdgeListOptions options;
  options.default_probability = 0.33;
  const auto graph = ParseEdgeList("0 1\n", options);
  ASSERT_TRUE(graph.ok());
  EXPECT_NEAR(graph->OutEdges(0)[0].probability, 0.33, 1e-6);
}

TEST(ParseEdgeListTest, UndirectedAddsBothDirections) {
  EdgeListOptions options;
  options.undirected = true;
  const auto graph = ParseEdgeList("0 1 0.5\n", options);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 2);
  EXPECT_EQ(graph->OutDegree(0), 1);
  EXPECT_EQ(graph->OutDegree(1), 1);
}

TEST(ParseEdgeListTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseEdgeList("0\n").ok());
  EXPECT_FALSE(ParseEdgeList("0 1 2 3\n").ok());
  EXPECT_FALSE(ParseEdgeList("a b\n").ok());
  EXPECT_FALSE(ParseEdgeList("0 1 1.5\n").ok());  // probability > 1
  EXPECT_FALSE(ParseEdgeList("0 0\n").ok());      // self-loop
  EXPECT_FALSE(ParseEdgeList("-1 0\n").ok());     // negative id
}

TEST(ParseEdgeListTest, ErrorMessagesIncludeLineNumber) {
  const auto result = ParseEdgeList("0 1\nbroken\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(EdgeListRoundTripTest, SerializeThenParse) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 0.5).AddEdge(2, 3, 0.125).AddEdge(1, 0, 0.75);
  const Graph original = builder.Build();
  const auto parsed = ParseEdgeList(SerializeEdgeList(original));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->num_edges(), original.num_edges());
  for (EdgeId e = 0; e < original.num_edges(); ++e) {
    EXPECT_EQ(parsed->EdgeSource(e), original.EdgeSource(e));
    EXPECT_EQ(parsed->EdgeTarget(e), original.EdgeTarget(e));
    EXPECT_NEAR(parsed->EdgeProbability(e), original.EdgeProbability(e), 1e-6);
  }
}

TEST(EdgeListFileTest, SaveAndLoad) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 0.5);
  const std::string path = testing::TempDir() + "/tcim_io_test.edges";
  ASSERT_TRUE(SaveEdgeList(builder.Build(), path).ok());
  const auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_edges(), 1);
  std::remove(path.c_str());
}

TEST(EdgeListFileTest, MissingFileIsIoError) {
  const auto result = LoadEdgeList("/definitely/not/a/file");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(ParseGroupFileTest, ParsesAssignments) {
  const auto groups = ParseGroupFile("0 0\n1 1\n2 0\n", 3);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->num_groups(), 2);
  EXPECT_EQ(groups->GroupOf(2), 0);
}

TEST(ParseGroupFileTest, MissingNodeIsError) {
  EXPECT_FALSE(ParseGroupFile("0 0\n", 2).ok());
}

TEST(ParseGroupFileTest, OutOfRangeNodeIsError) {
  EXPECT_FALSE(ParseGroupFile("0 0\n5 0\n", 2).ok());
}

TEST(GroupsRoundTripTest, SerializeThenParse) {
  const GroupAssignment original({0, 1, 1, 2, 0});
  const auto parsed = ParseGroupFile(SerializeGroups(original), 5);
  ASSERT_TRUE(parsed.ok());
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(parsed->GroupOf(v), original.GroupOf(v));
  }
}

TEST(GroupsFileTest, SaveAndLoad) {
  const GroupAssignment original({0, 0, 1});
  const std::string path = testing::TempDir() + "/tcim_groups_test.txt";
  ASSERT_TRUE(SaveGroups(original, path).ok());
  const auto loaded = LoadGroupFile(path, 3);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_groups(), 2);
  std::remove(path.c_str());
}

TEST(ParseSeedFileTest, ParsesIdsInOrder) {
  const auto seeds = ParseSeedFile("# seeds\n3\n1\n2\n", 5);
  ASSERT_TRUE(seeds.ok());
  EXPECT_EQ(*seeds, (std::vector<NodeId>{3, 1, 2}));
}

TEST(ParseSeedFileTest, EmptyFileIsEmptySet) {
  const auto seeds = ParseSeedFile("# nothing\n", 5);
  ASSERT_TRUE(seeds.ok());
  EXPECT_TRUE(seeds->empty());
}

TEST(ParseSeedFileTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseSeedFile("1 2\n", 5).ok());   // two fields
  EXPECT_FALSE(ParseSeedFile("abc\n", 5).ok());   // non-numeric
  EXPECT_FALSE(ParseSeedFile("-1\n", 5).ok());    // negative
  EXPECT_FALSE(ParseSeedFile("7\n", 5).ok());     // out of range
}

TEST(ParseSeedFileTest, DuplicatesPreserved) {
  const auto seeds = ParseSeedFile("2\n2\n", 5);
  ASSERT_TRUE(seeds.ok());
  EXPECT_EQ(seeds->size(), 2u);
}

TEST(SeedFileTest, LoadFromDisk) {
  const std::string path = testing::TempDir() + "/tcim_seeds_test.txt";
  ASSERT_TRUE(WriteStringToFile("0\n2\n", path).ok());
  const auto seeds = LoadSeedFile(path, 3);
  ASSERT_TRUE(seeds.ok());
  EXPECT_EQ(*seeds, (std::vector<NodeId>{0, 2}));
  std::remove(path.c_str());
}

TEST(ReadWriteFileTest, RoundTripsBinaryContent) {
  const std::string path = testing::TempDir() + "/tcim_raw_test.bin";
  const std::string payload = std::string("abc\0def\nxyz", 11);
  ASSERT_TRUE(WriteStringToFile(payload, path).ok());
  const auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tcim
