// WorldEnsemble must be a faithful materialization of WorldSampler's
// implicit worlds: same live edges in the same order, same delays — so an
// oracle traversing an ensemble returns bit-identical results to one
// hashing coins on the fly. That equivalence is what lets api/engine.h
// swap cached ensembles under every solve without changing any answer.

#include "sim/world_ensemble.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "sim/arrival_oracle.h"
#include "sim/influence_oracle.h"

namespace tcim {
namespace {

class WorldEnsembleTest : public ::testing::Test {
 protected:
  WorldEnsembleTest() : gg_(MakeGraph()) {}
  static GroupedGraph MakeGraph() {
    Rng rng(7);
    return datasets::SyntheticDefault(rng);
  }

  static constexpr int kWorlds = 25;
  static constexpr uint64_t kSeed = 0xfeedull;

  GroupedGraph gg_;
};

// The ensemble's per-node live lists must equal the sampler's coin flips,
// edge for edge, in graph out-edge order.
void ExpectMatchesSampler(const Graph& graph, const WorldEnsemble& ensemble,
                          DiffusionModel model) {
  const WorldSampler sampler(&graph, model, ensemble.seed());
  uint64_t total = 0;
  for (int world = 0; world < ensemble.num_worlds(); ++world) {
    const uint32_t w = static_cast<uint32_t>(world);
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      std::vector<NodeId> expected;
      for (const AdjacentEdge& edge : graph.OutEdges(v)) {
        if (sampler.IsLive(w, edge.edge_id)) expected.push_back(edge.node);
      }
      const auto live = ensemble.OutEdges(w, v);
      ASSERT_EQ(live.size(), expected.size())
          << "world " << world << " node " << v;
      for (size_t i = 0; i < live.size(); ++i) {
        EXPECT_EQ(live[i].target, expected[i]);
        EXPECT_EQ(live[i].delay, 1);  // unit delays
      }
      total += live.size();
    }
  }
  EXPECT_EQ(ensemble.total_live_edges(), total);
}

TEST_F(WorldEnsembleTest, IndependentCascadeMatchesSamplerCoins) {
  WorldEnsembleOptions options;
  options.num_worlds = kWorlds;
  options.model = DiffusionModel::kIndependentCascade;
  options.seed = kSeed;
  const WorldEnsemble ensemble(&gg_.graph, options);
  ExpectMatchesSampler(gg_.graph, ensemble,
                       DiffusionModel::kIndependentCascade);
  EXPECT_GT(ensemble.total_live_edges(), 0u);
  EXPECT_GT(ensemble.ApproxBytes(), 0u);
}

TEST_F(WorldEnsembleTest, LinearThresholdMatchesSamplerChoices) {
  WorldEnsembleOptions options;
  options.num_worlds = kWorlds;
  options.model = DiffusionModel::kLinearThreshold;
  options.seed = kSeed;
  const WorldEnsemble ensemble(&gg_.graph, options);
  ExpectMatchesSampler(gg_.graph, ensemble, DiffusionModel::kLinearThreshold);
  // LT: at most one live in-edge per node per world.
  EXPECT_LE(ensemble.total_live_edges(),
            static_cast<uint64_t>(kWorlds) * gg_.graph.num_nodes());
}

TEST_F(WorldEnsembleTest, GeometricDelaysMatchSamplerUpToCap) {
  const int cap = 11;
  const DelaySampler delays = DelaySampler::Geometric(0.4, kSeed ^ 0xd31a5ull);
  WorldEnsembleOptions options;
  options.num_worlds = kWorlds;
  options.seed = kSeed;
  options.delays = delays;
  options.delay_cap = cap;
  const WorldEnsemble ensemble(&gg_.graph, options);
  const WorldSampler sampler(&gg_.graph, options.model, kSeed);
  for (int world = 0; world < kWorlds; ++world) {
    const uint32_t w = static_cast<uint32_t>(world);
    for (NodeId v = 0; v < gg_.graph.num_nodes(); ++v) {
      size_t i = 0;
      for (const AdjacentEdge& edge : gg_.graph.OutEdges(v)) {
        if (!sampler.IsLive(w, edge.edge_id)) continue;
        const auto live = ensemble.OutEdges(w, v);
        ASSERT_LT(i, live.size());
        EXPECT_EQ(live[i].delay, delays.Delay(w, edge.edge_id, cap));
        ++i;
      }
    }
  }
}

TEST_F(WorldEnsembleTest, InfluenceOracleIsBitIdenticalWithEnsemble) {
  OracleOptions options;
  options.num_worlds = kWorlds;
  options.deadline = 12;
  options.seed = kSeed;

  OracleOptions with_worlds = options;
  WorldEnsembleOptions ensemble_options;
  ensemble_options.num_worlds = kWorlds;
  ensemble_options.model = options.model;
  ensemble_options.seed = kSeed;
  with_worlds.worlds =
      std::make_shared<const WorldEnsemble>(&gg_.graph, ensemble_options);

  InfluenceOracle plain(&gg_.graph, &gg_.groups, options);
  InfluenceOracle materialized(&gg_.graph, &gg_.groups, with_worlds);

  for (const NodeId candidate : {3, 77, 250, 499}) {
    EXPECT_EQ(materialized.MarginalGain(candidate),
              plain.MarginalGain(candidate))
        << "candidate " << candidate;
  }
  for (const NodeId seed : {10, 20, 30}) {
    EXPECT_EQ(materialized.AddSeed(seed), plain.AddSeed(seed));
  }
  EXPECT_EQ(materialized.group_coverage(), plain.group_coverage());
  const std::vector<NodeId> set = {1, 2, 3, 400};
  EXPECT_EQ(materialized.EstimateGroupCoverage(set),
            plain.EstimateGroupCoverage(set));
}

TEST_F(WorldEnsembleTest, ArrivalOracleIsBitIdenticalWithEnsemble) {
  const int deadline = 10;
  const double meeting = 0.6;
  const DelaySampler delays =
      DelaySampler::Geometric(meeting, kSeed ^ 0xd31a5ull);

  ArrivalOracleOptions options;
  options.num_worlds = kWorlds;
  options.seed = kSeed;

  ArrivalOracleOptions with_worlds = options;
  WorldEnsembleOptions ensemble_options;
  ensemble_options.num_worlds = kWorlds;
  ensemble_options.model = options.model;
  ensemble_options.seed = kSeed;
  ensemble_options.delays = delays;
  ensemble_options.delay_cap = deadline + 1;
  with_worlds.worlds =
      std::make_shared<const WorldEnsemble>(&gg_.graph, ensemble_options);

  ArrivalOracle plain(&gg_.graph, &gg_.groups, TemporalWeight::Step(deadline),
                      delays, options);
  ArrivalOracle materialized(&gg_.graph, &gg_.groups,
                             TemporalWeight::Step(deadline), delays,
                             with_worlds);

  for (const NodeId candidate : {5, 120, 499}) {
    EXPECT_EQ(materialized.MarginalGain(candidate),
              plain.MarginalGain(candidate))
        << "candidate " << candidate;
  }
  for (const NodeId seed : {10, 200}) {
    EXPECT_EQ(materialized.AddSeed(seed), plain.AddSeed(seed));
  }
  for (const NodeId v : {0, 42, 365}) {
    EXPECT_EQ(materialized.ArrivalTime(0, v), plain.ArrivalTime(0, v));
  }
}

TEST_F(WorldEnsembleTest, EstimateBytesTracksActualFootprint) {
  WorldEnsembleOptions options;
  options.num_worlds = kWorlds;
  options.seed = kSeed;
  const WorldEnsemble ensemble(&gg_.graph, options);
  const size_t estimate = WorldEnsemble::EstimateBytes(
      gg_.graph, options.model, options.num_worlds);
  // The estimate is an expectation; it must be the right order of magnitude
  // (here: within 2x of the realized footprint).
  EXPECT_GT(estimate, ensemble.ApproxBytes() / 2);
  EXPECT_LT(estimate, ensemble.ApproxBytes() * 2);
}

}  // namespace
}  // namespace tcim
