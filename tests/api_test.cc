// Facade tests: tcim::Solve() must be a pure re-packaging of the legacy
// direct-call paths — identical seed sets for P1, P4, P2, P6 and maximin on
// the synthetic graph — and every invalid spec must come back as a precise
// Status, never a crash.

#include "api/tcim.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/experiment.h"
#include "core/maximin.h"
#include "graph/datasets.h"

namespace tcim {
namespace {

class ApiFacadeTest : public ::testing::Test {
 protected:
  ApiFacadeTest() : gg_(MakeGraph()) {
    options_.num_worlds = 60;
    legacy_.deadline = kDeadline;
    legacy_.num_worlds = 60;
  }
  static GroupedGraph MakeGraph() {
    Rng rng(7);
    return datasets::SyntheticDefault(rng);
  }

  static constexpr int kDeadline = 20;

  GroupedGraph gg_;
  SolveOptions options_;
  ExperimentConfig legacy_;  // same worlds/seeds as options_ by default
};

TEST_F(ApiFacadeTest, BudgetMatchesLegacyPath) {
  const ExperimentOutcome legacy =
      RunBudgetExperiment(gg_.graph, gg_.groups, legacy_, /*budget=*/10);
  const Result<Solution> facade =
      Solve(gg_.graph, gg_.groups,
            ProblemSpec::Budget(/*budget=*/10, kDeadline), options_);
  ASSERT_TRUE(facade.ok()) << facade.status().ToString();
  EXPECT_EQ(facade->seeds, legacy.selection.seeds);
  EXPECT_DOUBLE_EQ(facade->objective_value, legacy.selection.objective_value);
  ASSERT_TRUE(facade->evaluation.has_value());
  ASSERT_EQ(facade->evaluation->coverage.size(), legacy.report.coverage.size());
  for (size_t g = 0; g < legacy.report.coverage.size(); ++g) {
    EXPECT_NEAR(facade->evaluation->coverage[g], legacy.report.coverage[g],
                1e-9);
  }
  EXPECT_EQ(facade->problem, "budget");
  EXPECT_EQ(facade->solver, "greedy");
  EXPECT_EQ(facade->trace.size(), facade->seeds.size());
}

TEST_F(ApiFacadeTest, FairBudgetMatchesLegacyPath) {
  const ConcaveFunction h = ConcaveFunction::Log();
  const ExperimentOutcome legacy =
      RunBudgetExperiment(gg_.graph, gg_.groups, legacy_, /*budget=*/10, &h);
  const Result<Solution> facade =
      Solve(gg_.graph, gg_.groups, ProblemSpec::FairBudget(10, kDeadline),
            options_);
  ASSERT_TRUE(facade.ok()) << facade.status().ToString();
  EXPECT_EQ(facade->seeds, legacy.selection.seeds);
}

TEST_F(ApiFacadeTest, CoverMatchesLegacyPath) {
  const ExperimentOutcome legacy = RunCoverExperiment(
      gg_.graph, gg_.groups, legacy_, /*quota=*/0.15, /*fair=*/false);
  const Result<Solution> facade = Solve(
      gg_.graph, gg_.groups, ProblemSpec::Cover(0.15, kDeadline), options_);
  ASSERT_TRUE(facade.ok()) << facade.status().ToString();
  EXPECT_EQ(facade->seeds, legacy.selection.seeds);
  EXPECT_EQ(facade->target_reached, legacy.selection.target_reached);
}

TEST_F(ApiFacadeTest, FairCoverMatchesLegacyPath) {
  const ExperimentOutcome legacy = RunCoverExperiment(
      gg_.graph, gg_.groups, legacy_, /*quota=*/0.15, /*fair=*/true);
  const Result<Solution> facade =
      Solve(gg_.graph, gg_.groups, ProblemSpec::FairCover(0.15, kDeadline),
            options_);
  ASSERT_TRUE(facade.ok()) << facade.status().ToString();
  EXPECT_EQ(facade->seeds, legacy.selection.seeds);
  EXPECT_EQ(facade->target_reached, legacy.selection.target_reached);
}

TEST_F(ApiFacadeTest, MaximinMatchesLegacyPath) {
  InfluenceOracle oracle(&gg_.graph, &gg_.groups,
                         SelectionOracleOptions(legacy_));
  MaximinOptions maximin;
  maximin.budget = 5;
  const MaximinResult legacy = SolveMaximinTcim(oracle, maximin);

  const Result<Solution> facade = Solve(
      gg_.graph, gg_.groups, ProblemSpec::Maximin(5, kDeadline), options_);
  ASSERT_TRUE(facade.ok()) << facade.status().ToString();
  EXPECT_EQ(facade->seeds, legacy.seeds);
  EXPECT_DOUBLE_EQ(facade->objective_value, legacy.min_group_utility);
  EXPECT_EQ(facade->solver, "saturate");
  EXPECT_EQ(facade->diagnostics.probes, legacy.probes);
}

TEST_F(ApiFacadeTest, BaselineSolverMatchesDirectHeuristic) {
  ProblemSpec spec = ProblemSpec::Budget(8, kDeadline);
  spec.solver = "degree";
  const Result<Solution> facade = Solve(gg_.graph, gg_.groups, spec, options_);
  ASSERT_TRUE(facade.ok()) << facade.status().ToString();
  EXPECT_EQ(facade->seeds, TopDegreeSeeds(gg_.graph, 8));
  // With evaluation on (the default) no selection oracle is sampled; the
  // coverage numbers are backfilled from the evaluation report.
  ASSERT_TRUE(facade->evaluation.has_value());
  EXPECT_EQ(facade->coverage, facade->evaluation->coverage);
  EXPECT_GT(facade->objective_value, 0.0);

  // With evaluation off the baseline replays its seeds through the
  // selection oracle instead, yielding estimates and a per-seed trace.
  SolveOptions no_eval = options_;
  no_eval.evaluate = false;
  const Result<Solution> estimated =
      Solve(gg_.graph, gg_.groups, spec, no_eval);
  ASSERT_TRUE(estimated.ok()) << estimated.status().ToString();
  EXPECT_EQ(estimated->seeds, facade->seeds);
  EXPECT_EQ(estimated->trace.size(), 8u);
  EXPECT_GT(estimated->objective_value, 0.0);
  EXPECT_FALSE(estimated->evaluation.has_value());
}

TEST_F(ApiFacadeTest, ArrivalOracleStepWeightMatchesMonteCarloSemantics) {
  // The arrival backend with a step weight solves the same problem shape;
  // worlds differ, so just require a sane, evaluated solution.
  ProblemSpec spec = ProblemSpec::Budget(5, /*deadline=*/10);
  spec.oracle = "arrival";
  const Result<Solution> solution =
      Solve(gg_.graph, gg_.groups, spec, options_);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_EQ(solution->seeds.size(), 5u);
  EXPECT_GT(solution->objective_value, 0.0);
  EXPECT_EQ(solution->oracle, "arrival");
  ASSERT_TRUE(solution->evaluation.has_value());
  EXPECT_GT(solution->evaluation->total, 0.0);
}

TEST_F(ApiFacadeTest, EvaluateSeedsMatchesLegacyEvaluation) {
  const std::vector<NodeId> seeds = {0, 5, 17};
  const GroupUtilityReport legacy =
      EvaluateSeedSet(gg_.graph, gg_.groups, seeds, legacy_);
  const Result<GroupUtilityReport> facade = EvaluateSeeds(
      gg_.graph, gg_.groups, seeds, ProblemSpec::Budget(3, kDeadline),
      options_);
  ASSERT_TRUE(facade.ok()) << facade.status().ToString();
  EXPECT_DOUBLE_EQ(facade->total, legacy.total);
  EXPECT_DOUBLE_EQ(facade->disparity, legacy.disparity);
}

// --- Error paths: every bad input is a Status, never a crash. --------------

TEST_F(ApiFacadeTest, NegativeBudgetIsInvalidArgument) {
  const Result<Solution> result = Solve(
      gg_.graph, gg_.groups, ProblemSpec::Budget(-3, kDeadline), options_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("-3"), std::string::npos);
}

TEST_F(ApiFacadeTest, BudgetBeyondPopulationIsInvalidArgument) {
  const Result<Solution> result =
      Solve(gg_.graph, gg_.groups,
            ProblemSpec::Budget(gg_.graph.num_nodes() + 1, kDeadline),
            options_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ApiFacadeTest, QuotaOutsideUnitIntervalIsInvalidArgument) {
  for (const double quota : {0.0, -0.5, 1.5}) {
    const Result<Solution> result = Solve(
        gg_.graph, gg_.groups, ProblemSpec::Cover(quota, kDeadline), options_);
    ASSERT_FALSE(result.ok()) << "quota=" << quota;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(ApiFacadeTest, UnknownSolverListsRegisteredNames) {
  ProblemSpec spec = ProblemSpec::Budget(5, kDeadline);
  spec.solver = "simulated_annealing";
  const Result<Solution> result = Solve(gg_.graph, gg_.groups, spec, options_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("simulated_annealing"),
            std::string::npos);
  // The message must name what IS available.
  EXPECT_NE(result.status().message().find("greedy"), std::string::npos);
  EXPECT_NE(result.status().message().find("saturate"), std::string::npos);
}

TEST_F(ApiFacadeTest, SolverProblemMismatchIsInvalidArgument) {
  ProblemSpec spec = ProblemSpec::Maximin(5, kDeadline);
  spec.solver = "degree";  // baselines cannot do maximin
  const Result<Solution> result = Solve(gg_.graph, gg_.groups, spec, options_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("maximin"), std::string::npos);
}

TEST_F(ApiFacadeTest, UnknownOracleIsInvalidArgument) {
  ProblemSpec spec = ProblemSpec::Budget(5, kDeadline);
  spec.oracle = "quantum";
  const Result<Solution> result = Solve(gg_.graph, gg_.groups, spec, options_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("montecarlo"), std::string::npos);
}

TEST_F(ApiFacadeTest, ArrivalOracleNeedsFiniteDeadline) {
  ProblemSpec spec = ProblemSpec::Budget(5, kNoDeadline);
  spec.oracle = "arrival";
  const Result<Solution> result = Solve(gg_.graph, gg_.groups, spec, options_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ApiFacadeTest, WrongWeightArityIsInvalidArgument) {
  ProblemSpec spec = ProblemSpec::FairBudget(5, kDeadline);
  spec.group_policy.weights = {1.0, 2.0, 3.0};  // graph has 2 groups
  const Result<Solution> result = Solve(gg_.graph, gg_.groups, spec, options_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("2 groups"), std::string::npos);
}

TEST_F(ApiFacadeTest, BadSolveOptionsAreInvalidArgument) {
  SolveOptions bad = options_;
  bad.num_worlds = 0;
  EXPECT_FALSE(
      Solve(gg_.graph, gg_.groups, ProblemSpec::Budget(5, kDeadline), bad)
          .ok());

  bad = options_;
  bad.stochastic_epsilon = -0.1;
  EXPECT_FALSE(
      Solve(gg_.graph, gg_.groups, ProblemSpec::Budget(5, kDeadline), bad)
          .ok());

  const std::vector<NodeId> out_of_range = {gg_.graph.num_nodes() + 7};
  bad = options_;
  bad.candidates = &out_of_range;
  const Result<Solution> result =
      Solve(gg_.graph, gg_.groups, ProblemSpec::Budget(5, kDeadline), bad);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("outside"), std::string::npos);
}

TEST_F(ApiFacadeTest, EvaluateSeedsIgnoresSolverOnlyFields) {
  // A pure audit must not reject because of solver-only spec fields: the
  // default budget (30) can exceed a tiny audited graph's node count.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);
  const Graph tiny = builder.Build();
  const GroupAssignment tiny_groups = GroupAssignment::SingleGroup(4);
  ProblemSpec spec;  // defaults: budget=30 > 4 nodes
  spec.deadline = kDeadline;
  const Result<GroupUtilityReport> report =
      EvaluateSeeds(tiny, tiny_groups, {0}, spec, options_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->total, 0.0);
}

TEST_F(ApiFacadeTest, EvaluateSeedsRejectsOutOfRangeSeeds) {
  const std::vector<NodeId> seeds = {0, -2};
  const Result<GroupUtilityReport> result = EvaluateSeeds(
      gg_.graph, gg_.groups, seeds, ProblemSpec::Budget(2, kDeadline),
      options_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("-2"), std::string::npos);
}

// --- Registry. --------------------------------------------------------------

TEST(SolverRegistryTest, BuiltinSolversAreRegistered) {
  const std::vector<std::string> names =
      SolverRegistry::Global().RegisteredNames();
  for (const char* expected :
       {"greedy", "saturate", "degree", "degree_discount", "pagerank",
        "random", "group_proportional_degree"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing solver: " << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(SolverRegistryTest, DuplicateRegistrationIsAnError) {
  class DuplicateGreedy : public Solver {
   public:
    std::string name() const override { return "greedy"; }
    std::string description() const override { return "imposter"; }
    bool Supports(ProblemKind) const override { return true; }
    Result<Solution> Run(SolverContext&) const override {
      return InternalError("never runs");
    }
  };
  const Status status =
      SolverRegistry::Global().Register(std::make_unique<DuplicateGreedy>());
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("already registered"), std::string::npos);
}

TEST(SolverRegistryTest, ListSolversMentionsEverySolverAndProblem) {
  const std::string listing = SolverRegistry::Global().ListSolvers();
  EXPECT_NE(listing.find("greedy"), std::string::npos);
  EXPECT_NE(listing.find("maximin"), std::string::npos);
  EXPECT_NE(listing.find("fair_cover"), std::string::npos);
}

TEST(SolverRegistryTest, DefaultSolverNames) {
  EXPECT_STREQ(DefaultSolverName(ProblemKind::kBudget), "greedy");
  EXPECT_STREQ(DefaultSolverName(ProblemKind::kFairCover), "greedy");
  EXPECT_STREQ(DefaultSolverName(ProblemKind::kMaximin), "saturate");
}

// --- ProblemSpec parsing / CLI bridge. --------------------------------------

TEST(ProblemKindTest, ParseAcceptsNamesAndPaperLabels) {
  EXPECT_EQ(*ParseProblemKind("budget"), ProblemKind::kBudget);
  EXPECT_EQ(*ParseProblemKind("p1"), ProblemKind::kBudget);
  EXPECT_EQ(*ParseProblemKind("fair_budget"), ProblemKind::kFairBudget);
  EXPECT_EQ(*ParseProblemKind("p4"), ProblemKind::kFairBudget);
  EXPECT_EQ(*ParseProblemKind("cover"), ProblemKind::kCover);
  EXPECT_EQ(*ParseProblemKind("p2"), ProblemKind::kCover);
  EXPECT_EQ(*ParseProblemKind("fair_cover"), ProblemKind::kFairCover);
  EXPECT_EQ(*ParseProblemKind("p6"), ProblemKind::kFairCover);
  EXPECT_EQ(*ParseProblemKind("maximin"), ProblemKind::kMaximin);
  const Result<ProblemKind> bad = ParseProblemKind("p3");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("p3"), std::string::npos);
}

TEST(SpecFlagsTest, FlagsParseIntoValidatedSpec) {
  FlagParser flags;
  AddProblemSpecFlags(flags);
  const char* argv[] = {"--problem=fair_cover", "--quota=0.3", "--tau=7",
                        "--oracle=montecarlo"};
  ASSERT_TRUE(flags.Parse(4, argv).ok());
  const Result<ProblemSpec> spec = ProblemSpecFromFlags(flags);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->kind, ProblemKind::kFairCover);
  EXPECT_DOUBLE_EQ(spec->quota, 0.3);
  EXPECT_EQ(spec->deadline, 7);
}

TEST(SpecFlagsTest, NonPositiveTauMeansNoDeadline) {
  FlagParser flags;
  AddProblemSpecFlags(flags);
  const char* argv[] = {"--tau=0"};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  const Result<ProblemSpec> spec = ProblemSpecFromFlags(flags);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->deadline, kNoDeadline);
}

TEST(SpecFlagsTest, ChoiceFlagRejectsUnknownValueListingChoices) {
  FlagParser flags;
  AddProblemSpecFlags(flags);
  const char* argv[] = {"--problem=p7"};
  const Status status = flags.Parse(1, argv);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("p7"), std::string::npos);
  EXPECT_NE(status.message().find("maximin"), std::string::npos);
}

TEST(SpecFlagsTest, BadPowerAlphaIsInvalidArgument) {
  FlagParser flags;
  AddProblemSpecFlags(flags);
  const char* argv[] = {"--h=power", "--alpha=1.5"};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  const Result<ProblemSpec> spec = ProblemSpecFromFlags(flags);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("alpha"), std::string::npos);
}

}  // namespace
}  // namespace tcim
