#include "sim/temporal.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tcim {
namespace {

TEST(TemporalWeightTest, StepIsOneUpToDeadline) {
  const TemporalWeight w = TemporalWeight::Step(3);
  EXPECT_DOUBLE_EQ(w(0), 1.0);
  EXPECT_DOUBLE_EQ(w(3), 1.0);
  EXPECT_DOUBLE_EQ(w(4), 0.0);
  EXPECT_EQ(w.horizon(), 3);
  EXPECT_TRUE(w.IsStep());
}

TEST(TemporalWeightTest, StepZeroDeadlineCoversOnlySeeds) {
  const TemporalWeight w = TemporalWeight::Step(0);
  EXPECT_DOUBLE_EQ(w(0), 1.0);
  EXPECT_DOUBLE_EQ(w(1), 0.0);
}

TEST(TemporalWeightTest, ExponentialDiscountValues) {
  const TemporalWeight w = TemporalWeight::ExponentialDiscount(0.5, 4);
  EXPECT_DOUBLE_EQ(w(0), 1.0);
  EXPECT_DOUBLE_EQ(w(1), 0.5);
  EXPECT_DOUBLE_EQ(w(3), 0.125);
  EXPECT_DOUBLE_EQ(w(5), 0.0);  // beyond horizon
  EXPECT_FALSE(w.IsStep());
}

TEST(TemporalWeightTest, GammaOneIsStepShaped) {
  const TemporalWeight w = TemporalWeight::ExponentialDiscount(1.0, 5);
  for (int t = 0; t <= 5; ++t) EXPECT_DOUBLE_EQ(w(t), 1.0);
  EXPECT_DOUBLE_EQ(w(6), 0.0);
}

TEST(TemporalWeightTest, LinearDecayValues) {
  const TemporalWeight w = TemporalWeight::LinearDecay(4);
  EXPECT_DOUBLE_EQ(w(0), 1.0);
  EXPECT_DOUBLE_EQ(w(2), 0.5);
  EXPECT_DOUBLE_EQ(w(4), 0.0);
}

TEST(TemporalWeightTest, NamesAreDescriptive) {
  EXPECT_EQ(TemporalWeight::Step(7).name(), "step(7)");
  EXPECT_EQ(TemporalWeight::ExponentialDiscount(0.9, 10).name(),
            "discount(0.9,10)");
  EXPECT_EQ(TemporalWeight::LinearDecay(10).name(), "linear(10)");
}

TEST(TemporalWeightDeathTest, RejectsBadParameters) {
  EXPECT_DEATH(TemporalWeight::Step(-1), "deadline");
  EXPECT_DEATH(TemporalWeight::ExponentialDiscount(0.0, 5), "gamma");
  EXPECT_DEATH(TemporalWeight::ExponentialDiscount(1.5, 5), "gamma");
}

TEST(DelaySamplerTest, UnitDelayIsAlwaysOne) {
  const DelaySampler delays = DelaySampler::Unit();
  EXPECT_TRUE(delays.is_unit());
  for (uint32_t world = 0; world < 100; ++world) {
    for (EdgeId e = 0; e < 20; ++e) {
      EXPECT_EQ(delays.Delay(world, e, 1000), 1);
    }
  }
}

TEST(DelaySamplerTest, MeetingProbabilityOneIsUnit) {
  EXPECT_TRUE(DelaySampler::Geometric(1.0, 7).is_unit());
}

TEST(DelaySamplerTest, GeometricMeanMatchesOneOverM) {
  const double m = 0.25;
  const DelaySampler delays = DelaySampler::Geometric(m, 11);
  double sum = 0.0;
  const int samples = 50000;
  for (int i = 0; i < samples; ++i) {
    sum += delays.Delay(static_cast<uint32_t>(i), /*edge=*/3, /*cap=*/100000);
  }
  EXPECT_NEAR(sum / samples, 1.0 / m, 0.1);  // E[Geometric(m)] = 1/m
}

TEST(DelaySamplerTest, GeometricTailDecays) {
  const DelaySampler delays = DelaySampler::Geometric(0.5, 13);
  int counts[4] = {0, 0, 0, 0};  // delay 1, 2, 3, >=4
  const int samples = 40000;
  for (int i = 0; i < samples; ++i) {
    const int d = delays.Delay(static_cast<uint32_t>(i), 0, 1000);
    counts[std::min(d - 1, 3)]++;
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(samples), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(samples), 0.25, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(samples), 0.125, 0.01);
}

TEST(DelaySamplerTest, DelayIsDeterministicPerWorldEdge) {
  const DelaySampler delays = DelaySampler::Geometric(0.3, 17);
  for (uint32_t world = 0; world < 50; ++world) {
    EXPECT_EQ(delays.Delay(world, 5, 100), delays.Delay(world, 5, 100));
  }
}

TEST(DelaySamplerTest, CapBoundsTheDelay) {
  const DelaySampler delays = DelaySampler::Geometric(0.01, 19);
  for (uint32_t world = 0; world < 1000; ++world) {
    EXPECT_LE(delays.Delay(world, 2, 5), 5);
    EXPECT_GE(delays.Delay(world, 2, 5), 1);
  }
}

TEST(DelaySamplerDeathTest, RejectsBadMeetingProbability) {
  EXPECT_DEATH(DelaySampler::Geometric(0.0, 1), "meeting probability");
  EXPECT_DEATH(DelaySampler::Geometric(1.5, 1), "meeting probability");
}

}  // namespace
}  // namespace tcim
