#include "common/string_util.h"

#include <gtest/gtest.h>

namespace tcim {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StrFormat("%s", "hello"), "hello");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrSplitTest, KeepsEmptyFields) {
  const auto fields = StrSplit("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StrSplitTest, SingleField) {
  const auto fields = StrSplit("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(SplitWhitespaceTest, DropsEmptyRuns) {
  const auto fields = SplitWhitespace("  a \t b\n c  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitWhitespaceTest, EmptyInput) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   \t\n").empty());
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  abc  "), "abc");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("hello world", "hello"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("abc", "abcd"));
  EXPECT_FALSE(StartsWith("abc", "b"));
}

TEST(ParseInt64Test, ValidValues) {
  int64_t value = 0;
  EXPECT_TRUE(ParseInt64("42", &value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(ParseInt64("-7", &value));
  EXPECT_EQ(value, -7);
  EXPECT_TRUE(ParseInt64("  13  ", &value));
  EXPECT_EQ(value, 13);
}

TEST(ParseInt64Test, RejectsMalformed) {
  int64_t value = 0;
  EXPECT_FALSE(ParseInt64("", &value));
  EXPECT_FALSE(ParseInt64("abc", &value));
  EXPECT_FALSE(ParseInt64("12x", &value));
  EXPECT_FALSE(ParseInt64("1.5", &value));
}

TEST(ParseDoubleTest, ValidValues) {
  double value = 0.0;
  EXPECT_TRUE(ParseDouble("0.25", &value));
  EXPECT_DOUBLE_EQ(value, 0.25);
  EXPECT_TRUE(ParseDouble("-3e2", &value));
  EXPECT_DOUBLE_EQ(value, -300.0);
  EXPECT_TRUE(ParseDouble("7", &value));
  EXPECT_DOUBLE_EQ(value, 7.0);
}

TEST(ParseDoubleTest, RejectsMalformed) {
  double value = 0.0;
  EXPECT_FALSE(ParseDouble("", &value));
  EXPECT_FALSE(ParseDouble("x", &value));
  EXPECT_FALSE(ParseDouble("1.5abc", &value));
}

TEST(JoinIntsTest, JoinsWithSeparator) {
  EXPECT_EQ(JoinInts({1, 2, 3}, ","), "1,2,3");
  EXPECT_EQ(JoinInts({5}, ","), "5");
  EXPECT_EQ(JoinInts({}, ","), "");
}

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(0.25), "0.25");
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(0.001), "0.001");
  EXPECT_EQ(FormatDouble(1.50), "1.5");
}

TEST(FormatDoubleTest, HonorsMaxDecimals) {
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(FormatDouble(2.0 / 3.0, 2), "0.67");
}

}  // namespace
}  // namespace tcim
