#include "graph/graph.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace tcim {
namespace {

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder builder(0);
  const Graph graph = builder.Build();
  EXPECT_EQ(graph.num_nodes(), 0);
  EXPECT_EQ(graph.num_edges(), 0);
}

TEST(GraphBuilderTest, NodesWithoutEdges) {
  const Graph graph = GraphBuilder(5).Build();
  EXPECT_EQ(graph.num_nodes(), 5);
  EXPECT_EQ(graph.num_edges(), 0);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(graph.OutDegree(v), 0);
    EXPECT_EQ(graph.InDegree(v), 0);
  }
}

TEST(GraphBuilderTest, DirectedEdgeAppearsInBothViews) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 0.5);
  const Graph graph = builder.Build();
  ASSERT_EQ(graph.num_edges(), 1);
  EXPECT_EQ(graph.OutDegree(0), 1);
  EXPECT_EQ(graph.InDegree(1), 1);
  EXPECT_EQ(graph.OutDegree(1), 0);
  EXPECT_EQ(graph.InDegree(0), 0);

  const auto out = graph.OutEdges(0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].node, 1);
  EXPECT_FLOAT_EQ(out[0].probability, 0.5f);

  const auto in = graph.InEdges(1);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0].node, 0);
  EXPECT_EQ(in[0].edge_id, out[0].edge_id);  // canonical id shared
}

TEST(GraphBuilderTest, UndirectedEdgeMakesTwoDistinctEdges) {
  GraphBuilder builder(2);
  builder.AddUndirectedEdge(0, 1, 0.3);
  const Graph graph = builder.Build();
  EXPECT_EQ(graph.num_edges(), 2);
  EXPECT_EQ(graph.OutDegree(0), 1);
  EXPECT_EQ(graph.OutDegree(1), 1);
  EXPECT_NE(graph.OutEdges(0)[0].edge_id, graph.OutEdges(1)[0].edge_id);
}

TEST(GraphBuilderTest, EdgeEndpointAccessors) {
  GraphBuilder builder(4);
  builder.AddEdge(2, 3, 0.7);
  builder.AddEdge(0, 2, 0.1);
  const Graph graph = builder.Build();
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const NodeId source = graph.EdgeSource(e);
    const NodeId target = graph.EdgeTarget(e);
    // The edge id must be findable in the source's out list.
    bool found = false;
    for (const AdjacentEdge& edge : graph.OutEdges(source)) {
      if (edge.edge_id == e) {
        EXPECT_EQ(edge.node, target);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(GraphBuilderTest, ParallelEdgesAllowed) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 0.1);
  builder.AddEdge(0, 1, 0.9);
  const Graph graph = builder.Build();
  EXPECT_EQ(graph.num_edges(), 2);
  EXPECT_EQ(graph.OutDegree(0), 2);
  EXPECT_EQ(graph.InDegree(1), 2);
}

TEST(GraphBuilderTest, CsrGroupsEdgesBySource) {
  GraphBuilder builder(4);
  builder.AddEdge(3, 0, 0.2);
  builder.AddEdge(1, 2, 0.2);
  builder.AddEdge(3, 1, 0.2);
  builder.AddEdge(0, 3, 0.2);
  const Graph graph = builder.Build();
  // Edge ids are positions in the out-CSR: sources must be nondecreasing.
  NodeId last_source = 0;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    EXPECT_GE(graph.EdgeSource(e), last_source);
    last_source = graph.EdgeSource(e);
  }
  std::set<NodeId> targets_of_3;
  for (const AdjacentEdge& edge : graph.OutEdges(3)) {
    targets_of_3.insert(edge.node);
  }
  EXPECT_EQ(targets_of_3, (std::set<NodeId>{0, 1}));
}

TEST(GraphBuilderTest, TransposeMirrorsAllEdges) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1, 0.5).AddEdge(1, 2, 0.5).AddEdge(2, 0, 0.5);
  builder.AddEdge(3, 4, 0.5).AddEdge(4, 3, 0.5);
  const Graph graph = builder.Build();
  int64_t out_total = 0, in_total = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out_total += graph.OutDegree(v);
    in_total += graph.InDegree(v);
  }
  EXPECT_EQ(out_total, graph.num_edges());
  EXPECT_EQ(in_total, graph.num_edges());
  // Every in-edge id matches the original out edge.
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const AdjacentEdge& in_edge : graph.InEdges(v)) {
      EXPECT_EQ(graph.EdgeTarget(in_edge.edge_id), v);
      EXPECT_EQ(graph.EdgeSource(in_edge.edge_id), in_edge.node);
    }
  }
}

TEST(GraphBuilderTest, HasEdgeFindsAddedEdges) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 0.5);
  EXPECT_TRUE(builder.HasEdge(0, 1));
  EXPECT_FALSE(builder.HasEdge(1, 0));
  EXPECT_FALSE(builder.HasEdge(0, 2));
}

TEST(GraphBuilderTest, BuildIsRepeatable) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 0.5);
  const Graph first = builder.Build();
  builder.AddEdge(1, 2, 0.5);
  const Graph second = builder.Build();
  EXPECT_EQ(first.num_edges(), 1);
  EXPECT_EQ(second.num_edges(), 2);
}

TEST(GraphTest, AverageOutDegree) {
  GraphBuilder builder(4);
  builder.AddUndirectedEdge(0, 1, 0.5);
  builder.AddUndirectedEdge(2, 3, 0.5);
  EXPECT_DOUBLE_EQ(builder.Build().AverageOutDegree(), 1.0);
}

TEST(GraphTest, DebugStringMentionsCounts) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 0.5);
  const std::string debug = builder.Build().DebugString();
  EXPECT_NE(debug.find("n=2"), std::string::npos);
  EXPECT_NE(debug.find("directed_edges=1"), std::string::npos);
}

TEST(GraphBuilderDeathTest, RejectsSelfLoop) {
  GraphBuilder builder(2);
  EXPECT_DEATH(builder.AddEdge(1, 1, 0.5), "self-loop");
}

TEST(GraphBuilderDeathTest, RejectsOutOfRangeNodes) {
  GraphBuilder builder(2);
  EXPECT_DEATH(builder.AddEdge(0, 2, 0.5), "out of range");
  EXPECT_DEATH(builder.AddEdge(-1, 0, 0.5), "out of range");
}

TEST(GraphBuilderDeathTest, RejectsBadProbability) {
  GraphBuilder builder(2);
  EXPECT_DEATH(builder.AddEdge(0, 1, 1.5), "probability");
  EXPECT_DEATH(builder.AddEdge(0, 1, -0.1), "probability");
}

}  // namespace
}  // namespace tcim
