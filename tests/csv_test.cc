#include "common/csv.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "graph/io.h"

namespace tcim {
namespace {

TEST(CsvWriterTest, HeaderOnly) {
  CsvWriter csv({"a", "b"});
  EXPECT_EQ(csv.ToString(), "a,b\n");
  EXPECT_EQ(csv.num_rows(), 0u);
}

TEST(CsvWriterTest, SimpleRows) {
  CsvWriter csv({"x", "y"});
  csv.AddRow({"1", "2"});
  csv.AddRow({"3", "4"});
  EXPECT_EQ(csv.ToString(), "x,y\n1,2\n3,4\n");
  EXPECT_EQ(csv.num_rows(), 2u);
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  CsvWriter csv({"field"});
  csv.AddRow({"has,comma"});
  csv.AddRow({"has\"quote"});
  csv.AddRow({"has\nnewline"});
  EXPECT_EQ(csv.ToString(),
            "field\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(CsvWriterTest, NumericRowFormatsDoubles) {
  CsvWriter csv({"a", "b"});
  csv.AddNumericRow({0.25, 3.0});
  EXPECT_EQ(csv.ToString(), "a,b\n0.25,3\n");
}

TEST(CsvWriterDeathTest, ArityMismatchAborts) {
  CsvWriter csv({"a", "b"});
  EXPECT_DEATH(csv.AddRow({"only one"}), "arity");
}

TEST(CsvWriterTest, WriteToFileRoundTrips) {
  CsvWriter csv({"k", "v"});
  csv.AddRow({"alpha", "1"});
  const std::string path = testing::TempDir() + "/tcim_csv_test.csv";
  ASSERT_TRUE(csv.WriteToFile(path).ok());
  const auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "k,v\nalpha,1\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, WriteToBadPathFails) {
  CsvWriter csv({"a"});
  EXPECT_FALSE(csv.WriteToFile("/nonexistent_dir_xyz/file.csv").ok());
}

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter table("Title", {"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "22"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("== Title =="), std::string::npos);
  EXPECT_NE(rendered.find("| name   | value |"), std::string::npos);
  EXPECT_NE(rendered.find("| x      | 1     |"), std::string::npos);
  EXPECT_NE(rendered.find("| longer | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, EmptyTitleOmitsHeaderLine) {
  TablePrinter table("", {"a"});
  EXPECT_EQ(table.ToString().find("=="), std::string::npos);
}

TEST(TablePrinterDeathTest, ArityMismatchAborts) {
  TablePrinter table("t", {"a", "b"});
  EXPECT_DEATH(table.AddRow({"1", "2", "3"}), "arity");
}

}  // namespace
}  // namespace tcim
