#include "sim/analytics.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/budget.h"
#include "graph/datasets.h"
#include "graph/generators.h"

namespace tcim {
namespace {

// Path 0 -> 1 -> 2 -> 3 with sure edges; groups {0,1} and {2,3}.
struct PathFixture {
  PathFixture() {
    GraphBuilder builder(4);
    builder.AddEdge(0, 1, 1.0).AddEdge(1, 2, 1.0).AddEdge(2, 3, 1.0);
    graph = builder.Build();
    groups = GroupAssignment({0, 0, 1, 1});
  }
  Graph graph;
  GroupAssignment groups;
};

TEST(ArrivalCurvesTest, SurePathCurvesAreExact) {
  PathFixture fx;
  OracleOptions options;
  options.num_worlds = 10;
  const ArrivalCurves curves =
      ComputeArrivalCurves(fx.graph, fx.groups, {0}, /*horizon=*/5, options);
  // Group 0 (nodes 0, 1): counts 1 at t=0, 2 from t=1 on.
  EXPECT_NEAR(curves.cumulative[0][0], 1.0, 1e-9);
  EXPECT_NEAR(curves.cumulative[0][1], 2.0, 1e-9);
  EXPECT_NEAR(curves.cumulative[0][5], 2.0, 1e-9);
  // Group 1 (nodes 2, 3): 0 until t=2, 1 at t=2, 2 from t=3 on.
  EXPECT_NEAR(curves.cumulative[1][1], 0.0, 1e-9);
  EXPECT_NEAR(curves.cumulative[1][2], 1.0, 1e-9);
  EXPECT_NEAR(curves.cumulative[1][3], 2.0, 1e-9);
}

TEST(ArrivalCurvesTest, CurvesAreMonotone) {
  Rng rng(3);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  OracleOptions options;
  options.num_worlds = 40;
  const ArrivalCurves curves = ComputeArrivalCurves(
      gg.graph, gg.groups, {0, 100, 400}, /*horizon=*/15, options);
  for (const auto& curve : curves.cumulative) {
    for (size_t t = 1; t < curve.size(); ++t) {
      EXPECT_GE(curve[t], curve[t - 1] - 1e-12);
    }
  }
}

TEST(ArrivalCurvesTest, MatchesOracleAtEveryDeadline) {
  // Consistency contract: curve[g][τ] == f̂_τ(S;V_g) on the same worlds.
  Rng rng(7);
  SbmParams params;
  params.num_nodes = 150;
  const GroupedGraph gg = GenerateSbm(params, rng);
  const std::vector<NodeId> seeds = {3, 77, 120};
  const int horizon = 8;

  OracleOptions options;
  options.num_worlds = 30;
  options.seed = 4242;
  const ArrivalCurves curves =
      ComputeArrivalCurves(gg.graph, gg.groups, seeds, horizon, options);

  for (const int tau : {0, 1, 3, 8}) {
    OracleOptions oracle_options = options;
    oracle_options.deadline = tau;
    InfluenceOracle oracle(&gg.graph, &gg.groups, oracle_options);
    const GroupVector coverage = oracle.EstimateGroupCoverage(seeds);
    for (GroupId g = 0; g < gg.groups.num_groups(); ++g) {
      EXPECT_NEAR(curves.cumulative[g][tau], coverage[g], 1e-9)
          << "tau=" << tau << " group=" << g;
    }
  }
}

TEST(ArrivalCurvesTest, TimeToReachFindsCrossing) {
  PathFixture fx;
  OracleOptions options;
  options.num_worlds = 5;
  const ArrivalCurves curves =
      ComputeArrivalCurves(fx.graph, fx.groups, {0}, 5, options);
  EXPECT_EQ(curves.TimeToReach(0, 0.5, fx.groups), 0);   // node 0 at t=0
  EXPECT_EQ(curves.TimeToReach(0, 1.0, fx.groups), 1);
  EXPECT_EQ(curves.TimeToReach(1, 0.5, fx.groups), 2);
  EXPECT_EQ(curves.TimeToReach(1, 1.0, fx.groups), 3);
}

TEST(ArrivalCurvesTest, TimeToReachUnreachableIsMinusOne) {
  PathFixture fx;
  OracleOptions options;
  options.num_worlds = 5;
  const ArrivalCurves curves =
      ComputeArrivalCurves(fx.graph, fx.groups, {3}, 5, options);
  // Seeding the sink reaches nothing upstream.
  EXPECT_EQ(curves.TimeToReach(0, 0.4, fx.groups), -1);
}

TEST(ArrivalCurvesTest, MajorityArrivesFasterUnderP1) {
  // The paper's speed-inequality claim, measured: under P1 seeds, the
  // majority's time-to-10% is (much) smaller than the minority's.
  Rng rng(11);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  OracleOptions options;
  options.num_worlds = 150;
  options.deadline = 20;
  InfluenceOracle oracle(&gg.graph, &gg.groups, options);
  BudgetOptions budget;
  budget.budget = 30;
  const GreedyResult p1 = SolveTcimBudget(oracle, budget);

  const ArrivalCurves curves = ComputeArrivalCurves(
      gg.graph, gg.groups, p1.seeds, /*horizon=*/30, options);
  const int majority_t = curves.TimeToReach(0, 0.10, gg.groups);
  const int minority_t = curves.TimeToReach(1, 0.10, gg.groups);
  ASSERT_GE(majority_t, 0);
  // The minority either never reaches 10% or reaches it strictly later.
  if (minority_t >= 0) {
    EXPECT_GT(minority_t, majority_t);
  } else {
    SUCCEED();
  }
}

TEST(ArrivalCurvesTest, CsvHasHeaderAndRows) {
  PathFixture fx;
  OracleOptions options;
  options.num_worlds = 4;
  const ArrivalCurves curves =
      ComputeArrivalCurves(fx.graph, fx.groups, {0}, 3, options);
  const std::string csv = curves.ToCsv(fx.groups);
  EXPECT_NE(csv.find("t,group0,group1"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);  // header + 4 rows
}

TEST(CascadeProvenanceTest, ParentsAreValid) {
  Rng rng(5);
  SbmParams params;
  params.num_nodes = 120;
  params.activation_probability = 0.3;
  const GroupedGraph gg = GenerateSbm(params, rng);
  const CascadeResult result = SimulateIc(gg.graph, {0, 50}, rng);
  for (NodeId v = 0; v < gg.graph.num_nodes(); ++v) {
    const NodeId parent = result.activated_by[v];
    if (result.activation_time[v] <= 0) {
      EXPECT_EQ(parent, -1);  // seed or never activated
      continue;
    }
    ASSERT_GE(parent, 0);
    // Parent activated exactly one step earlier and owns a real edge to v.
    EXPECT_EQ(result.activation_time[parent],
              result.activation_time[v] - 1);
    bool edge_exists = false;
    for (const AdjacentEdge& edge : gg.graph.OutEdges(parent)) {
      if (edge.node == v) edge_exists = true;
    }
    EXPECT_TRUE(edge_exists) << "no edge " << parent << " -> " << v;
  }
}

TEST(CascadeProvenanceTest, HistogramSumsToActivated) {
  Rng rng(9);
  SbmParams params;
  params.num_nodes = 100;
  const GroupedGraph gg = GenerateSbm(params, rng);
  const CascadeResult result = SimulateIc(gg.graph, {0, 1, 2}, rng);
  const std::vector<int> histogram = result.ActivationHistogram();
  int total = 0;
  for (const int count : histogram) total += count;
  EXPECT_EQ(total, result.num_activated);
  ASSERT_FALSE(histogram.empty());
  EXPECT_EQ(histogram[0], 3);  // the three seeds
}

TEST(CascadeToDotTest, RendersNodesAndEdges) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 1.0).AddEdge(1, 2, 1.0);
  const Graph graph = builder.Build();
  const GroupAssignment groups({0, 0, 1});
  Rng rng(1);
  const CascadeResult result = SimulateIc(graph, {0}, rng);
  const std::string dot = CascadeToDot(result, &groups);
  EXPECT_NE(dot.find("digraph cascade"), std::string::npos);
  EXPECT_NE(dot.find("n0 [label=\"0@0\""), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // seed marker
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n2"), std::string::npos);
  EXPECT_NE(dot.find("salmon"), std::string::npos);  // group-1 color
}

}  // namespace
}  // namespace tcim
