// tcim_cli — command-line fair time-critical influence maximization,
// driven entirely by the public facade: flags parse into a ProblemSpec,
// tcim::Solve() runs it through the SolverRegistry, the Solution carries
// both the selection estimate and the fresh-world evaluation.
//
// Examples:
//   # P4 (fair budget) on a generated SBM
//   tcim_cli --problem=fair_budget --budget=30 --tau=20
//
//   # P2 (cover) on your own network
//   tcim_cli --graph=my.edges --groups=my.groups --undirected \
//            --problem=cover --quota=0.2 --tau=10
//
//   # a registered baseline instead of greedy; see what else is available
//   tcim_cli --problem=budget --solver=degree_discount
//   tcim_cli --list_solvers
//
//   # audit an externally chosen seed set
//   tcim_cli --audit-seeds=seeds.txt --tau=10
//
//   # serving demo: solve the same spec 5 times through one Engine — the
//   # first call samples worlds, the rest run on the cached backend
//   tcim_cli --problem=budget --repeat=5 --threads=4
//
//   # RR-set (IMM) backend: sketch sized adaptively for a (1-1/e-ε)
//   # guarantee; warm repeats reuse the cached sketch
//   tcim_cli --problem=budget --oracle=rr --epsilon=0.2 --repeat=3
//
//   # deadline sweep (the paper's fig04c shape): every tau answered off
//   # ONE cached backend build per kind
//   tcim_cli --problem=budget --deadlines=1,2,5,10,20,inf
//
//   # multi-tenant serving demo: K synthetic graphs behind one
//   # EngineRegistry — one shared pool, one global cache budget; --repeat
//   # rounds round-robin so warm rounds hit every tenant's cache
//   tcim_cli --problem=budget --registry-demo=4 --repeat=3 \
//            --registry-budget-mb=16

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "api/tcim.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

using namespace tcim;

// Writes `seeds` to --seeds-out when set (both solve and audit mode).
// Returns false (after printing the status) on IO failure.
bool WriteSeedsIfRequested(const FlagParser& flags,
                           const std::vector<NodeId>& seeds) {
  const std::string seeds_out = flags.GetString("seeds-out");
  if (seeds_out.empty()) return true;
  std::string payload = "# selected seeds, one node id per line\n";
  for (const NodeId s : seeds) {
    payload += StrFormat("%d\n", s);
  }
  const Status write_status = WriteStringToFile(payload, seeds_out);
  if (!write_status.ok()) {
    std::fprintf(stderr, "error writing seeds: %s\n",
                 write_status.ToString().c_str());
    return false;
  }
  std::printf("seeds written to %s\n", seeds_out.c_str());
  return true;
}

int main(int argc, char** argv) {
  FlagParser flags;
  AddProblemSpecFlags(flags);
  flags.AddString("graph", "", "edge-list file; empty = synthetic SBM");
  flags.AddString("groups", "", "group file; required with --graph");
  flags.AddBool("undirected", false, "treat edge-list lines as undirected");
  flags.AddDouble("pe", 0.05, "default activation probability for edges");
  flags.AddString("audit-seeds", "",
                  "evaluate this seed file instead of solving");
  flags.AddInt("worlds", 200, "Monte-Carlo worlds for selection");
  flags.AddInt("eval-worlds", 0, "evaluation worlds; 0 = same as --worlds");
  flags.AddDouble("epsilon", 0.3,
                  "RR backend: approximation slack of the adaptive (IMM) "
                  "sketch sizing, in (0,1)");
  flags.AddDouble("delta", 0.05,
                  "RR backend: failure probability of the sizing guarantee");
  flags.AddInt("rr-sets", 0,
               "RR backend: fixed RR sets per group; 0 = size adaptively");
  flags.AddInt("threads", 0, "worker threads; 0 = all hardware cores");
  flags.AddInt("repeat", 1,
               "solve the spec this many times through one Engine "
               "(repeats after the first hit the warm backend cache)");
  flags.AddString("deadlines", "",
                  "solve a deadline sweep instead of one deadline: "
                  "comma-separated taus, e.g. 1,2,5,10,20,inf (overrides "
                  "--tau; deadline-parametric backends are shared across "
                  "taus — adaptive rr sizing still rebuilds per tau unless "
                  "--rr-sets is pinned)");
  flags.AddInt("registry-demo", 0,
               "serve this many synthetic graphs (seeds --seed, --seed+1, "
               "...) through one multi-tenant EngineRegistry instead of a "
               "single solve; --repeat rounds run round-robin");
  flags.AddInt("registry-budget-mb", 0,
               "registry demo: global cache budget in MiB across all "
               "tenants (0 = unbounded); the coldest entry anywhere is "
               "evicted when over");
  flags.AddInt("seed", 42, "random seed for the synthetic generator");
  flags.AddString("seeds-out", "", "write selected seeds to this file");
  flags.AddBool("list_solvers", false, "print the solver registry and exit");
  flags.AddBool("help", false, "print usage");

  const Status status = flags.Parse(argc - 1, argv + 1);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n%s", status.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("tcim_cli — fair time-critical influence maximization\n%s",
                flags.Help().c_str());
    return 0;
  }
  if (flags.GetBool("list_solvers")) {
    std::printf("%s", SolverRegistry::Global().ListSolvers().c_str());
    return 0;
  }

  // --- Flags -> ProblemSpec. ------------------------------------------------
  const Result<ProblemSpec> spec_result = ProblemSpecFromFlags(flags);
  if (!spec_result.ok()) {
    std::fprintf(stderr, "error: %s\n", spec_result.status().ToString().c_str());
    return 2;
  }
  const ProblemSpec& spec = *spec_result;

  SolveOptions options;
  options.num_worlds = static_cast<int>(flags.GetInt("worlds"));
  options.eval_num_worlds = static_cast<int>(flags.GetInt("eval-worlds"));
  // Negative --threads comes back as a precise InvalidArgument Status from
  // SolveOptions::Validate inside Solve/EvaluateSeeds.
  options.num_threads = static_cast<int>(flags.GetInt("threads"));
  // RR backend knobs; bad values come back as InvalidArgument from
  // SolveOptions::Validate, like every other option.
  options.rr_epsilon = flags.GetDouble("epsilon");
  options.rr_delta = flags.GetDouble("delta");
  options.rr_sets_per_group = static_cast<int>(flags.GetInt("rr-sets"));

  const int repeat = static_cast<int>(flags.GetInt("repeat"));
  if (repeat < 1) {
    std::fprintf(stderr, "error: --repeat must be >= 1, got %d\n", repeat);
    return 2;
  }

  // --- Multi-tenant registry demo: K graphs, one pool, one budget. ----------
  const int registry_demo = static_cast<int>(flags.GetInt("registry-demo"));
  if (registry_demo < 0) {
    std::fprintf(stderr, "error: --registry-demo must be >= 0, got %d\n",
                 registry_demo);
    return 2;
  }
  if (registry_demo > 0) {
    if (!flags.GetString("graph").empty() ||
        !flags.GetString("deadlines").empty() ||
        !flags.GetString("audit-seeds").empty() ||
        !flags.GetString("seeds-out").empty()) {
      std::fprintf(stderr,
                   "error: --registry-demo serves synthetic tenants; it is "
                   "incompatible with --graph/--deadlines/--audit-seeds/"
                   "--seeds-out (one seed set per tenant)\n");
      return 2;
    }
    RegistryOptions registry_options;
    const int budget_mb = static_cast<int>(flags.GetInt("registry-budget-mb"));
    if (budget_mb > 0) {
      registry_options.max_total_bytes = static_cast<size_t>(budget_mb) << 20;
    }
    EngineRegistry registry(registry_options);
    for (int i = 0; i < registry_demo; ++i) {
      Rng rng(static_cast<uint64_t>(flags.GetInt("seed")) + i);
      GroupedGraph gg = datasets::SyntheticDefault(rng);
      const std::string id = StrFormat("tenant%02d", i);
      const Status registered = registry.Register(id, std::move(gg.graph),
                                                  std::move(gg.groups));
      if (!registered.ok()) {
        std::fprintf(stderr, "error: %s\n", registered.ToString().c_str());
        return 1;
      }
    }
    std::printf("registry: %d synthetic tenants, one shared pool, budget %s\n",
                registry_demo,
                budget_mb > 0 ? StrFormat("%d MiB", budget_mb).c_str()
                              : "unbounded");
    for (int round = 0; round < repeat; ++round) {
      Stopwatch round_watch;
      for (int i = 0; i < registry_demo; ++i) {
        const std::string id = StrFormat("tenant%02d", i);
        const Result<Solution> solution = registry.Solve(id, spec, options);
        if (!solution.ok()) {
          std::fprintf(stderr, "error (%s): %s\n", id.c_str(),
                       solution.status().ToString().c_str());
          return 1;
        }
        if (round == 0) {
          std::printf("  %s: %zu seeds, objective %s\n", id.c_str(),
                      solution->seeds.size(),
                      FormatDouble(solution->objective_value, 4).c_str());
        }
      }
      std::printf("round %d/%d: %.4fs (%s)\n", round + 1, repeat,
                  round_watch.ElapsedSeconds(),
                  round == 0 ? "cold, every tenant builds"
                             : "warm, cross-tenant cache");
    }
    std::printf("\n%s\n", registry.Stats().DebugString().c_str());
    return 0;
  }

  // --- Load or generate the network. ---------------------------------------
  Graph graph;
  std::optional<GroupAssignment> groups;
  if (flags.GetString("graph").empty()) {
    Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
    GroupedGraph gg = datasets::SyntheticDefault(rng);
    graph = std::move(gg.graph);
    groups = std::move(gg.groups);
    std::printf("using the built-in synthetic SBM benchmark\n");
  } else {
    EdgeListOptions load_options;
    load_options.undirected = flags.GetBool("undirected");
    load_options.default_probability = flags.GetDouble("pe");
    auto graph_result = LoadEdgeList(flags.GetString("graph"), load_options);
    if (!graph_result.ok()) {
      std::fprintf(stderr, "error loading graph: %s\n",
                   graph_result.status().ToString().c_str());
      return 1;
    }
    graph = std::move(*graph_result);
    if (flags.GetString("groups").empty()) {
      std::fprintf(stderr, "error: --groups is required with --graph\n");
      return 2;
    }
    auto groups_result =
        LoadGroupFile(flags.GetString("groups"), graph.num_nodes());
    if (!groups_result.ok()) {
      std::fprintf(stderr, "error loading groups: %s\n",
                   groups_result.status().ToString().c_str());
      return 1;
    }
    groups = std::move(*groups_result);
  }
  std::printf("graph : %s\n", graph.DebugString().c_str());
  std::printf("groups: %s\n", groups->DebugString().c_str());

  // --- Audit mode: evaluate a given seed set and stop. ----------------------
  const std::string audit_path = flags.GetString("audit-seeds");
  if (!audit_path.empty()) {
    auto seeds = LoadSeedFile(audit_path, graph.num_nodes());
    if (!seeds.ok()) {
      std::fprintf(stderr, "error loading seeds: %s\n",
                   seeds.status().ToString().c_str());
      return 1;
    }
    const Result<GroupUtilityReport> report =
        EvaluateSeeds(graph, *groups, *seeds, spec, options);
    if (!report.ok()) {
      std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("\naudit of %zu seeds: %s\n", seeds->size(),
                report->DebugString().c_str());
    for (GroupId g = 0; g < groups->num_groups(); ++g) {
      std::printf("  group %d: size %5d, utility %.4f\n", g,
                  groups->GroupSize(g), report->normalized[g]);
    }
    return WriteSeedsIfRequested(flags, *seeds) ? 0 : 1;
  }

  // --- Deadline-sweep mode: all taus off one backend build per kind. --------
  if (!flags.GetString("deadlines").empty()) {
    if (!flags.GetString("seeds-out").empty()) {
      std::fprintf(stderr,
                   "error: --seeds-out is ambiguous with --deadlines (one "
                   "seed set per tau); run a single --tau solve instead\n");
      return 2;
    }
    const Result<std::vector<int>> deadlines =
        ParseDeadlineList(flags.GetString("deadlines"));
    if (!deadlines.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   deadlines.status().ToString().c_str());
      return 2;
    }
    Engine engine(graph, *groups);
    Stopwatch watch;
    const Engine::SweepResult sweep = engine.SolveSweep(spec, *deadlines,
                                                        options);
    const double seconds = watch.ElapsedSeconds();

    std::printf("\ndeadline sweep (%zu taus, %.4fs):\n", deadlines->size(),
                seconds);
    std::printf("  %-6s %-8s %-10s %-10s %s\n", "tau", "seeds", "objective",
                "disparity", "total_fraction");
    for (size_t i = 0; i < sweep.solutions.size(); ++i) {
      const std::string tau = sweep.deadlines[i] >= kNoDeadline
                                  ? "inf"
                                  : StrFormat("%d", sweep.deadlines[i]);
      if (!sweep.solutions[i].ok()) {
        std::printf("  %-6s error: %s\n", tau.c_str(),
                    sweep.solutions[i].status().ToString().c_str());
        continue;
      }
      const Solution& solution = *sweep.solutions[i];
      std::printf("  %-6s %-8zu %-10s %-10s %s\n", tau.c_str(),
                  solution.seeds.size(),
                  FormatDouble(solution.objective_value, 4).c_str(),
                  solution.evaluation
                      ? FormatDouble(solution.evaluation->disparity, 4).c_str()
                      : "-",
                  solution.evaluation
                      ? FormatDouble(solution.evaluation->total_fraction, 4)
                            .c_str()
                      : "-");
    }
    std::printf("cache: %s\n", sweep.after.DebugString().c_str());
    const long long world_builds =
        sweep.after.world_constructions - sweep.before.world_constructions;
    const long long sketch_builds =
        sweep.after.sketch_constructions - sweep.before.sketch_constructions;
    std::printf("this sweep materialized %lld world / %lld sketch "
                "backend(s)%s\n",
                world_builds, sketch_builds,
                sketch_builds > 2
                    ? " (adaptive rr sizing rebuilds per tau; pin --rr-sets "
                      "for one build per selection/evaluation role)"
                    : "");
    for (const auto& solution : sweep.solutions) {
      if (!solution.ok()) return 1;
    }
    return 0;
  }

  // --- Solve through a (reusable) Engine. -----------------------------------
  // One call behaves exactly like tcim::Solve(); with --repeat > 1 every
  // call after the first runs on the cached oracle backend.
  Engine engine(graph, *groups);
  Result<Solution> solution = InternalError("no solve ran");
  for (int round = 0; round < repeat; ++round) {
    Stopwatch watch;
    solution = engine.Solve(spec, options);
    if (!solution.ok()) {
      std::fprintf(stderr, "error: %s\n", solution.status().ToString().c_str());
      return 1;
    }
    if (repeat > 1) {
      std::printf("round %d/%d: %.4fs (%s)\n", round + 1, repeat,
                  watch.ElapsedSeconds(),
                  round == 0 ? "cold, samples worlds" : "warm cache");
    }
  }
  if (repeat > 1) {
    std::printf("cache: %s\n", engine.cache_stats().DebugString().c_str());
  }

  // --- Report. --------------------------------------------------------------
  std::printf("\n%s\n", solution->DebugString().c_str());
  std::printf("\nselected %zu seeds:", solution->seeds.size());
  for (const NodeId s : solution->seeds) std::printf(" %d", s);
  std::printf("\n\nfresh-world evaluation: %s\n",
              solution->evaluation->DebugString().c_str());
  for (GroupId g = 0; g < groups->num_groups(); ++g) {
    std::printf("  group %d: size %5d, utility %.4f\n", g,
                groups->GroupSize(g), solution->evaluation->normalized[g]);
  }
  if (spec.kind == ProblemKind::kCover || spec.kind == ProblemKind::kFairCover) {
    std::printf("quota %s %s on the selection estimate\n",
                FormatDouble(spec.quota).c_str(),
                solution->target_reached ? "REACHED" : "NOT reached");
  }

  return WriteSeedsIfRequested(flags, solution->seeds) ? 0 : 1;
}
