// tcim_cli — command-line fair time-critical influence maximization.
//
// Loads a graph (edge list) and group assignment from files — or generates
// the built-in synthetic benchmark — solves the selected problem, and
// prints the seed set plus a fresh-world evaluation report.
//
// Examples:
//   # budget problem on a generated SBM, fair objective
//   tcim_cli --problem=budget --fair --budget=30 --tau=20
//
//   # cover problem on your own network
//   tcim_cli --graph=my.edges --groups=my.groups --undirected \
//            --problem=cover --quota=0.2 --fair --tau=10
//
//   # write the chosen seeds to a file
//   tcim_cli --problem=budget --seeds-out=seeds.txt

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "cli/flags.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "graph/datasets.h"
#include "graph/io.h"

using namespace tcim;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("graph", "", "edge-list file; empty = synthetic SBM");
  flags.AddString("groups", "", "group file; required with --graph");
  flags.AddBool("undirected", false, "treat edge-list lines as undirected");
  flags.AddDouble("pe", 0.05, "default activation probability for edges");
  flags.AddString("problem", "budget", "budget | cover | audit");
  flags.AddString("audit-seeds", "", "seed file to evaluate (problem=audit)");
  flags.AddBool("fair", false, "use the fair surrogate (P4 / P6)");
  flags.AddString("h", "log", "concave wrapper: log | sqrt | identity");
  flags.AddInt("budget", 30, "seed budget B (budget problem)");
  flags.AddDouble("quota", 0.2, "coverage quota Q (cover problem)");
  flags.AddInt("tau", 20, "time deadline; 0 or negative = infinity");
  flags.AddInt("worlds", 200, "Monte-Carlo worlds for selection");
  flags.AddInt("eval-worlds", 0, "evaluation worlds; 0 = same as --worlds");
  flags.AddInt("seed", 42, "random seed for the synthetic generator");
  flags.AddString("model", "ic", "diffusion model: ic | lt");
  flags.AddString("seeds-out", "", "write selected seeds to this file");
  flags.AddBool("help", false, "print usage");

  const Status status = flags.Parse(argc - 1, argv + 1);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n%s", status.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("tcim_cli — fair time-critical influence maximization\n%s",
                flags.Help().c_str());
    return 0;
  }

  // --- Load or generate the network. ---------------------------------------
  Graph graph;
  std::optional<GroupAssignment> groups;
  if (flags.GetString("graph").empty()) {
    Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
    GroupedGraph gg = datasets::SyntheticDefault(rng);
    graph = std::move(gg.graph);
    groups = std::move(gg.groups);
    std::printf("using the built-in synthetic SBM benchmark\n");
  } else {
    EdgeListOptions options;
    options.undirected = flags.GetBool("undirected");
    options.default_probability = flags.GetDouble("pe");
    auto graph_result = LoadEdgeList(flags.GetString("graph"), options);
    if (!graph_result.ok()) {
      std::fprintf(stderr, "error loading graph: %s\n",
                   graph_result.status().ToString().c_str());
      return 1;
    }
    graph = std::move(*graph_result);
    if (flags.GetString("groups").empty()) {
      std::fprintf(stderr, "error: --groups is required with --graph\n");
      return 2;
    }
    auto groups_result =
        LoadGroupFile(flags.GetString("groups"), graph.num_nodes());
    if (!groups_result.ok()) {
      std::fprintf(stderr, "error loading groups: %s\n",
                   groups_result.status().ToString().c_str());
      return 1;
    }
    groups = std::move(*groups_result);
  }
  std::printf("graph : %s\n", graph.DebugString().c_str());
  std::printf("groups: %s\n", groups->DebugString().c_str());

  // --- Configure the experiment. -------------------------------------------
  ExperimentConfig config;
  const int64_t tau = flags.GetInt("tau");
  config.deadline = tau <= 0 ? kNoDeadline : static_cast<int>(tau);
  config.num_worlds = static_cast<int>(flags.GetInt("worlds"));
  config.eval_num_worlds = static_cast<int>(flags.GetInt("eval-worlds"));
  const std::string model = flags.GetString("model");
  if (model == "lt") {
    config.model = DiffusionModel::kLinearThreshold;
  } else if (model != "ic") {
    std::fprintf(stderr, "error: unknown --model=%s (ic | lt)\n",
                 model.c_str());
    return 2;
  }

  std::optional<ConcaveFunction> h;
  if (flags.GetBool("fair")) {
    const std::string name = flags.GetString("h");
    if (name == "log") {
      h = ConcaveFunction::Log();
    } else if (name == "sqrt") {
      h = ConcaveFunction::Sqrt();
    } else if (name == "identity") {
      h = ConcaveFunction::Identity();
    } else {
      std::fprintf(stderr, "error: unknown --h=%s (log | sqrt | identity)\n",
                   name.c_str());
      return 2;
    }
  }

  // --- Solve (or audit a given seed set). ------------------------------------
  ExperimentOutcome outcome;
  const std::string problem = flags.GetString("problem");
  if (problem == "audit") {
    const std::string seed_path = flags.GetString("audit-seeds");
    if (seed_path.empty()) {
      std::fprintf(stderr, "error: --problem=audit needs --audit-seeds\n");
      return 2;
    }
    auto seeds = LoadSeedFile(seed_path, graph.num_nodes());
    if (!seeds.ok()) {
      std::fprintf(stderr, "error loading seeds: %s\n",
                   seeds.status().ToString().c_str());
      return 1;
    }
    outcome.selection.seeds = *seeds;
    outcome.report = EvaluateSeedSet(graph, *groups, *seeds, config);
  } else if (problem == "budget") {
    outcome = RunBudgetExperiment(graph, *groups, config,
                                  static_cast<int>(flags.GetInt("budget")),
                                  h ? &*h : nullptr);
  } else if (problem == "cover") {
    outcome = RunCoverExperiment(graph, *groups, config,
                                 flags.GetDouble("quota"),
                                 /*fair=*/flags.GetBool("fair"));
  } else {
    std::fprintf(stderr, "error: unknown --problem=%s (budget | cover | audit)\n",
                 problem.c_str());
    return 2;
  }

  // --- Report. ----------------------------------------------------------------
  std::printf("\nselected %zu seeds:", outcome.selection.seeds.size());
  for (const NodeId s : outcome.selection.seeds) std::printf(" %d", s);
  std::printf("\n\nfresh-world evaluation: %s\n",
              outcome.report.DebugString().c_str());
  for (GroupId g = 0; g < groups->num_groups(); ++g) {
    std::printf("  group %d: size %5d, utility %.4f\n", g,
                groups->GroupSize(g), outcome.report.normalized[g]);
  }
  if (problem == "cover") {
    std::printf("quota %s %s on the selection estimate\n",
                FormatDouble(flags.GetDouble("quota")).c_str(),
                outcome.selection.target_reached ? "REACHED" : "NOT reached");
  }

  const std::string seeds_out = flags.GetString("seeds-out");
  if (!seeds_out.empty()) {
    std::string payload = "# selected seeds, one node id per line\n";
    for (const NodeId s : outcome.selection.seeds) {
      payload += StrFormat("%d\n", s);
    }
    const Status write_status = WriteStringToFile(payload, seeds_out);
    if (!write_status.ok()) {
      std::fprintf(stderr, "error writing seeds: %s\n",
                   write_status.ToString().c_str());
      return 1;
    }
    std::printf("seeds written to %s\n", seeds_out.c_str());
  }
  return 0;
}
