// Quickstart: the 60-second tour of the FairTCIM public API.
//
//   1. build (or generate) a graph with per-edge activation probabilities,
//   2. declare the socially salient groups,
//   3. solve the four problems — P1/P4 (budget) and P2/P6 (cover),
//   4. evaluate any seed set on fresh Monte-Carlo worlds and measure the
//      Eq. 2 disparity.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/experiment.h"
#include "graph/datasets.h"

using namespace tcim;  // examples only; library code never does this

int main() {
  // 1. The paper's synthetic benchmark graph: a 500-node stochastic block
  //    model with a 350-node majority and a 150-node minority, sparse
  //    across-group links, and activation probability 0.05 on every edge.
  Rng rng(42);
  const GroupedGraph network = datasets::SyntheticDefault(rng);
  std::printf("network: %s\n", network.graph.DebugString().c_str());
  std::printf("groups : %s\n\n", network.groups.DebugString().c_str());

  // 2. Experiment configuration: influence counts only if it arrives within
  //    τ = 20 steps; utilities are averaged over 200 live-edge worlds.
  ExperimentConfig config;
  config.deadline = 20;
  config.num_worlds = 200;

  // 3a. Standard TCIM-Budget (P1): maximize total influence, B = 20 seeds.
  const ExperimentOutcome standard =
      RunBudgetExperiment(network.graph, network.groups, config, /*budget=*/20);
  std::printf("P1  (standard budget) : %s\n",
              standard.report.DebugString().c_str());

  // 3b. FairTCIM-Budget (P4): same budget, but the per-group influences
  //     pass through a concave wrapper H = log, which rewards lifting the
  //     under-served group first.
  const ConcaveFunction h = ConcaveFunction::Log();
  const ExperimentOutcome fair = RunBudgetExperiment(
      network.graph, network.groups, config, /*budget=*/20, &h);
  std::printf("P4  (fair budget, log): %s\n\n",
              fair.report.DebugString().c_str());

  // 3c. The cover problems: find the SMALLEST seed set that influences a
  //     Q = 0.2 fraction — of the whole population (P2) vs of EVERY group
  //     (P6, whose feasible solutions have disparity <= 1 - Q).
  const ExperimentOutcome p2 = RunCoverExperiment(
      network.graph, network.groups, config, /*quota=*/0.2, /*fair=*/false);
  const ExperimentOutcome p6 = RunCoverExperiment(
      network.graph, network.groups, config, /*quota=*/0.2, /*fair=*/true);
  std::printf("P2  (standard cover)  : %zu seeds, %s\n",
              p2.selection.seeds.size(), p2.report.DebugString().c_str());
  std::printf("P6  (fair cover)      : %zu seeds, %s\n\n",
              p6.selection.seeds.size(), p6.report.DebugString().c_str());

  // 4. Any externally chosen seed set can be audited the same way.
  const std::vector<NodeId> my_seeds = {0, 1, 2, 3, 4};
  const GroupUtilityReport audit =
      EvaluateSeedSet(network.graph, network.groups, my_seeds, config);
  std::printf("audit of {0..4}       : %s\n", audit.DebugString().c_str());

  std::printf(
      "\nTakeaway: P4 cut the group disparity from %.3f to %.3f while "
      "keeping %.0f%% of P1's total influence.\n",
      standard.report.disparity, fair.report.disparity,
      100.0 * fair.report.total / standard.report.total);
  return 0;
}
