// Quickstart: the 60-second tour of the TCIM public API.
//
//   1. build (or generate) a graph with per-edge activation probabilities,
//   2. declare the socially salient groups,
//   3. describe each problem as a ProblemSpec and call tcim::Solve() —
//      the same facade covers P1/P4 (budget), P2/P6 (cover), and maximin,
//   4. every Solution carries an independent fresh-world evaluation and
//      the Eq. 2 disparity; arbitrary seed sets audit via EvaluateSeeds().
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "api/tcim.h"

using namespace tcim;  // examples only; library code never does this

int main() {
  // 1. The paper's synthetic benchmark graph: a 500-node stochastic block
  //    model with a 350-node majority and a 150-node minority, sparse
  //    across-group links, and activation probability 0.05 on every edge.
  Rng rng(42);
  const GroupedGraph network = datasets::SyntheticDefault(rng);
  std::printf("network: %s\n", network.graph.DebugString().c_str());
  std::printf("groups : %s\n\n", network.groups.DebugString().c_str());

  // 2. Fidelity knobs, shared by every problem below: utilities averaged
  //    over 200 Monte-Carlo worlds, evaluation on an independent world set.
  SolveOptions options;
  options.num_worlds = 200;

  // 3a. Standard TCIM-Budget (P1): maximize total influence arriving within
  //     τ = 20 steps, B = 20 seeds. A bad spec (negative budget, unknown
  //     solver, ...) comes back as an error Status — handle it like this
  //     once; later calls use Result's checked accessors, which abort with
  //     the same status message if you skip the check.
  const Result<Solution> standard =
      Solve(network.graph, network.groups,
            ProblemSpec::Budget(/*budget=*/20, /*deadline=*/20), options);
  if (!standard.ok()) {
    std::fprintf(stderr, "Solve failed: %s\n",
                 standard.status().ToString().c_str());
    return 1;
  }
  std::printf("P1  (standard budget) : %s\n",
              standard->evaluation->DebugString().c_str());

  // 3b. FairTCIM-Budget (P4): same budget, but the per-group influences
  //     pass through a concave wrapper H = log, which rewards lifting the
  //     under-served group first.
  const Result<Solution> fair =
      Solve(network.graph, network.groups,
            ProblemSpec::FairBudget(/*budget=*/20, /*deadline=*/20), options);
  std::printf("P4  (fair budget, log): %s\n\n",
              fair->evaluation->DebugString().c_str());

  // 3c. The cover problems: find the SMALLEST seed set that influences a
  //     Q = 0.2 fraction — of the whole population (P2) vs of EVERY group
  //     (P6, whose feasible solutions have disparity <= 1 - Q).
  const Result<Solution> p2 =
      Solve(network.graph, network.groups,
            ProblemSpec::Cover(/*quota=*/0.2, /*deadline=*/20), options);
  const Result<Solution> p6 =
      Solve(network.graph, network.groups,
            ProblemSpec::FairCover(/*quota=*/0.2, /*deadline=*/20), options);
  std::printf("P2  (standard cover)  : %zu seeds, %s\n", p2->seeds.size(),
              p2->evaluation->DebugString().c_str());
  std::printf("P6  (fair cover)      : %zu seeds, %s\n\n", p6->seeds.size(),
              p6->evaluation->DebugString().c_str());

  // 3d. Maximin fairness (SATURATE), the registry's fifth problem: lift
  //     the WORST-off group as high as B = 20 seeds allow.
  const Result<Solution> maximin =
      Solve(network.graph, network.groups,
            ProblemSpec::Maximin(/*budget=*/20, /*deadline=*/20), options);
  std::printf("max (maximin, B=20)   : min-group %.4f via solver \"%s\"\n\n",
              maximin->objective_value, maximin->solver.c_str());

  // 4. Any externally chosen seed set can be audited the same way. A bad
  //    spec or seed set comes back as a Status, never a crash.
  const std::vector<NodeId> my_seeds = {0, 1, 2, 3, 4};
  const Result<GroupUtilityReport> audit =
      EvaluateSeeds(network.graph, network.groups, my_seeds,
                    ProblemSpec::Budget(5, /*deadline=*/20), options);
  std::printf("audit of {0..4}       : %s\n", audit->DebugString().c_str());

  std::printf(
      "\nTakeaway: P4 cut the group disparity from %.3f to %.3f while "
      "keeping %.0f%% of P1's total influence.\n",
      standard->evaluation->disparity, fair->evaluation->disparity,
      100.0 * fair->evaluation->total / standard->evaluation->total);
  return 0;
}
