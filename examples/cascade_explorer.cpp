// Scenario: exploring HOW influence spreads, not just how much.
//
// Uses the provenance and analytics APIs: simulates single cascades from
// the fair vs unfair seed sets on the illustrative Figure-1 graph, exports
// them as GraphViz DOT files (render with `dot -Tpng`), prints activation
// histograms, and compares the groups' arrival curves — making the paper's
// "the minority is influenced later, if at all" mechanism visible on an
// individual-cascade level.

#include <cstdio>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/experiment.h"
#include "graph/datasets.h"
#include "graph/io.h"
#include "sim/analytics.h"
#include "sim/cascade.h"

using namespace tcim;

int main() {
  const GroupedGraph gg = datasets::IllustrativeGraph();
  std::printf("graph: %s (blue=%d, red=%d)\n\n",
              gg.graph.DebugString().c_str(), gg.groups.GroupSize(0),
              gg.groups.GroupSize(1));

  // Solve both budget problems at B = 2 (the Figure-1 setting).
  ExperimentConfig config;
  config.deadline = 4;
  config.num_worlds = 1000;
  const ExperimentOutcome p1 =
      RunBudgetExperiment(gg.graph, gg.groups, config, 2);
  const ConcaveFunction h = ConcaveFunction::Log();
  const ExperimentOutcome p4 =
      RunBudgetExperiment(gg.graph, gg.groups, config, 2, &h);

  // One concrete cascade from each seed set, with provenance.
  Rng rng(7);
  const CascadeResult unfair_cascade =
      SimulateIc(gg.graph, p1.selection.seeds, rng);
  const CascadeResult fair_cascade =
      SimulateIc(gg.graph, p4.selection.seeds, rng);

  auto describe = [&](const char* name, const std::vector<NodeId>& seeds,
                      const CascadeResult& cascade, const char* dot_path) {
    std::printf("%s seeds {%s}: activated %d/%d nodes\n", name,
                JoinInts(std::vector<int>(seeds.begin(), seeds.end()), ",")
                    .c_str(),
                cascade.num_activated, gg.graph.num_nodes());
    const std::vector<int> histogram = cascade.ActivationHistogram();
    std::printf("  new activations per step:");
    for (size_t t = 0; t < histogram.size(); ++t) {
      std::printf(" t%zu:%d", t, histogram[t]);
    }
    int red_reached = 0;
    for (NodeId v = 0; v < gg.graph.num_nodes(); ++v) {
      if (gg.groups.GroupOf(v) == 1 && cascade.activation_time[v] >= 0) {
        ++red_reached;
      }
    }
    std::printf("\n  red-group members reached: %d / %d\n", red_reached,
                gg.groups.GroupSize(1));
    const Status status =
        WriteStringToFile(CascadeToDot(cascade, &gg.groups), dot_path);
    if (status.ok()) {
      std::printf("  provenance forest written to %s (render: dot -Tpng)\n",
                  dot_path);
    }
    std::printf("\n");
  };
  describe("reach-maximizing (P1)", p1.selection.seeds, unfair_cascade,
           "/tmp/cascade_p1.dot");
  describe("fairness-aware (P4) ", p4.selection.seeds, fair_cascade,
           "/tmp/cascade_p4.dot");

  // Expected arrival curves: when does each group receive the information?
  OracleOptions oracle_options;
  oracle_options.num_worlds = 2000;
  const ArrivalCurves p1_curves = ComputeArrivalCurves(
      gg.graph, gg.groups, p1.selection.seeds, /*horizon=*/8, oracle_options);
  const ArrivalCurves p4_curves = ComputeArrivalCurves(
      gg.graph, gg.groups, p4.selection.seeds, 8, oracle_options);

  std::printf("expected penetration by time t (blue | red):\n");
  std::printf("  t   P1 blue  P1 red   P4 blue  P4 red\n");
  for (int t = 0; t <= 8; ++t) {
    std::printf("  %d   %.3f    %.3f    %.3f    %.3f\n", t,
                p1_curves.NormalizedAt(0, t, gg.groups),
                p1_curves.NormalizedAt(1, t, gg.groups),
                p4_curves.NormalizedAt(0, t, gg.groups),
                p4_curves.NormalizedAt(1, t, gg.groups));
  }
  std::printf(
      "\nUnder P1 the red curve is flat at ~0 for the first two steps — a\n"
      "deadline of 2 means the red group receives nothing. The fair seeds\n"
      "start a cascade inside the red community, so its curve rises\n"
      "immediately.\n");
  return 0;
}
