// Scenario: planning a public-health outreach quota.
//
// A health department must ensure that at least Q = 15% of EVERY demographic
// group receives a screening reminder within τ = 10 contact rounds — an
// equity requirement, not just an aggregate target. The question is how
// many community health workers (seeds) that guarantee costs, compared to
// an aggregate-only target (the paper's TCIM-Cover vs FairTCIM-Cover).
//
// Demonstrates: the cover problems through tcim::Solve(), iteration traces,
// and the disparity <= 1 - Q guarantee of feasible fair solutions.

#include <cstdio>
#include <vector>

#include "api/tcim.h"
#include "common/csv.h"
#include "common/string_util.h"

using namespace tcim;

int main() {
  // Three demographic groups with unequal sizes and connectivity; the
  // smallest group is also the most poorly connected (the hard case).
  Rng rng(1337);
  const GroupedGraph city = GenerateBlockModel(
      /*group_sizes=*/{900, 500, 200},
      /*block_probability=*/
      {{0.010, 0.0008, 0.0004},
       {0.0008, 0.012, 0.0006},
       {0.0004, 0.0006, 0.015}},
      /*activation_probability=*/0.06, rng);
  std::printf("city network: %s\n", city.graph.DebugString().c_str());
  std::printf("demographics: %s\n\n", city.groups.DebugString().c_str());

  const double kQuota = 0.15;
  SolveOptions options;
  options.num_worlds = 300;

  const Result<Solution> aggregate =
      Solve(city.graph, city.groups,
            ProblemSpec::Cover(kQuota, /*deadline=*/10), options);
  const Result<Solution> equitable =
      Solve(city.graph, city.groups,
            ProblemSpec::FairCover(kQuota, /*deadline=*/10), options);
  TablePrinter table("Reaching 15% within 10 rounds",
                     {"plan", "workers", "group1", "group2", "group3",
                      "disparity"});
  auto add = [&](const char* plan, const Solution& solution) {
    const GroupUtilityReport& report = *solution.evaluation;
    table.AddRow({plan, StrFormat("%zu", solution.seeds.size()),
                  FormatDouble(report.normalized[0], 4),
                  FormatDouble(report.normalized[1], 4),
                  FormatDouble(report.normalized[2], 4),
                  FormatDouble(report.disparity, 4)});
  };
  add("aggregate quota (P2)", *aggregate);
  add("per-group quota (P6)", *equitable);
  table.Print();

  // The price of equity, iteration by iteration: show when each plan
  // believes each group crossed the quota.
  std::printf("\nequitable plan, seed-by-seed progress:\n");
  for (size_t i = 0; i < equitable->trace.size(); ++i) {
    const SolutionStep& step = equitable->trace[i];
    std::printf("  worker %2zu -> node %4d | coverage:", i + 1, step.node);
    for (GroupId g = 0; g < city.groups.num_groups(); ++g) {
      std::printf(" %5.3f", step.coverage[g] / city.groups.GroupSize(g));
    }
    std::printf("\n");
  }

  std::printf(
      "\nGuarantee check: the equitable plan is feasible, so its disparity "
      "(%.3f) is at most 1 - Q = %.2f.\n",
      equitable->evaluation->disparity, 1.0 - kQuota);
  std::printf(
      "Equity premium: %ld extra workers over the aggregate plan's %zu.\n",
      static_cast<long>(equitable->seeds.size()) -
          static_cast<long>(aggregate->seeds.size()),
      aggregate->seeds.size());
  return 0;
}
