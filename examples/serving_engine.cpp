// Serving with tcim::Engine: answer many queries over one network without
// re-sampling Monte-Carlo worlds per call.
//
//   1. construct one Engine per graph — it owns nothing heavy up front,
//   2. Solve() repeatedly: specs sharing an oracle backend (same oracle /
//      model / deadline / worlds / seed) hit the backend cache,
//   3. SolveBatch() fans a whole workload out over a worker pool,
//   4. SubmitSolve() queues work asynchronously and returns a future,
//   5. cache_stats() / Invalidate() give the serving loop observability
//      and a refresh hook.
//
// Build & run:  cmake --build build && ./build/examples/serving_engine

#include <cstdio>
#include <future>
#include <vector>

#include "api/tcim.h"
#include "common/stopwatch.h"

using namespace tcim;  // examples only; library code never does this

int main() {
  Rng rng(42);
  const GroupedGraph network = datasets::SyntheticDefault(rng);
  std::printf("network: %s\n\n", network.graph.DebugString().c_str());

  SolveOptions options;
  options.num_worlds = 200;

  // 1. One Engine per served graph. EngineOptions tune the backend cache
  //    (LRU slots, materialization byte cap) and the worker pool.
  Engine engine(network.graph, network.groups);

  // 2. The first solve is cold: it samples the selection and evaluation
  //    world sets and caches both backends. Every later query that shares
  //    them — here: same deadline/oracle/model/worlds — only runs selection.
  Stopwatch cold_watch;
  const Result<Solution> cold =
      engine.Solve(ProblemSpec::Budget(/*budget=*/20, /*deadline=*/20),
                   options);
  if (!cold.ok()) {
    std::fprintf(stderr, "Solve failed: %s\n", cold.status().ToString().c_str());
    return 1;
  }
  const double cold_seconds = cold_watch.ElapsedSeconds();

  Stopwatch warm_watch;
  const Result<Solution> warm =
      engine.Solve(ProblemSpec::FairBudget(/*budget=*/20, /*deadline=*/20),
                   options);
  const double warm_seconds = warm_watch.ElapsedSeconds();
  std::printf("cold P1 solve: %.3fs   warm P4 solve (cached backend): %.3fs\n",
              cold_seconds, warm_seconds);
  std::printf("cache: %s\n\n", engine.cache_stats().DebugString().c_str());

  // 3. A workload as one batch: results arrive in spec order, each
  //    seed-for-seed identical to a sequential engine.Solve of that spec.
  const std::vector<ProblemSpec> workload = {
      ProblemSpec::Budget(10, 20), ProblemSpec::Cover(0.2, 20),
      ProblemSpec::FairCover(0.2, 20), ProblemSpec::Maximin(10, 20)};
  const std::vector<Result<Solution>> answers =
      engine.SolveBatch(workload, options);
  for (size_t i = 0; i < answers.size(); ++i) {
    if (!answers[i].ok()) {
      std::fprintf(stderr, "batch[%zu] failed: %s\n", i,
                   answers[i].status().ToString().c_str());
      return 1;
    }
    std::printf("batch[%zu] %-11s -> %2zu seeds, objective %.3f\n", i,
                answers[i]->problem.c_str(), answers[i]->seeds.size(),
                answers[i]->objective_value);
  }

  // 4. Or asynchronously: submit now, collect when needed. Futures are
  //    fulfilled on the engine's worker pool.
  std::future<Result<Solution>> pending =
      engine.SubmitSolve(ProblemSpec::Budget(5, 20), options);
  const Result<Solution> async_answer = pending.get();
  std::printf("\nasync budget-5 solve  -> %zu seeds, objective %.3f\n",
              async_answer->seeds.size(), async_answer->objective_value);

  // 5. The cache after the full session, and the refresh hook a serving
  //    loop would call when the underlying network data changes.
  std::printf("cache: %s\n", engine.cache_stats().DebugString().c_str());
  engine.Invalidate();
  std::printf("after Invalidate(): %s\n",
              engine.cache_stats().DebugString().c_str());
  return 0;
}
