// Scenario: auditing an existing seeding policy for time-critical fairness.
//
// A marketing team already picks campaign seeds by follower count
// (top-degree). This tool audits such a policy: for each deadline it
// reports per-group utilities, Eq. 2 disparity, and compares against the
// principled alternatives — showing how an audit would surface disparate
// impact before a campaign ships.
//
// Also demonstrates graph/groups file IO: the audited network is written
// to and re-read from edge-list + group files, the way a real audit would
// ingest data exported from a production system.

#include <cstdio>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/string_util.h"
#include "core/baselines.h"
#include "core/experiment.h"
#include "graph/datasets.h"
#include "graph/io.h"

using namespace tcim;

int main() {
  // The network under audit: the Rice-Facebook surrogate (4 age groups).
  Rng rng(99);
  const GroupedGraph original = datasets::RiceFacebookSurrogate(rng);

  // Round-trip through the interchange files an auditor would receive.
  const std::string edge_path = "/tmp/tcim_audit.edges";
  const std::string group_path = "/tmp/tcim_audit.groups";
  TCIM_CHECK(SaveEdgeList(original.graph, edge_path).ok());
  TCIM_CHECK(SaveGroups(original.groups, group_path).ok());
  const auto graph_result = LoadEdgeList(edge_path);
  TCIM_CHECK(graph_result.ok()) << graph_result.status().ToString();
  const Graph& graph = *graph_result;
  const auto groups_result = LoadGroupFile(group_path, graph.num_nodes());
  TCIM_CHECK(groups_result.ok()) << groups_result.status().ToString();
  const GroupAssignment& groups = *groups_result;
  std::printf("audited network: %s, %s\n\n", graph.DebugString().c_str(),
              groups.DebugString().c_str());

  const int kBudget = 30;
  const std::vector<NodeId> incumbent_policy = TopDegreeSeeds(graph, kBudget);

  TablePrinter table("Audit: top-degree policy vs alternatives",
                     {"tau", "policy", "total", "min group", "max group",
                      "disparity"});
  CsvWriter csv({"tau", "policy", "total", "min_group", "max_group",
                 "disparity"});

  const ConcaveFunction h = ConcaveFunction::Log();
  for (const int deadline : {2, 5, 20}) {
    ExperimentConfig config;
    config.deadline = deadline;
    config.num_worlds = 200;

    auto audit = [&](const char* policy, const std::vector<NodeId>& seeds) {
      const GroupUtilityReport report =
          EvaluateSeedSet(graph, groups, seeds, config);
      double lo = 1.0, hi = 0.0;
      for (const double fraction : report.normalized) {
        lo = std::min(lo, fraction);
        hi = std::max(hi, fraction);
      }
      const std::vector<std::string> cells = {
          StrFormat("%d", deadline), policy,
          FormatDouble(report.total_fraction, 4), FormatDouble(lo, 4),
          FormatDouble(hi, 4), FormatDouble(report.disparity, 4)};
      table.AddRow(cells);
      csv.AddRow(cells);
    };

    audit("incumbent top-degree", incumbent_policy);
    const ExperimentOutcome p1 =
        RunBudgetExperiment(graph, groups, config, kBudget);
    audit("greedy P1", p1.selection.seeds);
    const ExperimentOutcome p4 =
        RunBudgetExperiment(graph, groups, config, kBudget, &h);
    audit("fair P4-log", p4.selection.seeds);
  }
  table.Print();
  TCIM_CHECK(csv.WriteToFile("/tmp/tcim_audit_report.csv").ok());
  std::printf("\nfull audit CSV: /tmp/tcim_audit_report.csv\n");
  std::printf(
      "Reading the audit: at every deadline the incumbent leaves its\n"
      "worst-served group far behind (min-group column); the fair P4\n"
      "alternative lifts the worst-off group's utility by 2-4x. Note the\n"
      "concave surrogate on raw counts can overshoot toward the smallest\n"
      "group (max-group column) — pick the curvature of H, or per-group\n"
      "weights, to tune that trade-off (see bench_ablation).\n");
  std::remove(edge_path.c_str());
  std::remove(group_path.c_str());
  return 0;
}
