// Scenario: auditing an existing seeding policy for time-critical fairness.
//
// A marketing team already picks campaign seeds by follower count
// (top-degree). This tool audits such a policy: for each deadline it
// reports per-group utilities, Eq. 2 disparity, and compares against the
// principled alternatives — showing how an audit would surface disparate
// impact before a campaign ships.
//
// Everything runs through the facade: the incumbent policy is the
// registry's "degree" solver (ProblemSpec::solver), the alternatives are
// the default greedy on P1/P4, and all three share one spec shape — so the
// audit loop never touches oracle or solver internals.
//
// Also demonstrates graph/groups file IO: the audited network is written
// to and re-read from edge-list + group files, the way a real audit would
// ingest data exported from a production system.

#include <cstdio>
#include <string>
#include <vector>

#include "api/tcim.h"
#include "common/csv.h"
#include "common/string_util.h"

using namespace tcim;

int main() {
  // The network under audit: the Rice-Facebook surrogate (4 age groups).
  Rng rng(99);
  const GroupedGraph original = datasets::RiceFacebookSurrogate(rng);

  // Round-trip through the interchange files an auditor would receive.
  const std::string edge_path = "/tmp/tcim_audit.edges";
  const std::string group_path = "/tmp/tcim_audit.groups";
  TCIM_CHECK(SaveEdgeList(original.graph, edge_path).ok());
  TCIM_CHECK(SaveGroups(original.groups, group_path).ok());
  const auto graph_result = LoadEdgeList(edge_path);
  TCIM_CHECK(graph_result.ok()) << graph_result.status().ToString();
  const Graph& graph = *graph_result;
  const auto groups_result = LoadGroupFile(group_path, graph.num_nodes());
  TCIM_CHECK(groups_result.ok()) << groups_result.status().ToString();
  const GroupAssignment& groups = *groups_result;
  std::printf("audited network: %s, %s\n\n", graph.DebugString().c_str(),
              groups.DebugString().c_str());

  const int kBudget = 30;

  TablePrinter table("Audit: top-degree policy vs alternatives",
                     {"tau", "policy", "total", "min group", "max group",
                      "disparity"});
  CsvWriter csv({"tau", "policy", "total", "min_group", "max_group",
                 "disparity"});

  SolveOptions options;
  options.num_worlds = 200;

  for (const int deadline : {2, 5, 20}) {
    auto audit = [&](const char* policy, const GroupUtilityReport& report) {
      double lo = 1.0, hi = 0.0;
      for (const double fraction : report.normalized) {
        lo = std::min(lo, fraction);
        hi = std::max(hi, fraction);
      }
      const std::vector<std::string> cells = {
          StrFormat("%d", deadline), policy,
          FormatDouble(report.total_fraction, 4), FormatDouble(lo, 4),
          FormatDouble(hi, 4), FormatDouble(report.disparity, 4)};
      table.AddRow(cells);
      csv.AddRow(cells);
    };

    // The incumbent policy is just another registered solver.
    ProblemSpec incumbent = ProblemSpec::Budget(kBudget, deadline);
    incumbent.solver = "degree";
    // Result's checked deref aborts with the status message on error.
    const Result<Solution> top_degree =
        Solve(graph, groups, incumbent, options);
    audit("incumbent top-degree", *top_degree->evaluation);

    const Result<Solution> p1 =
        Solve(graph, groups, ProblemSpec::Budget(kBudget, deadline), options);
    audit("greedy P1", *p1->evaluation);

    const Result<Solution> p4 = Solve(
        graph, groups, ProblemSpec::FairBudget(kBudget, deadline), options);
    audit("fair P4-log", *p4->evaluation);
  }
  table.Print();
  TCIM_CHECK(csv.WriteToFile("/tmp/tcim_audit_report.csv").ok());
  std::printf("\nfull audit CSV: /tmp/tcim_audit_report.csv\n");
  std::printf(
      "Reading the audit: at every deadline the incumbent leaves its\n"
      "worst-served group far behind (min-group column); the fair P4\n"
      "alternative lifts the worst-off group's utility by 2-4x. Note the\n"
      "concave surrogate on raw counts can overshoot toward the smallest\n"
      "group (max-group column) — pick the curvature of H, or per-group\n"
      "weights, to tune that trade-off (see bench_ablation).\n");
  std::remove(edge_path.c_str());
  std::remove(group_path.c_str());
  return 0;
}
