// Scenario: a time-critical job-information campaign.
//
// A public agency wants to spread word about a funding program whose
// application window closes in a few days. Information that arrives after
// the deadline is useless (the paper's motivating example). The network is
// a university-town social graph with a well-connected majority community
// and a sparsely connected minority community; the agency can brief B = 25
// "ambassadors" (seeds).
//
// This example sweeps ONE ProblemSpec field (the deadline) across solves of
// the P1 and P4 specs to show how the choice of objective changes WHO hears
// about the program in time — and what the fair surrogate costs in reach.

#include <cstdio>
#include <vector>

#include "api/tcim.h"
#include "common/csv.h"
#include "common/string_util.h"

using namespace tcim;

int main() {
  // A town-scale network: 2000 residents, 75% in the majority community,
  // strong homophily. Word-of-mouth passes along an edge with prob. 0.04.
  Rng rng(2026);
  SbmParams params;
  params.num_nodes = 2000;
  params.majority_fraction = 0.75;
  params.p_hom = 0.008;
  params.p_het = 0.0004;
  params.activation_probability = 0.04;
  const GroupedGraph town = GenerateSbm(params, rng);
  std::printf("town network: %s\n", town.graph.DebugString().c_str());
  std::printf("communities : %s\n\n", town.groups.DebugString().c_str());

  const int kAmbassadors = 25;
  TablePrinter table(
      "Who hears about the program before the deadline?",
      {"days left", "policy", "reached (all)", "majority", "minority",
       "disparity"});

  SolveOptions options;
  options.num_worlds = 300;

  for (const int days_left : {3, 7, 14}) {
    // One propagation step per day.
    const Result<Solution> reach_max =
        Solve(town.graph, town.groups,
              ProblemSpec::Budget(kAmbassadors, /*deadline=*/days_left),
              options);
    const Result<Solution> fair =
        Solve(town.graph, town.groups,
              ProblemSpec::FairBudget(kAmbassadors, /*deadline=*/days_left),
              options);
    auto add = [&](const char* policy, const GroupUtilityReport& report) {
      table.AddRow({StrFormat("%d", days_left), policy,
                    FormatDouble(report.total_fraction, 4),
                    FormatDouble(report.normalized[0], 4),
                    FormatDouble(report.normalized[1], 4),
                    FormatDouble(report.disparity, 4)});
    };
    add("reach-maximizing (P1)", *reach_max->evaluation);
    add("fairness-aware (P4)", *fair->evaluation);
  }
  table.Print();

  std::printf(
      "\nReading the table: with a tight window the reach-maximizing policy\n"
      "informs almost nobody in the minority community; the fairness-aware\n"
      "policy spends a few ambassadors on minority hubs and closes the gap\n"
      "at a small cost in total reach. The tighter the deadline, the larger\n"
      "the correction it makes.\n");
  return 0;
}
