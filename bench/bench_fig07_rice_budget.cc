// Figure 7 [Rice-Facebook surrogate, budget problem]:
//   7a — total + group influence for P1, P4-log, P4-sqrt (pe=0.01, τ=20,
//        B=30, 4 age groups; the two most-disparate groups are reported);
//   7b — influence vs budget B ∈ {5..30};
//   7c — disparity vs deadline τ ∈ {1, 2, 5, 20, 50, ∞}.
//
// The paper reports the two groups with maximum disparity under P1 (its
// groups 0 = ages 18-19 and 1 = age 20); we do the same.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/csv.h"
#include "core/experiment.h"
#include "graph/datasets.h"

namespace tcim {
namespace {

// The pair of groups reported throughout the figure: most disparate under
// the baseline P1 solution at the default configuration.
std::pair<GroupId, GroupId> ReportPair(const GroupedGraph& gg,
                                       const ExperimentConfig& config,
                                       int budget) {
  const ExperimentOutcome p1 =
      RunBudgetExperiment(gg.graph, gg.groups, config, budget);
  return MostDisparatePair(p1.report);
}

void RunFig7a(const GroupedGraph& gg, const ExperimentConfig& config,
              int budget, GroupId ga, GroupId gb) {
  TablePrinter table(
      StrFormat("Fig 7a: total and group influence (groups %d vs %d)", ga, gb),
      {"algorithm", "total", "groupA", "groupB", "pair disparity"});
  CsvWriter csv({"algorithm", "total", "groupA", "groupB", "disparity"});

  const ConcaveFunction log_h = ConcaveFunction::Log();
  const ConcaveFunction sqrt_h = ConcaveFunction::Sqrt();
  struct Row {
    const char* name;
    const ConcaveFunction* h;
  };
  for (const Row& row : {Row{"P1", nullptr}, Row{"P4-Log", &log_h},
                         Row{"P4-Sqrt", &sqrt_h}}) {
    const ExperimentOutcome outcome =
        RunBudgetExperiment(gg.graph, gg.groups, config, budget, row.h);
    const std::vector<std::string> cells = {
        row.name, FormatDouble(outcome.report.total_fraction, 4),
        FormatDouble(outcome.report.normalized[ga], 4),
        FormatDouble(outcome.report.normalized[gb], 4),
        FormatDouble(outcome.report.DisparityAmong({ga, gb}), 4)};
    table.AddRow(cells);
    csv.AddRow(cells);
  }
  table.Print();
  bench::WriteCsv(csv, "fig07a_h_variants.csv");
}

void RunFig7b(const GroupedGraph& gg, const ExperimentConfig& config,
              int max_budget, GroupId ga, GroupId gb) {
  TablePrinter table("Fig 7b: influence vs seed budget B",
                     {"B", "P1 total", "P1 gA", "P1 gB", "P4 total", "P4 gA",
                      "P4 gB"});
  CsvWriter csv({"B", "method", "total", "groupA", "groupB", "disparity"});

  const ConcaveFunction log_h = ConcaveFunction::Log();
  const ExperimentOutcome p1 =
      RunBudgetExperiment(gg.graph, gg.groups, config, max_budget);
  const ExperimentOutcome p4 =
      RunBudgetExperiment(gg.graph, gg.groups, config, max_budget, &log_h);

  for (int budget = 5; budget <= max_budget; budget += 5) {
    const std::vector<NodeId> p1_prefix(p1.selection.seeds.begin(),
                                        p1.selection.seeds.begin() + budget);
    const std::vector<NodeId> p4_prefix(p4.selection.seeds.begin(),
                                        p4.selection.seeds.begin() + budget);
    const GroupUtilityReport r1 =
        EvaluateSeedSet(gg.graph, gg.groups, p1_prefix, config);
    const GroupUtilityReport r4 =
        EvaluateSeedSet(gg.graph, gg.groups, p4_prefix, config);
    table.AddRow({StrFormat("%d", budget), FormatDouble(r1.total_fraction, 4),
                  FormatDouble(r1.normalized[ga], 4),
                  FormatDouble(r1.normalized[gb], 4),
                  FormatDouble(r4.total_fraction, 4),
                  FormatDouble(r4.normalized[ga], 4),
                  FormatDouble(r4.normalized[gb], 4)});
    csv.AddRow({StrFormat("%d", budget), "P1", FormatDouble(r1.total_fraction, 4),
                FormatDouble(r1.normalized[ga], 4),
                FormatDouble(r1.normalized[gb], 4),
                FormatDouble(r1.DisparityAmong({ga, gb}), 4)});
    csv.AddRow({StrFormat("%d", budget), "P4-log",
                FormatDouble(r4.total_fraction, 4),
                FormatDouble(r4.normalized[ga], 4),
                FormatDouble(r4.normalized[gb], 4),
                FormatDouble(r4.DisparityAmong({ga, gb}), 4)});
  }
  table.Print();
  bench::WriteCsv(csv, "fig07b_budget_sweep.csv");
}

void RunFig7c(const GroupedGraph& gg, ExperimentConfig config, int budget,
              GroupId ga, GroupId gb) {
  TablePrinter table("Fig 7c: pair disparity vs time deadline tau",
                     {"tau", "P1 disparity", "P4 disparity"});
  CsvWriter csv({"tau", "method", "disparity", "total"});

  const ConcaveFunction log_h = ConcaveFunction::Log();
  for (const int deadline : {1, 2, 5, 20, 50, kNoDeadline}) {
    config.deadline = deadline;
    const ExperimentOutcome p1 =
        RunBudgetExperiment(gg.graph, gg.groups, config, budget);
    const ExperimentOutcome p4 =
        RunBudgetExperiment(gg.graph, gg.groups, config, budget, &log_h);
    table.AddRow({bench::FormatTau(deadline),
                  FormatDouble(p1.report.DisparityAmong({ga, gb}), 4),
                  FormatDouble(p4.report.DisparityAmong({ga, gb}), 4)});
    csv.AddRow({bench::FormatTau(deadline), "P1",
                FormatDouble(p1.report.DisparityAmong({ga, gb}), 4),
                FormatDouble(p1.report.total_fraction, 4)});
    csv.AddRow({bench::FormatTau(deadline), "P4-log",
                FormatDouble(p4.report.DisparityAmong({ga, gb}), 4),
                FormatDouble(p4.report.total_fraction, 4)});
  }
  table.Print();
  bench::WriteCsv(csv, "fig07c_deadline_sweep.csv");
}

void Run(int argc, char** argv) {
  bench::PrintBanner("Figure 7",
                     "Rice-Facebook surrogate, budget problem (pe=0.01)");
  const int worlds = bench::IntFlag(argc, argv, "worlds", 500);
  const int budget = bench::IntFlag(argc, argv, "budget", 30);

  Rng rng(7777);
  const GroupedGraph gg = datasets::RiceFacebookSurrogate(rng);
  std::printf("graph: %s, groups: %s, worlds=%d\n",
              gg.graph.DebugString().c_str(), gg.groups.DebugString().c_str(),
              worlds);

  ExperimentConfig config;
  config.deadline = 20;
  config.num_worlds = worlds;

  Stopwatch watch;
  const auto [ga, gb] = ReportPair(gg, config, budget);
  std::printf("reporting the most-disparate pair under P1: groups %d and %d\n\n",
              ga, gb);
  RunFig7a(gg, config, budget, ga, gb);
  RunFig7b(gg, config, budget, ga, gb);
  RunFig7c(gg, config, budget, ga, gb);
  std::printf("[time] figure 7 total: %.1fs\n", watch.ElapsedSeconds());
}

}  // namespace
}  // namespace tcim

int main(int argc, char** argv) {
  tcim::Run(argc, argv);
  return 0;
}
