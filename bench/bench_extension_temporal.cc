// Extension bench (the paper's future-work directions, §8):
//   A — "discounting with time": P1 vs P4 under exponential-discount
//       utility w(t) = γ^t across γ, on the synthetic SBM;
//   B — time-delayed diffusion (IC-M of Chen-Lu-Zhang 2012): disparity
//       under meeting probabilities m ∈ {1.0, 0.5, 0.25, 0.1} at a fixed
//       wall-clock horizon — slower meetings act like a tighter deadline,
//       so the paper's "time-criticality exacerbates disparity" claim
//       should re-appear as m decreases;
//   C — weight-shape comparison: step vs discount vs linear decay at a
//       common horizon.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/csv.h"
#include "core/budget.h"
#include "core/fairness.h"
#include "graph/datasets.h"
#include "graph/io.h"
#include "sim/analytics.h"
#include "sim/arrival_oracle.h"

namespace tcim {
namespace {

struct Solved {
  GroupUtilityReport p1;
  GroupUtilityReport p4;
};

// Solves P1 and P4-log on an ArrivalOracle configured by (weight, delays);
// reports are computed from the oracle's own estimates (the weighted
// utility has no separate evaluation protocol in the paper).
Solved SolveBoth(const GroupedGraph& gg, const TemporalWeight& weight,
                 const DelaySampler& delays, int worlds, int budget) {
  ArrivalOracleOptions options;
  options.num_worlds = worlds;
  BudgetOptions budget_options;
  budget_options.budget = budget;

  Solved solved;
  {
    ArrivalOracle oracle(&gg.graph, &gg.groups, weight, delays, options);
    const GreedyResult result = SolveTcimBudget(oracle, budget_options);
    solved.p1 = MakeGroupUtilityReport(result.coverage, gg.groups);
  }
  {
    ArrivalOracle oracle(&gg.graph, &gg.groups, weight, delays, options);
    const GreedyResult result =
        SolveFairTcimBudget(oracle, ConcaveFunction::Log(), budget_options);
    solved.p4 = MakeGroupUtilityReport(result.coverage, gg.groups);
  }
  return solved;
}

void Run(int argc, char** argv) {
  bench::PrintBanner("Extensions",
                     "discounted utility + IC-M delays (paper future work)");
  const int worlds = bench::IntFlag(argc, argv, "worlds", 200);
  const int budget = bench::IntFlag(argc, argv, "budget", 30);
  const int horizon = 20;

  Rng rng(4242);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  std::printf("graph: %s\n\n", gg.graph.DebugString().c_str());

  // --- A: discount factor sweep. ------------------------------------------
  {
    TablePrinter table("Ext A: exponential discounting w(t)=gamma^t",
                       {"gamma", "P1 total", "P1 disparity", "P4 total",
                        "P4 disparity"});
    CsvWriter csv({"gamma", "method", "total_weighted", "disparity"});
    for (const double gamma : {1.0, 0.9, 0.7, 0.5, 0.3}) {
      const Solved solved = SolveBoth(
          gg, TemporalWeight::ExponentialDiscount(gamma, horizon),
          DelaySampler::Unit(), worlds, budget);
      table.AddRow({FormatDouble(gamma, 2),
                    FormatDouble(solved.p1.total_fraction, 4),
                    FormatDouble(solved.p1.disparity, 4),
                    FormatDouble(solved.p4.total_fraction, 4),
                    FormatDouble(solved.p4.disparity, 4)});
      csv.AddRow({FormatDouble(gamma, 2), "P1",
                  FormatDouble(solved.p1.total_fraction, 4),
                  FormatDouble(solved.p1.disparity, 4)});
      csv.AddRow({FormatDouble(gamma, 2), "P4-log",
                  FormatDouble(solved.p4.total_fraction, 4),
                  FormatDouble(solved.p4.disparity, 4)});
    }
    table.Print();
    bench::WriteCsv(csv, "ext_discount_sweep.csv");
  }

  // --- B: IC-M meeting-probability sweep. ----------------------------------
  {
    TablePrinter table(
        "Ext B: IC-M meeting probability m (step utility, horizon=20)",
        {"m", "P1 total", "P1 disparity", "P4 total", "P4 disparity"});
    CsvWriter csv({"m", "method", "total", "disparity"});
    for (const double m : {1.0, 0.5, 0.25, 0.1}) {
      const Solved solved =
          SolveBoth(gg, TemporalWeight::Step(horizon),
                    DelaySampler::Geometric(m, 909), worlds, budget);
      table.AddRow({FormatDouble(m, 2),
                    FormatDouble(solved.p1.total_fraction, 4),
                    FormatDouble(solved.p1.disparity, 4),
                    FormatDouble(solved.p4.total_fraction, 4),
                    FormatDouble(solved.p4.disparity, 4)});
      csv.AddRow({FormatDouble(m, 2), "P1",
                  FormatDouble(solved.p1.total_fraction, 4),
                  FormatDouble(solved.p1.disparity, 4)});
      csv.AddRow({FormatDouble(m, 2), "P4-log",
                  FormatDouble(solved.p4.total_fraction, 4),
                  FormatDouble(solved.p4.disparity, 4)});
    }
    table.Print();
    bench::WriteCsv(csv, "ext_icm_sweep.csv");
  }

  // --- C: weight shapes at a common horizon. -------------------------------
  {
    TablePrinter table("Ext C: temporal weight shape (horizon=20)",
                       {"w(t)", "P1 total", "P1 disparity", "P4 total",
                        "P4 disparity"});
    CsvWriter csv({"weight", "method", "total_weighted", "disparity"});
    std::vector<TemporalWeight> weights = {
        TemporalWeight::Step(horizon),
        TemporalWeight::ExponentialDiscount(0.7, horizon),
        TemporalWeight::LinearDecay(horizon),
    };
    for (const TemporalWeight& weight : weights) {
      const Solved solved =
          SolveBoth(gg, weight, DelaySampler::Unit(), worlds, budget);
      table.AddRow({weight.name(), FormatDouble(solved.p1.total_fraction, 4),
                    FormatDouble(solved.p1.disparity, 4),
                    FormatDouble(solved.p4.total_fraction, 4),
                    FormatDouble(solved.p4.disparity, 4)});
      csv.AddRow({weight.name(), "P1",
                  FormatDouble(solved.p1.total_fraction, 4),
                  FormatDouble(solved.p1.disparity, 4)});
      csv.AddRow({weight.name(), "P4-log",
                  FormatDouble(solved.p4.total_fraction, 4),
                  FormatDouble(solved.p4.disparity, 4)});
    }
    table.Print();
    bench::WriteCsv(csv, "ext_weight_shapes.csv");
  }

  // --- D: speed inequality via arrival curves. -----------------------------
  {
    // Quantifies §1's "one group gets influenced faster": per group, the
    // time to reach 5% / 10% penetration under P1 vs P4 seeds.
    OracleOptions oracle_options;
    oracle_options.num_worlds = worlds;
    oracle_options.deadline = horizon;
    InfluenceOracle oracle(&gg.graph, &gg.groups, oracle_options);
    BudgetOptions budget_options;
    budget_options.budget = budget;
    const GreedyResult p1 = SolveTcimBudget(oracle, budget_options);
    const GreedyResult p4 =
        SolveFairTcimBudget(oracle, ConcaveFunction::Log(), budget_options);

    const ArrivalCurves p1_curves = ComputeArrivalCurves(
        gg.graph, gg.groups, p1.seeds, /*horizon=*/40, oracle_options);
    const ArrivalCurves p4_curves = ComputeArrivalCurves(
        gg.graph, gg.groups, p4.seeds, 40, oracle_options);

    TablePrinter table("Ext D: time to reach a penetration level (steps)",
                       {"level", "P1 majority", "P1 minority", "P4 majority",
                        "P4 minority"});
    auto cell = [&](const ArrivalCurves& curves, GroupId g, double level) {
      const int t = curves.TimeToReach(g, level, gg.groups);
      return t < 0 ? std::string("never") : StrFormat("%d", t);
    };
    for (const double level : {0.02, 0.05, 0.10}) {
      table.AddRow({FormatDouble(level, 2), cell(p1_curves, 0, level),
                    cell(p1_curves, 1, level), cell(p4_curves, 0, level),
                    cell(p4_curves, 1, level)});
    }
    table.Print();
    const Status status = WriteStringToFile(p1_curves.ToCsv(gg.groups),
                                            "ext_arrival_curves_p1.csv");
    const Status status4 = WriteStringToFile(p4_curves.ToCsv(gg.groups),
                                             "ext_arrival_curves_p4.csv");
    if (status.ok() && status4.ok()) {
      std::printf(
          "[csv] wrote ext_arrival_curves_p1.csv / ext_arrival_curves_p4.csv\n");
    }
  }
}

}  // namespace
}  // namespace tcim

int main(int argc, char** argv) {
  tcim::Run(argc, argv);
  return 0;
}
