// Figure 9 [Instagram-Activities surrogate]:
//   9a — budget problem: total + per-gender influence for P1, P4-log,
//        P4-sqrt (pe=0.06, τ=2, B=30, seeds restricted to 5000 random
//        candidates, exactly as in the paper);
//   9b — cover problem: per-gender influence at Q ∈ {0.0015, 0.002};
//   9c — cover problem: solution set size |S| at each quota.
//
// The surrogate is the paper's graph uniformly scaled 1/10 (average degree
// preserved, so pe transfers unchanged); fractions are comparable, absolute
// counts are 10x smaller. The paper uses 10000 Monte-Carlo samples; the
// default here is 2000 (override with --worlds=) — fractions at this scale
// are already stable to ~3 significant digits.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/csv.h"
#include "core/baselines.h"
#include "core/experiment.h"
#include "graph/datasets.h"

namespace tcim {
namespace {

void Run(int argc, char** argv) {
  bench::PrintBanner(
      "Figure 9", "Instagram-Activities surrogate (1/10 scale), tau=2");
  const int worlds = bench::IntFlag(argc, argv, "worlds", 2000);
  const int budget = bench::IntFlag(argc, argv, "budget", 30);
  const int scale = bench::IntFlag(argc, argv, "scale", 10);

  Rng rng(9999);
  const GroupedGraph gg = datasets::InstagramSurrogate(rng, scale);
  std::printf("graph: %s, groups: %s (male=%d, female=%d), worlds=%d\n\n",
              gg.graph.DebugString().c_str(), gg.groups.DebugString().c_str(),
              gg.groups.GroupSize(0), gg.groups.GroupSize(1), worlds);

  // The paper restricts seed candidates to 5000 random nodes.
  Rng candidate_rng(555);
  std::vector<NodeId> candidates =
      RandomSeeds(gg.graph, std::min<NodeId>(5000, gg.graph.num_nodes()),
                  candidate_rng);

  ExperimentConfig config;
  config.deadline = 2;
  config.num_worlds = worlds;
  config.candidates = &candidates;

  Stopwatch watch;

  // --- Fig 9a: budget problem, H variants. --------------------------------
  TablePrinter table_a("Fig 9a: budget problem (B=30)",
                       {"algorithm", "total", "male", "female", "disparity"});
  CsvWriter csv_a({"algorithm", "total", "male", "female", "disparity"});
  const ConcaveFunction log_h = ConcaveFunction::Log();
  const ConcaveFunction sqrt_h = ConcaveFunction::Sqrt();
  struct Row {
    const char* name;
    const ConcaveFunction* h;
  };
  for (const Row& row : {Row{"P1", nullptr}, Row{"P4-Log", &log_h},
                         Row{"P4-Sqrt", &sqrt_h}}) {
    const ExperimentOutcome outcome =
        RunBudgetExperiment(gg.graph, gg.groups, config, budget, row.h);
    const std::vector<std::string> cells = {
        row.name, FormatDouble(outcome.report.total_fraction, 6),
        FormatDouble(outcome.report.normalized[0], 6),
        FormatDouble(outcome.report.normalized[1], 6),
        FormatDouble(outcome.report.disparity, 6)};
    table_a.AddRow(cells);
    csv_a.AddRow(cells);
    std::printf("  %-8s done (%.1fs)\n", row.name, watch.ElapsedSeconds());
  }
  table_a.Print();
  bench::WriteCsv(csv_a, "fig09a_budget.csv");

  // --- Fig 9b / 9c: cover problem. ----------------------------------------
  TablePrinter table_b("Fig 9b: cover problem influence",
                       {"Q", "P2 male", "P2 female", "P6 male", "P6 female"});
  TablePrinter table_c("Fig 9c: cover problem cost",
                       {"Q", "P2 |S|", "P6 |S|"});
  CsvWriter csv_bc({"Q", "method", "male", "female", "seeds", "reached"});

  for (const double quota : {0.0015, 0.002}) {
    const ExperimentOutcome p2 = RunCoverExperiment(
        gg.graph, gg.groups, config, quota, /*fair=*/false, /*max_seeds=*/200);
    const ExperimentOutcome p6 = RunCoverExperiment(
        gg.graph, gg.groups, config, quota, /*fair=*/true, /*max_seeds=*/200);
    table_b.AddRow({FormatDouble(quota),
                    FormatDouble(p2.report.normalized[0], 6),
                    FormatDouble(p2.report.normalized[1], 6),
                    FormatDouble(p6.report.normalized[0], 6),
                    FormatDouble(p6.report.normalized[1], 6)});
    table_c.AddRow({FormatDouble(quota),
                    StrFormat("%zu", p2.selection.seeds.size()),
                    StrFormat("%zu", p6.selection.seeds.size())});
    csv_bc.AddRow({FormatDouble(quota), "P2",
                   FormatDouble(p2.report.normalized[0], 6),
                   FormatDouble(p2.report.normalized[1], 6),
                   StrFormat("%zu", p2.selection.seeds.size()),
                   p2.selection.target_reached ? "1" : "0"});
    csv_bc.AddRow({FormatDouble(quota), "P6",
                   FormatDouble(p6.report.normalized[0], 6),
                   FormatDouble(p6.report.normalized[1], 6),
                   StrFormat("%zu", p6.selection.seeds.size()),
                   p6.selection.target_reached ? "1" : "0"});
    std::printf("  Q=%s done (%.1fs)\n", FormatDouble(quota).c_str(),
                watch.ElapsedSeconds());
  }
  table_b.Print();
  table_c.Print();
  bench::WriteCsv(csv_bc, "fig09bc_cover.csv");

  std::printf("[time] figure 9 total: %.1fs\n", watch.ElapsedSeconds());
}

}  // namespace
}  // namespace tcim

int main(int argc, char** argv) {
  tcim::Run(argc, argv);
  return 0;
}
