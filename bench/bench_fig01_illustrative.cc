// Figure 1 (table): the illustrative example of disparity under standard
// TCIM-Budget (P1) vs the fair surrogate FairTCIM-Budget (P4, H = log).
//
// Reproduces the paper's table: for τ ∈ {∞, 4, 2} and budget B = 2, the
// normalized utilities f(S;V)/|V|, f(S;V1)/|V1|, f(S;V2)/|V2| of the two
// optimal-greedy solutions on the 38-node two-group graph with pe = 0.7.
//
// Expected shape: P1 picks the two blue hubs {a, b}; its V2 utility decays
// to 0 as τ shrinks to 2. P4 trades a little total utility for near-parity
// at every deadline.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/csv.h"
#include "core/experiment.h"
#include "graph/datasets.h"

namespace tcim {
namespace {

std::string SeedNames(const std::vector<NodeId>& seeds) {
  std::string out = "{";
  for (size_t i = 0; i < seeds.size(); ++i) {
    if (i > 0) out += ",";
    switch (seeds[i]) {
      case datasets::kIllustrativeA: out += "a"; break;
      case datasets::kIllustrativeB: out += "b"; break;
      case datasets::kIllustrativeC: out += "c"; break;
      case datasets::kIllustrativeD: out += "d"; break;
      case datasets::kIllustrativeE: out += "e"; break;
      default: out += StrFormat("v%d", seeds[i]);
    }
  }
  return out + "}";
}

void Run(int argc, char** argv) {
  bench::PrintBanner("Figure 1",
                     "illustrative example: disparity of P1 vs P4 (B = 2)");
  const int worlds = bench::IntFlag(argc, argv, "worlds", 2000);

  const GroupedGraph gg = datasets::IllustrativeGraph();
  std::printf("graph: %s, groups: %s\n\n", gg.graph.DebugString().c_str(),
              gg.groups.DebugString().c_str());

  TablePrinter table(
      "P1 (TCIM-Budget) vs P4 (FairTCIM-Budget, H=log), B=2, pe=0.7",
      {"tau", "P1 seeds", "P1 f/|V|", "P1 f1/|V1|", "P1 f2/|V2|",
       "P4 seeds", "P4 f/|V|", "P4 f1/|V1|", "P4 f2/|V2|"});
  CsvWriter csv({"tau", "method", "seeds", "total", "group1", "group2",
                 "disparity"});

  const ConcaveFunction log_h = ConcaveFunction::Log();
  for (const int deadline : {kNoDeadline, 4, 2}) {
    ExperimentConfig config;
    config.deadline = deadline;
    config.num_worlds = worlds;
    const ExperimentOutcome p1 =
        RunBudgetExperiment(gg.graph, gg.groups, config, /*budget=*/2);
    const ExperimentOutcome p4 =
        RunBudgetExperiment(gg.graph, gg.groups, config, 2, &log_h);

    table.AddRow({bench::FormatTau(deadline), SeedNames(p1.selection.seeds),
                  FormatDouble(p1.report.total_fraction, 2),
                  FormatDouble(p1.report.normalized[0], 2),
                  FormatDouble(p1.report.normalized[1], 2),
                  SeedNames(p4.selection.seeds),
                  FormatDouble(p4.report.total_fraction, 2),
                  FormatDouble(p4.report.normalized[0], 2),
                  FormatDouble(p4.report.normalized[1], 2)});
    auto add_csv_row = [&](const std::string& name,
                           const ExperimentOutcome& outcome) {
      csv.AddRow({bench::FormatTau(deadline), name,
                  SeedNames(outcome.selection.seeds),
                  FormatDouble(outcome.report.total_fraction, 4),
                  FormatDouble(outcome.report.normalized[0], 4),
                  FormatDouble(outcome.report.normalized[1], 4),
                  FormatDouble(outcome.report.disparity, 4)});
    };
    add_csv_row("P1", p1);
    add_csv_row("P4-log", p4);
  }
  table.Print();
  bench::WriteCsv(csv, "fig01_illustrative.csv");
}

}  // namespace
}  // namespace tcim

int main(int argc, char** argv) {
  tcim::Run(argc, argv);
  return 0;
}
