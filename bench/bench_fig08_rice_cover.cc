// Figure 8 [Rice-Facebook surrogate, cover problem]:
//   8a — fraction influenced per greedy iteration for P2 vs P6 at Q = 0.2
//        (reported for the two most-disparate groups);
//   8b — per-group influence at quota Q ∈ {0.1, 0.2, 0.3};
//   8c — solution set size |S| at each quota.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/csv.h"
#include "core/experiment.h"
#include "graph/datasets.h"

namespace tcim {
namespace {

void Run(int argc, char** argv) {
  bench::PrintBanner("Figure 8",
                     "Rice-Facebook surrogate, cover problem (pe=0.01)");
  const int worlds = bench::IntFlag(argc, argv, "worlds", 500);

  Rng rng(7777);
  const GroupedGraph gg = datasets::RiceFacebookSurrogate(rng);
  std::printf("graph: %s, groups: %s, worlds=%d\n\n",
              gg.graph.DebugString().c_str(), gg.groups.DebugString().c_str(),
              worlds);

  ExperimentConfig config;
  config.deadline = 20;
  config.num_worlds = worlds;

  Stopwatch watch;

  // --- Fig 8a: iteration trace at Q = 0.2. -------------------------------
  const double kTraceQuota = 0.2;
  const ExperimentOutcome p2_trace = RunCoverExperiment(
      gg.graph, gg.groups, config, kTraceQuota, /*fair=*/false);
  const ExperimentOutcome p6_trace = RunCoverExperiment(
      gg.graph, gg.groups, config, kTraceQuota, /*fair=*/true);

  // Report the pair with the highest disparity under P2's final solution.
  const auto [ga, gb] = MostDisparatePair(p2_trace.report);
  std::printf("reporting the most-disparate pair under P2: groups %d and %d\n\n",
              ga, gb);

  TablePrinter trace_table(
      "Fig 8a: greedy iterations at Q=0.2 (selection-time estimates)",
      {"iter", "P2 total", "P2 gA", "P2 gB", "P6 total", "P6 gA", "P6 gB"});
  CsvWriter trace_csv({"iteration", "method", "total", "groupA", "groupB"});
  const size_t iterations = std::max(p2_trace.selection.trace.size(),
                                     p6_trace.selection.trace.size());
  const NodeId n = gg.graph.num_nodes();
  auto cell = [&](const std::vector<GreedyStep>& trace, size_t i,
                  int what) -> std::string {
    if (i >= trace.size()) return "-";
    const GroupVector& cov = trace[i].coverage;
    if (what == 0) return FormatDouble(GroupVectorTotal(cov) / n, 4);
    const GroupId g = (what == 1) ? ga : gb;
    return FormatDouble(cov[g] / gg.groups.GroupSize(g), 4);
  };
  for (size_t i = 0; i < iterations; ++i) {
    trace_table.AddRow(
        {StrFormat("%zu", i + 1), cell(p2_trace.selection.trace, i, 0),
         cell(p2_trace.selection.trace, i, 1),
         cell(p2_trace.selection.trace, i, 2),
         cell(p6_trace.selection.trace, i, 0),
         cell(p6_trace.selection.trace, i, 1),
         cell(p6_trace.selection.trace, i, 2)});
    if (i < p2_trace.selection.trace.size()) {
      trace_csv.AddRow({StrFormat("%zu", i + 1), "P2",
                        cell(p2_trace.selection.trace, i, 0),
                        cell(p2_trace.selection.trace, i, 1),
                        cell(p2_trace.selection.trace, i, 2)});
    }
    if (i < p6_trace.selection.trace.size()) {
      trace_csv.AddRow({StrFormat("%zu", i + 1), "P6",
                        cell(p6_trace.selection.trace, i, 0),
                        cell(p6_trace.selection.trace, i, 1),
                        cell(p6_trace.selection.trace, i, 2)});
    }
  }
  trace_table.Print();
  std::printf("P2 used %zu seeds, P6 used %zu seeds\n\n",
              p2_trace.selection.seeds.size(),
              p6_trace.selection.seeds.size());
  bench::WriteCsv(trace_csv, "fig08a_iterations.csv");

  // --- Fig 8b / 8c: quota sweep. ------------------------------------------
  TablePrinter influence("Fig 8b: per-group influence vs quota Q",
                         {"Q", "P2 gA", "P2 gB", "P6 gA", "P6 gB"});
  TablePrinter sizes("Fig 8c: solution set size |S| vs quota Q",
                     {"Q", "P2 |S|", "P6 |S|"});
  CsvWriter csv({"Q", "method", "groupA", "groupB", "seeds", "reached"});

  for (const double quota : {0.1, 0.2, 0.3}) {
    const ExperimentOutcome p2 =
        RunCoverExperiment(gg.graph, gg.groups, config, quota, false);
    const ExperimentOutcome p6 =
        RunCoverExperiment(gg.graph, gg.groups, config, quota, true);
    influence.AddRow({FormatDouble(quota),
                      FormatDouble(p2.report.normalized[ga], 4),
                      FormatDouble(p2.report.normalized[gb], 4),
                      FormatDouble(p6.report.normalized[ga], 4),
                      FormatDouble(p6.report.normalized[gb], 4)});
    sizes.AddRow({FormatDouble(quota),
                  StrFormat("%zu", p2.selection.seeds.size()),
                  StrFormat("%zu", p6.selection.seeds.size())});
    csv.AddRow({FormatDouble(quota), "P2",
                FormatDouble(p2.report.normalized[ga], 4),
                FormatDouble(p2.report.normalized[gb], 4),
                StrFormat("%zu", p2.selection.seeds.size()),
                p2.selection.target_reached ? "1" : "0"});
    csv.AddRow({FormatDouble(quota), "P6",
                FormatDouble(p6.report.normalized[ga], 4),
                FormatDouble(p6.report.normalized[gb], 4),
                StrFormat("%zu", p6.selection.seeds.size()),
                p6.selection.target_reached ? "1" : "0"});
  }
  influence.Print();
  sizes.Print();
  bench::WriteCsv(csv, "fig08bc_quota_sweep.csv");

  std::printf("[time] figure 8 total: %.1fs\n", watch.ElapsedSeconds());
}

}  // namespace
}  // namespace tcim

int main(int argc, char** argv) {
  tcim::Run(argc, argv);
  return 0;
}
