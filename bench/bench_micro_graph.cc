// Microbenchmarks for the graph substrate: CSR construction, generators,
// BFS, and centrality.

#include <benchmark/benchmark.h>

#include "graph/algorithms.h"
#include "graph/centrality.h"
#include "graph/datasets.h"
#include "graph/generators.h"

namespace tcim {
namespace {

void BM_GraphBuild(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(5);
  // Pre-draw the edge list so only Build() is timed.
  std::vector<std::pair<NodeId, NodeId>> edges;
  const int64_t m = 8ll * n;
  for (int64_t i = 0; i < m; ++i) {
    const NodeId a = static_cast<NodeId>(rng.NextIndex(n));
    const NodeId b = static_cast<NodeId>(rng.NextIndex(n));
    if (a != b) edges.emplace_back(a, b);
  }
  for (auto _ : state) {
    GraphBuilder builder(n);
    for (const auto& [a, b] : edges) builder.AddEdge(a, b, 0.1);
    benchmark::DoNotOptimize(builder.Build().num_edges());
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_GraphBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GenerateSbm(benchmark::State& state) {
  Rng rng(7);
  SbmParams params;
  params.num_nodes = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateSbm(params, rng).graph.num_edges());
  }
}
BENCHMARK(BM_GenerateSbm)->Arg(500)->Arg(2000);

void BM_BfsDistances(benchmark::State& state) {
  Rng rng(11);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BfsDistances(gg.graph, source));
    source = (source + 1) % gg.graph.num_nodes();
  }
}
BENCHMARK(BM_BfsDistances);

void BM_PageRank(benchmark::State& state) {
  Rng rng(13);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PageRank(gg.graph));
  }
}
BENCHMARK(BM_PageRank);

void BM_CoreNumbers(benchmark::State& state) {
  Rng rng(17);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CoreNumbers(gg.graph));
  }
}
BENCHMARK(BM_CoreNumbers);

}  // namespace
}  // namespace tcim
