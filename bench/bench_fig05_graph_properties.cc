// Figure 5 [Synthetic dataset, budget problem — graph-property sweeps]:
//   5a — disparity vs activation probability pe ∈ {.01,.05,.1,.2,.3,.5,.7,1}
//        for τ ∈ {2, ∞}, P1 vs P4-log;
//   5b — disparity vs group-size split |V1|:|V2| ∈ {55:45, 60:40, 70:30,
//        80:20};
//   5c — disparity vs connectivity ratio p_het:p_hom ∈ {1:1, 3:5, 2:5,
//        1:25} (p_hom fixed at 0.025).
//
// Expected shape: lower pe, more imbalance, and more cliquishness all raise
// P1's disparity; P4 stays near parity throughout.
//
// Runs through the tcim::Engine facade (one Engine per generated graph);
// the 5a deadline dimension goes through Engine::SolveSweep, so both taus
// of a pe point share one sampled world set.

#include <cstdio>
#include <vector>

#include "api/tcim.h"
#include "bench/bench_util.h"
#include "common/csv.h"
#include "graph/generators.h"

namespace tcim {
namespace {

struct MethodPair {
  GroupUtilityReport p1;
  GroupUtilityReport p4;
};

// Solves P1 and P4-log on (graph, groups) at `deadline` and returns the
// fresh-world evaluation reports — the facade equivalent of the legacy
// RunBudgetExperiment pair (seed-for-seed identical since PR 1).
MethodPair SolveBoth(Engine& engine, int worlds, int deadline, int budget) {
  SolveOptions options;
  options.num_worlds = worlds;
  const Result<Solution> p1 =
      engine.Solve(ProblemSpec::Budget(budget, deadline), options);
  const Result<Solution> p4 =
      engine.Solve(ProblemSpec::FairBudget(budget, deadline), options);
  MethodPair pair;
  pair.p1 = *p1->evaluation;
  pair.p4 = *p4->evaluation;
  return pair;
}

void RunFig5a(int worlds, int budget) {
  TablePrinter table(
      "Fig 5a: disparity vs influence probability pe (P1/P4 at tau=2 and inf)",
      {"pe", "P1 tau=2", "P4 tau=2", "P1 tau=inf", "P4 tau=inf"});
  CsvWriter csv({"pe", "tau", "method", "disparity", "total"});

  const std::vector<int> deadlines = {2, kNoDeadline};
  for (const double pe : {0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0}) {
    Rng rng(5100);  // same structure across pe values, only weights change
    SbmParams params;
    params.activation_probability = pe;
    const GroupedGraph gg = GenerateSbm(params, rng);
    Engine engine(gg.graph, gg.groups);
    SolveOptions options;
    options.num_worlds = worlds;

    // Both taus of each method off one world build (SolveSweep).
    const Engine::SweepResult p1 =
        engine.SolveSweep(ProblemSpec::Budget(budget, 0), deadlines, options);
    const Engine::SweepResult p4 = engine.SolveSweep(
        ProblemSpec::FairBudget(budget, 0), deadlines, options);

    std::vector<std::string> cells = {FormatDouble(pe, 2)};
    for (size_t i = 0; i < deadlines.size(); ++i) {
      const GroupUtilityReport& p1_report = *p1.solutions[i]->evaluation;
      const GroupUtilityReport& p4_report = *p4.solutions[i]->evaluation;
      cells.push_back(FormatDouble(p1_report.disparity, 4));
      cells.push_back(FormatDouble(p4_report.disparity, 4));
      csv.AddRow({FormatDouble(pe, 2), bench::FormatTau(deadlines[i]), "P1",
                  FormatDouble(p1_report.disparity, 4),
                  FormatDouble(p1_report.total_fraction, 4)});
      csv.AddRow({FormatDouble(pe, 2), bench::FormatTau(deadlines[i]),
                  "P4-log", FormatDouble(p4_report.disparity, 4),
                  FormatDouble(p4_report.total_fraction, 4)});
    }
    table.AddRow(cells);
  }
  table.Print();
  bench::WriteCsv(csv, "fig05a_pe_sweep.csv");
}

void RunFig5b(int worlds, int budget) {
  TablePrinter table("Fig 5b: disparity vs group size ratio |V1|:|V2|",
                     {"ratio", "P1 disparity", "P4 disparity"});
  CsvWriter csv({"majority_fraction", "method", "disparity", "total"});

  for (const double g : {0.55, 0.6, 0.7, 0.8}) {
    Rng rng(5200);
    SbmParams params;
    params.majority_fraction = g;
    const GroupedGraph gg = GenerateSbm(params, rng);
    Engine engine(gg.graph, gg.groups);
    const MethodPair pair = SolveBoth(engine, worlds, /*deadline=*/20, budget);
    const std::string ratio =
        StrFormat("%d:%d", static_cast<int>(g * 100),
                  static_cast<int>((1 - g) * 100 + 0.5));
    table.AddRow({ratio, FormatDouble(pair.p1.disparity, 4),
                  FormatDouble(pair.p4.disparity, 4)});
    csv.AddRow({FormatDouble(g, 2), "P1", FormatDouble(pair.p1.disparity, 4),
                FormatDouble(pair.p1.total_fraction, 4)});
    csv.AddRow({FormatDouble(g, 2), "P4-log",
                FormatDouble(pair.p4.disparity, 4),
                FormatDouble(pair.p4.total_fraction, 4)});
  }
  table.Print();
  bench::WriteCsv(csv, "fig05b_group_sizes.csv");
}

void RunFig5c(int worlds, int budget) {
  TablePrinter table(
      "Fig 5c: disparity vs inter/intra connectivity (p_het : p_hom)",
      {"p_het:p_hom", "P1 disparity", "P4 disparity"});
  CsvWriter csv({"p_het", "p_hom", "method", "disparity", "total"});

  const double p_hom = 0.025;
  for (const double p_het : {0.025, 0.015, 0.01, 0.001}) {
    Rng rng(5300);
    SbmParams params;
    params.p_hom = p_hom;
    params.p_het = p_het;
    const GroupedGraph gg = GenerateSbm(params, rng);
    Engine engine(gg.graph, gg.groups);
    const MethodPair pair = SolveBoth(engine, worlds, /*deadline=*/20, budget);
    table.AddRow({StrFormat("%s:%s", FormatDouble(p_het, 3).c_str(),
                            FormatDouble(p_hom, 3).c_str()),
                  FormatDouble(pair.p1.disparity, 4),
                  FormatDouble(pair.p4.disparity, 4)});
    csv.AddRow({FormatDouble(p_het, 3), FormatDouble(p_hom, 3), "P1",
                FormatDouble(pair.p1.disparity, 4),
                FormatDouble(pair.p1.total_fraction, 4)});
    csv.AddRow({FormatDouble(p_het, 3), FormatDouble(p_hom, 3), "P4-log",
                FormatDouble(pair.p4.disparity, 4),
                FormatDouble(pair.p4.total_fraction, 4)});
  }
  table.Print();
  bench::WriteCsv(csv, "fig05c_cliquishness.csv");
}

void Run(int argc, char** argv) {
  bench::PrintBanner("Figure 5",
                     "synthetic SBM: graph-property effects on disparity");
  const int worlds = bench::IntFlag(argc, argv, "worlds", 200);
  const int budget = bench::IntFlag(argc, argv, "budget", 30);

  Stopwatch watch;
  RunFig5a(worlds, budget);
  RunFig5b(worlds, budget);
  RunFig5c(worlds, budget);
  std::printf("[time] figure 5 total: %.1fs\n", watch.ElapsedSeconds());
}

}  // namespace
}  // namespace tcim

int main(int argc, char** argv) {
  tcim::Run(argc, argv);
  return 0;
}
