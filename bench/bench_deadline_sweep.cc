// Deadline-sweep bench: what does one deadline-parametric backend build
// buy on the paper's fig04c sweep shape (τ ∈ {1,2,5,10,20,∞})?
//
//   * "cold x6" — six independent cold solves, one fresh Engine per
//     deadline: every τ samples its own backend, the pre-sweep state of
//     the world;
//   * "sweep"  — one Engine::SolveSweep over all six deadlines: ONE
//     backend construction per kind, every τ' answered by deadline
//     filtering at query time.
//
// Run for both the "montecarlo" and "rr" oracles (selection only,
// evaluate=false, so the CacheStats story is exactly one construction per
// kind). The acceptance bar — enforced with a nonzero exit so CI can
// smoke-run this next to bench_rr_backend — is a >= 2x wall-clock speedup
// of the warm sweep over the six cold solves for BOTH oracles, plus
// constructions == 1 per backend kind used.
//
// Overrides: --worlds=N (default 200), --rr-sets=N (default 2000),
// --budget=N (default 20), --repeats=N (default 3, best-of timing).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "api/tcim.h"
#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/stopwatch.h"

namespace tcim {
namespace {

const std::vector<int> kDeadlines = {1, 2, 5, 10, 20, kNoDeadline};

void DieOnError(const Result<Solution>& solution) {
  if (!solution.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 solution.status().ToString().c_str());
    std::exit(1);
  }
}

struct SweepTiming {
  double cold_seconds = 0.0;   // six independent cold solves
  double sweep_seconds = 0.0;  // one SolveSweep over all six deadlines
  int64_t sweep_constructions = 0;  // per-kind delta of the sweep
};

SweepTiming RunOracle(const GroupedGraph& gg, const std::string& oracle,
                      const SolveOptions& options, int budget, int repeats) {
  ProblemSpec spec = ProblemSpec::Budget(budget, 0);
  spec.oracle = oracle;

  SweepTiming timing;
  timing.cold_seconds = 1e100;
  timing.sweep_seconds = 1e100;
  for (int r = 0; r < repeats; ++r) {
    // Cold x6: a fresh Engine per deadline so nothing is shared.
    Stopwatch cold_watch;
    for (const int deadline : kDeadlines) {
      Engine engine(gg.graph, gg.groups);
      spec.deadline = deadline;
      DieOnError(engine.Solve(spec, options));
    }
    timing.cold_seconds = std::min(timing.cold_seconds,
                                   cold_watch.ElapsedSeconds());

    // Sweep: one Engine, one build per backend kind.
    Engine engine(gg.graph, gg.groups);
    Stopwatch sweep_watch;
    const Engine::SweepResult sweep = engine.SolveSweep(spec, kDeadlines,
                                                        options);
    timing.sweep_seconds = std::min(timing.sweep_seconds,
                                    sweep_watch.ElapsedSeconds());
    for (const Result<Solution>& solution : sweep.solutions) {
      DieOnError(solution);
    }
    timing.sweep_constructions =
        oracle == "rr"
            ? sweep.after.sketch_constructions - sweep.before.sketch_constructions
            : sweep.after.world_constructions - sweep.before.world_constructions;
    if (r == 0) {
      std::printf("  %-10s sweep cache: %s\n", oracle.c_str(),
                  sweep.after.DebugString().c_str());
    }
  }
  std::printf("  %-10s cold x6 %.4fs   sweep %.4fs   speedup %.2fx   "
              "constructions/kind %lld\n",
              oracle.c_str(), timing.cold_seconds, timing.sweep_seconds,
              timing.cold_seconds / timing.sweep_seconds,
              static_cast<long long>(timing.sweep_constructions));
  return timing;
}

int Run(int argc, char** argv) {
  bench::PrintBanner("Deadline sweep",
                     "fig04c shape (tau in {1,2,5,10,20,inf}): one "
                     "deadline-parametric build vs six cold solves");
  const int worlds = bench::IntFlag(argc, argv, "worlds", 200);
  const int rr_sets = bench::IntFlag(argc, argv, "rr-sets", 2000);
  const int budget = bench::IntFlag(argc, argv, "budget", 20);
  const int repeats = bench::IntFlag(argc, argv, "repeats", 3);

  Rng rng(4242);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  std::printf("graph: %s, worlds=%d, rr_sets_per_group=%d, budget=%d, "
              "repeats=%d (best-of)\n\n",
              gg.graph.DebugString().c_str(), worlds, rr_sets, budget,
              repeats);

  SolveOptions options;
  options.num_worlds = worlds;
  options.rr_sets_per_group = rr_sets;
  // Selection only: the sweep's CacheStats story is then exactly one
  // construction per backend kind (evaluation would add the independent
  // fresh-world backend, one more per kind — not one more per tau).
  options.evaluate = false;

  CsvWriter csv({"oracle", "cold_x6_seconds", "sweep_seconds", "speedup",
                 "sweep_constructions_per_kind"});
  bool ok = true;
  for (const std::string oracle : {"montecarlo", "rr"}) {
    const SweepTiming timing = RunOracle(gg, oracle, options, budget, repeats);
    const double speedup = timing.cold_seconds / timing.sweep_seconds;
    csv.AddRow({oracle, FormatDouble(timing.cold_seconds, 6),
                FormatDouble(timing.sweep_seconds, 6),
                FormatDouble(speedup, 3),
                StrFormat("%lld", static_cast<long long>(
                                      timing.sweep_constructions))});
    if (timing.sweep_constructions != 1) {
      std::printf("ERROR: %s sweep materialized %lld backends, expected 1\n",
                  oracle.c_str(),
                  static_cast<long long>(timing.sweep_constructions));
      ok = false;
    }
    if (speedup < 2.0) {
      std::printf("ERROR: %s sweep speedup %.2fx is below the 2x acceptance "
                  "bar\n",
                  oracle.c_str(), speedup);
      ok = false;
    }
  }
  bench::WriteCsv(csv, "deadline_sweep.csv");
  if (ok) {
    std::printf("\nboth oracles answer the 6-deadline sweep off one cached "
                "build at >= 2x the six-cold-solve cost\n");
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace tcim

int main(int argc, char** argv) { return tcim::Run(argc, argv); }
