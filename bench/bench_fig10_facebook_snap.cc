// Figure 10 / Appendix C [Facebook-SNAP surrogate]:
//   groups are TOPOLOGICAL — derived by our spectral clustering into 5
//   clusters (not from node attributes), as in the paper's appendix;
//   10a — budget problem: total + influence of the two most-disparate
//         groups for P1, P4-log, P4-sqrt (pe=0.01, τ=20, B=30);
//   10b — cover problem influence at Q = 0.1;
//   10c — cover problem cost |S| at Q = 0.1.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/csv.h"
#include "core/experiment.h"
#include "graph/datasets.h"
#include "graph/spectral.h"

namespace tcim {
namespace {

void Run(int argc, char** argv) {
  bench::PrintBanner("Figure 10",
                     "Facebook-SNAP surrogate with spectral groups (k=5)");
  const int worlds = bench::IntFlag(argc, argv, "worlds", 300);
  const int budget = bench::IntFlag(argc, argv, "budget", 30);

  Rng rng(1010);
  const GroupedGraph planted = datasets::FacebookSnapSurrogate(rng);
  std::printf("graph: %s\n", planted.graph.DebugString().c_str());

  // Re-derive topological groups with our own spectral clustering pipeline
  // (the paper: "We used spectral clustering to identify 5 topological
  // groups in the graph").
  Stopwatch cluster_watch;
  SpectralClusteringOptions cluster_options;
  cluster_options.num_clusters = 5;
  Rng cluster_rng(2020);
  const GroupAssignment groups =
      SpectralClustering(planted.graph, cluster_options, cluster_rng);
  std::printf("spectral clustering: %s (%.1fs)\n\n",
              groups.DebugString().c_str(), cluster_watch.ElapsedSeconds());

  ExperimentConfig config;
  config.deadline = 20;
  config.num_worlds = worlds;

  Stopwatch watch;

  // Pick the reported pair: most disparate under P1.
  const ExperimentOutcome p1_probe =
      RunBudgetExperiment(planted.graph, groups, config, budget);
  const auto [ga, gb] = MostDisparatePair(p1_probe.report);
  std::printf("most-disparate pair under P1: groups %d and %d\n\n", ga, gb);

  // --- Fig 10a: budget problem. -------------------------------------------
  TablePrinter table_a("Fig 10a: budget problem (B=30, tau=20)",
                       {"algorithm", "total", "groupA", "groupB",
                        "pair disparity"});
  CsvWriter csv_a({"algorithm", "total", "groupA", "groupB", "disparity"});
  const ConcaveFunction log_h = ConcaveFunction::Log();
  const ConcaveFunction sqrt_h = ConcaveFunction::Sqrt();
  struct Row {
    const char* name;
    const ConcaveFunction* h;
  };
  for (const Row& row : {Row{"P1", nullptr}, Row{"P4-Log", &log_h},
                         Row{"P4-Sqrt", &sqrt_h}}) {
    const ExperimentOutcome outcome =
        RunBudgetExperiment(planted.graph, groups, config, budget, row.h);
    const std::vector<std::string> cells = {
        row.name, FormatDouble(outcome.report.total_fraction, 4),
        FormatDouble(outcome.report.normalized[ga], 4),
        FormatDouble(outcome.report.normalized[gb], 4),
        FormatDouble(outcome.report.DisparityAmong({ga, gb}), 4)};
    table_a.AddRow(cells);
    csv_a.AddRow(cells);
  }
  table_a.Print();
  bench::WriteCsv(csv_a, "fig10a_budget.csv");

  // --- Fig 10b / 10c: cover problem at Q = 0.1. ----------------------------
  TablePrinter table_b("Fig 10b: cover problem influence (Q=0.1)",
                       {"Q", "P2 gA", "P2 gB", "P6 gA", "P6 gB"});
  TablePrinter table_c("Fig 10c: cover problem cost (Q=0.1)",
                       {"Q", "P2 |S|", "P6 |S|"});
  CsvWriter csv_bc({"Q", "method", "groupA", "groupB", "seeds", "reached"});
  const double quota = 0.1;
  const ExperimentOutcome p2 = RunCoverExperiment(planted.graph, groups,
                                                  config, quota, false, 300);
  const ExperimentOutcome p6 = RunCoverExperiment(planted.graph, groups,
                                                  config, quota, true, 300);
  table_b.AddRow({FormatDouble(quota), FormatDouble(p2.report.normalized[ga], 4),
                  FormatDouble(p2.report.normalized[gb], 4),
                  FormatDouble(p6.report.normalized[ga], 4),
                  FormatDouble(p6.report.normalized[gb], 4)});
  table_c.AddRow({FormatDouble(quota),
                  StrFormat("%zu", p2.selection.seeds.size()),
                  StrFormat("%zu", p6.selection.seeds.size())});
  csv_bc.AddRow({FormatDouble(quota), "P2",
                 FormatDouble(p2.report.normalized[ga], 4),
                 FormatDouble(p2.report.normalized[gb], 4),
                 StrFormat("%zu", p2.selection.seeds.size()),
                 p2.selection.target_reached ? "1" : "0"});
  csv_bc.AddRow({FormatDouble(quota), "P6",
                 FormatDouble(p6.report.normalized[ga], 4),
                 FormatDouble(p6.report.normalized[gb], 4),
                 StrFormat("%zu", p6.selection.seeds.size()),
                 p6.selection.target_reached ? "1" : "0"});
  table_b.Print();
  table_c.Print();
  bench::WriteCsv(csv_bc, "fig10bc_cover.csv");

  std::printf("[time] figure 10 total: %.1fs\n", watch.ElapsedSeconds());
}

}  // namespace
}  // namespace tcim

int main(int argc, char** argv) {
  tcim::Run(argc, argv);
  return 0;
}
