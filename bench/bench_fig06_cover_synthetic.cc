// Figure 6 [Synthetic dataset, cover problem]:
//   6a — fraction influenced (total + per group) after each greedy
//        iteration for P2 vs P6 at Q = 0.2;
//   6b — per-group fraction influenced at quota Q ∈ {0.1, 0.2, 0.3};
//   6c — solution seed-set size |S| at each quota.
//
// Expected shape: both methods reach the total quota; only P6 lifts BOTH
// groups to Q; P6 pays a small number of extra seeds (Theorem 2).
//
// Runs entirely through the tcim::Solve() facade; the iteration curves of
// 6a come from Solution::trace.

#include <cstdio>
#include <vector>

#include "api/tcim.h"
#include "bench/bench_util.h"
#include "common/csv.h"

namespace tcim {
namespace {

// Result::value() aborts with the status message on error.
Solution MustSolve(const GroupedGraph& gg, const ProblemSpec& spec,
                   const SolveOptions& options) {
  return Solve(gg.graph, gg.groups, spec, options).value();
}

void RunFig6a(const GroupedGraph& gg, const SolveOptions& options,
              double quota) {
  TablePrinter table(
      StrFormat("Fig 6a: greedy iterations at Q=%s (selection-time estimates)",
                FormatDouble(quota).c_str()),
      {"iter", "P2 total", "P2 g1", "P2 g2", "P6 total", "P6 g1", "P6 g2"});
  CsvWriter csv({"iteration", "method", "total", "group1", "group2"});

  const Solution p2 =
      MustSolve(gg, ProblemSpec::Cover(quota, /*deadline=*/20), options);
  const Solution p6 =
      MustSolve(gg, ProblemSpec::FairCover(quota, /*deadline=*/20), options);

  const size_t iterations = std::max(p2.trace.size(), p6.trace.size());
  const NodeId n = gg.graph.num_nodes();
  auto cell = [&](const std::vector<SolutionStep>& trace, size_t i, int what) {
    if (i >= trace.size()) return std::string("-");
    const GroupVector& cov = trace[i].coverage;
    switch (what) {
      case 0:
        return FormatDouble(GroupVectorTotal(cov) / n, 4);
      case 1:
        return FormatDouble(cov[0] / gg.groups.GroupSize(0), 4);
      default:
        return FormatDouble(cov[1] / gg.groups.GroupSize(1), 4);
    }
  };
  for (size_t i = 0; i < iterations; ++i) {
    table.AddRow({StrFormat("%zu", i + 1), cell(p2.trace, i, 0),
                  cell(p2.trace, i, 1), cell(p2.trace, i, 2),
                  cell(p6.trace, i, 0), cell(p6.trace, i, 1),
                  cell(p6.trace, i, 2)});
    if (i < p2.trace.size()) {
      csv.AddRow({StrFormat("%zu", i + 1), "P2", cell(p2.trace, i, 0),
                  cell(p2.trace, i, 1), cell(p2.trace, i, 2)});
    }
    if (i < p6.trace.size()) {
      csv.AddRow({StrFormat("%zu", i + 1), "P6", cell(p6.trace, i, 0),
                  cell(p6.trace, i, 1), cell(p6.trace, i, 2)});
    }
  }
  table.Print();
  std::printf("quota line: %s; P2 used %zu seeds, P6 used %zu seeds\n\n",
              FormatDouble(quota).c_str(), p2.seeds.size(), p6.seeds.size());
  bench::WriteCsv(csv, "fig06a_iterations.csv");
}

void RunFig6bc(const GroupedGraph& gg, const SolveOptions& options) {
  TablePrinter influence("Fig 6b: per-group influence vs quota Q",
                         {"Q", "P2 g1", "P2 g2", "P6 g1", "P6 g2"});
  TablePrinter sizes("Fig 6c: solution set size |S| vs quota Q",
                     {"Q", "P2 |S|", "P6 |S|"});
  CsvWriter csv({"Q", "method", "group1", "group2", "seeds", "reached"});

  for (const double quota : {0.1, 0.2, 0.3}) {
    const Solution p2 = MustSolve(gg, ProblemSpec::Cover(quota, 20), options);
    const Solution p6 =
        MustSolve(gg, ProblemSpec::FairCover(quota, 20), options);
    influence.AddRow({FormatDouble(quota),
                      FormatDouble(p2.evaluation->normalized[0], 4),
                      FormatDouble(p2.evaluation->normalized[1], 4),
                      FormatDouble(p6.evaluation->normalized[0], 4),
                      FormatDouble(p6.evaluation->normalized[1], 4)});
    sizes.AddRow({FormatDouble(quota), StrFormat("%zu", p2.seeds.size()),
                  StrFormat("%zu", p6.seeds.size())});
    csv.AddRow({FormatDouble(quota), "P2",
                FormatDouble(p2.evaluation->normalized[0], 4),
                FormatDouble(p2.evaluation->normalized[1], 4),
                StrFormat("%zu", p2.seeds.size()),
                p2.target_reached ? "1" : "0"});
    csv.AddRow({FormatDouble(quota), "P6",
                FormatDouble(p6.evaluation->normalized[0], 4),
                FormatDouble(p6.evaluation->normalized[1], 4),
                StrFormat("%zu", p6.seeds.size()),
                p6.target_reached ? "1" : "0"});
  }
  influence.Print();
  sizes.Print();
  bench::WriteCsv(csv, "fig06bc_quota_sweep.csv");
}

void Run(int argc, char** argv) {
  bench::PrintBanner("Figure 6", "synthetic SBM cover problem: P2 vs P6");
  const int worlds = bench::IntFlag(argc, argv, "worlds", 200);

  Rng rng(4242);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  std::printf("graph: %s, groups: %s, worlds=%d\n\n",
              gg.graph.DebugString().c_str(), gg.groups.DebugString().c_str(),
              worlds);

  SolveOptions options;
  options.num_worlds = worlds;

  Stopwatch watch;
  RunFig6a(gg, options, /*quota=*/0.2);
  RunFig6bc(gg, options);
  std::printf("[time] figure 6 total: %.1fs\n", watch.ElapsedSeconds());
}

}  // namespace
}  // namespace tcim

int main(int argc, char** argv) {
  tcim::Run(argc, argv);
  return 0;
}
