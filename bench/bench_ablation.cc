// Ablation bench (not a paper figure — design-choice validation called out
// in DESIGN.md):
//   A — CELF lazy evaluation vs plain greedy: identical seeds, oracle-call
//       and wall-clock savings;
//   B — concave-curvature sweep: H = z^α for α ∈ {1.0, 0.75, 0.5, 0.25} and
//       H = log: the fairness/influence trade-off curve of §5.1.2;
//   C — Monte-Carlo world-count sweep: estimate stability vs cost;
//   D — RR-sketch vs Monte-Carlo oracle: agreement of the two estimators
//       and seed-selection speed (the "new optimization methods" extension);
//   E — baseline seeders (degree / PageRank / random / proportional degree)
//       evaluated on the same utility, showing why heuristics are unfair.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/csv.h"
#include "core/baselines.h"
#include "core/experiment.h"
#include "core/maximin.h"
#include "core/robustness.h"
#include "graph/datasets.h"
#include "sim/rr_sets.h"

namespace tcim {
namespace {

void RunCelfAblation(const GroupedGraph& gg, int worlds, int budget) {
  TablePrinter table("Ablation A: CELF vs plain greedy (P1, tau=20)",
                     {"variant", "seeds equal", "oracle calls", "seconds"});
  CsvWriter csv({"variant", "oracle_calls", "seconds"});

  OracleOptions options;
  options.num_worlds = worlds;
  options.deadline = 20;

  Stopwatch lazy_watch;
  InfluenceOracle oracle_lazy(&gg.graph, &gg.groups, options);
  BudgetOptions lazy_budget;
  lazy_budget.budget = budget;
  lazy_budget.lazy = true;
  const GreedyResult lazy = SolveTcimBudget(oracle_lazy, lazy_budget);
  const double lazy_seconds = lazy_watch.ElapsedSeconds();

  Stopwatch plain_watch;
  InfluenceOracle oracle_plain(&gg.graph, &gg.groups, options);
  BudgetOptions plain_budget = lazy_budget;
  plain_budget.lazy = false;
  const GreedyResult plain = SolveTcimBudget(oracle_plain, plain_budget);
  const double plain_seconds = plain_watch.ElapsedSeconds();

  // Stochastic greedy (Mirzasoleiman et al.): approximate but even fewer
  // oracle calls; reported alongside for the speed/quality trade-off.
  Stopwatch stochastic_watch;
  InfluenceOracle oracle_stochastic(&gg.graph, &gg.groups, options);
  TotalInfluenceObjective objective;
  GreedyOptions stochastic_greedy;
  stochastic_greedy.max_seeds = budget;
  stochastic_greedy.stochastic_epsilon = 0.1;
  const GreedyResult stochastic =
      RunGreedy(oracle_stochastic, objective, stochastic_greedy);
  const double stochastic_seconds = stochastic_watch.ElapsedSeconds();

  const bool equal = lazy.seeds == plain.seeds;
  table.AddRow({"CELF", equal ? "yes" : "NO",
                StrFormat("%lld", static_cast<long long>(lazy.oracle_calls)),
                FormatDouble(lazy_seconds, 2)});
  table.AddRow({"plain", "-",
                StrFormat("%lld", static_cast<long long>(plain.oracle_calls)),
                FormatDouble(plain_seconds, 2)});
  table.AddRow(
      {StrFormat("stochastic(0.1) %.0f%% of plain value",
                 100.0 * stochastic.objective_value / plain.objective_value),
       "-", StrFormat("%lld", static_cast<long long>(stochastic.oracle_calls)),
       FormatDouble(stochastic_seconds, 2)});
  table.Print();
  std::printf("CELF saves %.1fx oracle calls, %.1fx time\n\n",
              static_cast<double>(plain.oracle_calls) / lazy.oracle_calls,
              plain_seconds / std::max(1e-9, lazy_seconds));
  csv.AddRow({"celf", StrFormat("%lld", static_cast<long long>(lazy.oracle_calls)),
              FormatDouble(lazy_seconds, 3)});
  csv.AddRow({"plain",
              StrFormat("%lld", static_cast<long long>(plain.oracle_calls)),
              FormatDouble(plain_seconds, 3)});
  bench::WriteCsv(csv, "ablation_celf.csv");
}

void RunCurvatureSweep(const GroupedGraph& gg, int worlds, int budget) {
  TablePrinter table("Ablation B: curvature of H vs fairness/influence",
                     {"H", "total", "group1", "group2", "disparity"});
  CsvWriter csv({"H", "total", "group1", "group2", "disparity"});

  ExperimentConfig config;
  config.deadline = 20;
  config.num_worlds = worlds;

  std::vector<std::pair<std::string, ConcaveFunction>> wrappers;
  wrappers.emplace_back("identity(=P1)", ConcaveFunction::Identity());
  wrappers.emplace_back("power(0.75)", ConcaveFunction::Power(0.75));
  wrappers.emplace_back("sqrt", ConcaveFunction::Sqrt());
  wrappers.emplace_back("power(0.25)", ConcaveFunction::Power(0.25));
  wrappers.emplace_back("log", ConcaveFunction::Log());

  for (const auto& [name, h] : wrappers) {
    const ExperimentOutcome outcome =
        RunBudgetExperiment(gg.graph, gg.groups, config, budget, &h);
    std::vector<std::string> cells = {name};
    for (const std::string& cell : bench::ReportCells(outcome.report)) {
      cells.push_back(cell);
    }
    table.AddRow(cells);
    csv.AddRow(cells);
  }

  // Normalized variants: H applied to the group FRACTION f_i/|V_i| rather
  // than the raw count. On raw counts a high-curvature H equalizes counts,
  // which overshoots the minority in fraction terms (visible above);
  // normalizing targets Eq. 2 directly.
  ConcaveSumObjective::Options normalized;
  normalized.normalize_by_group_size = true;
  for (const auto& [name, h] :
       std::vector<std::pair<std::string, ConcaveFunction>>{
           {"log (normalized)", ConcaveFunction::Log()},
           {"sqrt (normalized)", ConcaveFunction::Sqrt()}}) {
    const ExperimentOutcome outcome = RunBudgetExperiment(
        gg.graph, gg.groups, config, budget, &h, normalized);
    std::vector<std::string> cells = {name};
    for (const std::string& cell : bench::ReportCells(outcome.report)) {
      cells.push_back(cell);
    }
    table.AddRow(cells);
    csv.AddRow(cells);
  }
  table.Print();
  bench::WriteCsv(csv, "ablation_curvature.csv");
}

void RunWorldCountSweep(const GroupedGraph& gg, int budget) {
  TablePrinter table("Ablation C: Monte-Carlo world count vs stability",
                     {"worlds", "selected total (fresh eval)", "seconds"});
  CsvWriter csv({"worlds", "eval_total", "seconds"});

  for (const int worlds : {25, 50, 100, 200, 400}) {
    ExperimentConfig config;
    config.deadline = 20;
    config.num_worlds = worlds;
    config.eval_num_worlds = 800;  // common, high-precision yardstick
    Stopwatch watch;
    const ExperimentOutcome outcome =
        RunBudgetExperiment(gg.graph, gg.groups, config, budget);
    table.AddRow({StrFormat("%d", worlds),
                  FormatDouble(outcome.report.total_fraction, 4),
                  FormatDouble(watch.ElapsedSeconds(), 2)});
    csv.AddRow({StrFormat("%d", worlds),
                FormatDouble(outcome.report.total_fraction, 4),
                FormatDouble(watch.ElapsedSeconds(), 3)});
  }
  table.Print();
  bench::WriteCsv(csv, "ablation_worlds.csv");
}

void RunRrComparison(const GroupedGraph& gg, int worlds, int budget) {
  TablePrinter table("Ablation D: RR sketch vs Monte-Carlo oracle",
                     {"method", "total", "group1", "group2", "disparity",
                      "seconds"});
  CsvWriter csv({"method", "total", "group1", "group2", "disparity",
                 "seconds"});

  ExperimentConfig config;
  config.deadline = 20;
  config.num_worlds = worlds;

  Stopwatch mc_watch;
  const ConcaveFunction log_h = ConcaveFunction::Log();
  const ExperimentOutcome mc =
      RunBudgetExperiment(gg.graph, gg.groups, config, budget, &log_h);
  const double mc_seconds = mc_watch.ElapsedSeconds();

  Stopwatch rr_watch;
  RrSketchOptions rr_options;
  rr_options.sets_per_group = 6000;
  rr_options.deadline = 20;
  RrSketch sketch(&gg.graph, &gg.groups, rr_options);
  const std::vector<NodeId> rr_seeds =
      sketch.SelectSeedsBudget(budget, [](double z) { return std::log1p(z); });
  const double rr_seconds = rr_watch.ElapsedSeconds();
  const GroupUtilityReport rr_report =
      EvaluateSeedSet(gg.graph, gg.groups, rr_seeds, config);

  auto add = [&](const char* name, const GroupUtilityReport& report,
                 double seconds) {
    std::vector<std::string> cells = {name};
    for (const std::string& cell : bench::ReportCells(report)) {
      cells.push_back(cell);
    }
    cells.push_back(FormatDouble(seconds, 2));
    table.AddRow(cells);
    csv.AddRow(cells);
  };
  add("MC-oracle P4-log", mc.report, mc_seconds);
  add("RR-sketch P4-log", rr_report, rr_seconds);
  table.Print();
  bench::WriteCsv(csv, "ablation_rr_vs_mc.csv");
}

void RunBaselines(const GroupedGraph& gg, int worlds, int budget) {
  TablePrinter table("Ablation E: heuristic seeders vs greedy solvers",
                     {"seeder", "total", "group1", "group2", "disparity"});
  CsvWriter csv({"seeder", "total", "group1", "group2", "disparity"});

  ExperimentConfig config;
  config.deadline = 20;
  config.num_worlds = worlds;

  auto add = [&](const char* name, const std::vector<NodeId>& seeds) {
    const GroupUtilityReport report =
        EvaluateSeedSet(gg.graph, gg.groups, seeds, config);
    std::vector<std::string> cells = {name};
    for (const std::string& cell : bench::ReportCells(report)) {
      cells.push_back(cell);
    }
    table.AddRow(cells);
    csv.AddRow(cells);
  };

  Rng rng(99);
  add("top-degree", TopDegreeSeeds(gg.graph, budget));
  add("degree-discount", DegreeDiscountSeeds(gg.graph, budget));
  add("pagerank", PageRankSeeds(gg.graph, budget));
  add("random", RandomSeeds(gg.graph, budget, rng));
  add("proportional-degree",
      GroupProportionalDegreeSeeds(gg.graph, gg.groups, budget));
  const ExperimentOutcome p1 =
      RunBudgetExperiment(gg.graph, gg.groups, config, budget);
  add("greedy P1", p1.selection.seeds);
  const ConcaveFunction log_h = ConcaveFunction::Log();
  const ExperimentOutcome p4 =
      RunBudgetExperiment(gg.graph, gg.groups, config, budget, &log_h);
  add("greedy P4-log", p4.selection.seeds);
  table.Print();
  bench::WriteCsv(csv, "ablation_baselines.csv");
}

void RunFairnessNotions(const GroupedGraph& gg, int worlds, int budget) {
  // Parity (this paper's P4) vs maximin (Rahmattalabi et al.) vs the
  // alpha-fairness family bridging them — the paper's "extensions to
  // different notions of fairness" future work, measured on one instance.
  TablePrinter table("Ablation F: fairness notions (B fixed)",
                     {"notion", "total", "min group", "disparity", "seeds"});
  CsvWriter csv({"notion", "total", "min_group", "disparity", "seeds"});

  ExperimentConfig config;
  config.deadline = 20;
  config.num_worlds = worlds;

  auto add = [&](const char* notion, const GroupUtilityReport& report,
                 size_t num_seeds) {
    double min_group = 1.0;
    for (const double fraction : report.normalized) {
      min_group = std::min(min_group, fraction);
    }
    const std::vector<std::string> cells = {
        notion, FormatDouble(report.total_fraction, 4),
        FormatDouble(min_group, 4), FormatDouble(report.disparity, 4),
        StrFormat("%zu", num_seeds)};
    table.AddRow(cells);
    csv.AddRow(cells);
  };

  const ExperimentOutcome p1 =
      RunBudgetExperiment(gg.graph, gg.groups, config, budget);
  add("utilitarian (P1)", p1.report, p1.selection.seeds.size());

  for (const double alpha : {0.5, 1.0, 2.0, 4.0}) {
    const ConcaveFunction h = ConcaveFunction::AlphaFair(alpha);
    const ExperimentOutcome outcome =
        RunBudgetExperiment(gg.graph, gg.groups, config, budget, &h);
    add(StrFormat("alpha-fair a=%s", FormatDouble(alpha, 1).c_str()).c_str(),
        outcome.report, outcome.selection.seeds.size());
  }

  OracleOptions oracle_options = SelectionOracleOptions(config);
  InfluenceOracle oracle(&gg.graph, &gg.groups, oracle_options);
  MaximinOptions maximin;
  maximin.budget = budget;
  const MaximinResult mm = SolveMaximinTcim(oracle, maximin);
  const GroupUtilityReport mm_report =
      EvaluateSeedSet(gg.graph, gg.groups, mm.seeds, config);
  add("maximin (SATURATE)", mm_report, mm.seeds.size());

  table.Print();
  bench::WriteCsv(csv, "ablation_fairness_notions.csv");
}

void RunRobustness(const GroupedGraph& gg, int worlds, int budget) {
  // Seed-deactivation stress (the Rahmattalabi setting): how gracefully do
  // the P1 / P4 / maximin seed sets degrade when 30% of seeds vanish?
  TablePrinter table(
      "Ablation G: random seed deactivation (survival q = 0.7)",
      {"policy", "mean total", "worst total", "worst min group",
       "worst disparity"});
  CsvWriter csv({"policy", "mean_total", "worst_total", "worst_min_group",
                 "worst_disparity"});

  ExperimentConfig config;
  config.deadline = 20;
  config.num_worlds = worlds;
  SeedDeactivationOptions stress;
  stress.survival_probability = 0.7;
  stress.num_patterns = 40;

  auto add = [&](const char* policy, const std::vector<NodeId>& seeds) {
    const RobustnessReport report = EvaluateUnderSeedDeactivation(
        gg.graph, gg.groups, seeds, config, stress);
    const std::vector<std::string> cells = {
        policy, FormatDouble(report.mean.total_fraction, 4),
        FormatDouble(report.worst_total_fraction, 4),
        FormatDouble(report.worst_min_group, 4),
        FormatDouble(report.worst_disparity, 4)};
    table.AddRow(cells);
    csv.AddRow(cells);
  };

  const ExperimentOutcome p1 =
      RunBudgetExperiment(gg.graph, gg.groups, config, budget);
  add("P1", p1.selection.seeds);
  const ConcaveFunction log_h = ConcaveFunction::Log();
  const ExperimentOutcome p4 =
      RunBudgetExperiment(gg.graph, gg.groups, config, budget, &log_h);
  add("P4-log", p4.selection.seeds);
  OracleOptions oracle_options = SelectionOracleOptions(config);
  InfluenceOracle oracle(&gg.graph, &gg.groups, oracle_options);
  MaximinOptions maximin;
  maximin.budget = budget;
  const MaximinResult mm = SolveMaximinTcim(oracle, maximin);
  add("maximin", mm.seeds);

  table.Print();
  bench::WriteCsv(csv, "ablation_robustness.csv");
}

void Run(int argc, char** argv) {
  bench::PrintBanner("Ablations", "design-choice validation on the SBM");
  const int worlds = bench::IntFlag(argc, argv, "worlds", 200);
  const int budget = bench::IntFlag(argc, argv, "budget", 30);

  Rng rng(4242);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  std::printf("graph: %s\n\n", gg.graph.DebugString().c_str());

  Stopwatch watch;
  RunCelfAblation(gg, worlds, budget);
  RunCurvatureSweep(gg, worlds, budget);
  RunWorldCountSweep(gg, budget);
  RunRrComparison(gg, worlds, budget);
  RunBaselines(gg, worlds, budget);
  RunFairnessNotions(gg, worlds, budget);
  RunRobustness(gg, worlds, budget);
  std::printf("[time] ablations total: %.1fs\n", watch.ElapsedSeconds());
}

}  // namespace
}  // namespace tcim

int main(int argc, char** argv) {
  tcim::Run(argc, argv);
  return 0;
}
