// Multi-tenant serving bench: what does one EngineRegistry buy over K
// hand-managed Engines?
//
//   (a) baseline — K independent Engines (one per graph), each with its
//       own implicit pool and unbounded cache, solving a 2-spec working
//       set (montecarlo + rr) for `rounds` rounds. Records per-tenant
//       seeds, warm hit-rate and resident bytes.
//   (b) registry, AMPLE budget — the same K working sets round-robin
//       through one registry whose global budget is exactly the sum of the
//       baseline working sets, on ONE shared pool. Acceptance bars
//       (exit 1): resident bytes may never exceed the budget (checked
//       after every solve), the warm hit-rate must be >= the baseline's,
//       and every solution must be seed-for-seed identical to (a).
//   (c) registry, TIGHT budget (half of (b), tenant 0 floored at its full
//       working set) — the memory-pressure story: cross-tenant eviction
//       keeps the registry within budget (exit 1 if ever exceeded, or if
//       any solve diverges from (a)); the hit-rate degradation and
//       eviction counts are reported.
//
// Overrides: --tenants=N (default 4), --worlds=N (default 80),
// --rounds=N (default 3), --rr-sets=N (default 400).

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "api/tcim.h"
#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/stopwatch.h"

namespace tcim {
namespace {

struct TenantRun {
  std::vector<std::vector<NodeId>> seeds;  // one per working-set spec
  double hit_rate = 0.0;
  size_t resident_bytes = 0;
};

double HitRate(const CacheStats& stats) {
  const int64_t accesses = stats.hits + stats.misses;
  return accesses == 0 ? 0.0
                       : static_cast<double>(stats.hits) / accesses;
}

std::string TenantId(int i) { return StrFormat("tenant%02d", i); }

int Run(int argc, char** argv) {
  bench::PrintBanner("Multi-tenant registry",
                     "K graphs under one budget+pool vs K independent Engines");
  const int tenants = bench::IntFlag(argc, argv, "tenants", 4);
  const int worlds = bench::IntFlag(argc, argv, "worlds", 80);
  const int rounds = bench::IntFlag(argc, argv, "rounds", 3);
  const int rr_sets = bench::IntFlag(argc, argv, "rr-sets", 400);
  if (tenants < 2 || rounds < 2) {
    std::printf("need --tenants>=2 and --rounds>=2 for a warm-rate story\n");
    return 1;
  }

  // One graph per tenant (different seeds: genuinely different networks).
  std::vector<GroupedGraph> graphs;
  graphs.reserve(tenants);
  for (int i = 0; i < tenants; ++i) {
    Rng rng(100 + static_cast<uint64_t>(i));
    graphs.push_back(datasets::SyntheticDefault(rng));
  }

  SolveOptions mc_options;
  mc_options.num_worlds = worlds;
  SolveOptions rr_options = mc_options;
  rr_options.rr_sets_per_group = rr_sets;

  // The per-tenant working set: one Monte-Carlo spec, one RR spec.
  ProblemSpec rr_spec = ProblemSpec::Budget(10, /*deadline=*/20);
  rr_spec.oracle = "rr";
  const std::vector<std::pair<ProblemSpec, SolveOptions>> working_set = {
      {ProblemSpec::Budget(10, /*deadline=*/20), mc_options},
      {rr_spec, rr_options},
  };

  CsvWriter csv({"phase", "seconds", "hit_rate", "resident_bytes",
                 "budget_bytes", "evictions", "cross_tenant_evictions"});

  // --- (a) K independent Engines. -------------------------------------------
  std::vector<TenantRun> baseline(tenants);
  size_t baseline_bytes = 0;
  double baseline_hit_rate = 0.0;
  Stopwatch baseline_watch;
  {
    int64_t hits = 0;
    int64_t accesses = 0;
    for (int i = 0; i < tenants; ++i) {
      Engine engine(graphs[i].graph, graphs[i].groups);
      for (int round = 0; round < rounds; ++round) {
        for (size_t s = 0; s < working_set.size(); ++s) {
          const Result<Solution> solution =
              engine.Solve(working_set[s].first, working_set[s].second);
          if (!solution.ok()) {
            std::printf("baseline solve failed: %s\n",
                        solution.status().ToString().c_str());
            return 1;
          }
          if (round == 0) baseline[i].seeds.push_back(solution->seeds);
        }
      }
      const CacheStats stats = engine.cache_stats();
      baseline[i].hit_rate = HitRate(stats);
      baseline[i].resident_bytes = engine.resident_bytes();
      baseline_bytes += baseline[i].resident_bytes;
      hits += stats.hits;
      accesses += stats.hits + stats.misses;
    }
    baseline_hit_rate = static_cast<double>(hits) / accesses;
  }
  const double baseline_seconds = baseline_watch.ElapsedSeconds();
  std::printf("(a) %d independent Engines  %.4fs  warm hit-rate %.1f%%  "
              "resident %zu bytes\n",
              tenants, baseline_seconds, 100.0 * baseline_hit_rate,
              baseline_bytes);
  csv.AddRow({"independent_engines", FormatDouble(baseline_seconds, 6),
              FormatDouble(baseline_hit_rate, 4),
              StrFormat("%zu", baseline_bytes), "0", "0", "0"});

  // Round-robin the same working sets through one registry; check the
  // budget after every solve and compare seeds against the baseline.
  const auto run_registry = [&](EngineRegistry& registry, size_t budget,
                                const char* label, bool& budget_ok,
                                bool& seeds_ok) {
    budget_ok = true;
    seeds_ok = true;
    for (int round = 0; round < rounds; ++round) {
      for (int i = 0; i < tenants; ++i) {
        for (size_t s = 0; s < working_set.size(); ++s) {
          const Result<Solution> solution = registry.Solve(
              TenantId(i), working_set[s].first, working_set[s].second);
          if (!solution.ok()) {
            std::printf("%s solve failed: %s\n", label,
                        solution.status().ToString().c_str());
            seeds_ok = false;
            return;
          }
          if (solution->seeds != baseline[i].seeds[s]) seeds_ok = false;
          if (registry.resident_bytes() > budget) budget_ok = false;
        }
      }
    }
  };

  // --- (b) One registry, budget == the sum of the working sets. -------------
  bool ample_budget_ok = false;
  bool ample_seeds_ok = false;
  double ample_hit_rate = 0.0;
  double ample_seconds = 0.0;
  {
    RegistryOptions registry_options;
    registry_options.max_total_bytes = baseline_bytes;
    EngineRegistry registry(registry_options);
    for (int i = 0; i < tenants; ++i) {
      GroupedGraph gg = graphs[i];
      const Status status = registry.Register(
          TenantId(i), std::move(gg.graph), std::move(gg.groups));
      if (!status.ok()) {
        std::printf("register failed: %s\n", status.ToString().c_str());
        return 1;
      }
    }
    Stopwatch watch;
    run_registry(registry, registry_options.max_total_bytes, "(b)",
                 ample_budget_ok, ample_seeds_ok);
    ample_seconds = watch.ElapsedSeconds();
    const RegistryStats stats = registry.Stats();
    ample_hit_rate = HitRate(stats.totals);
    std::printf("(b) registry (budget=%zu, one pool)  %.4fs  warm hit-rate "
                "%.1f%%  resident %zu  cross-tenant evictions %lld\n",
                registry_options.max_total_bytes, ample_seconds,
                100.0 * ample_hit_rate, stats.resident_bytes,
                static_cast<long long>(stats.cross_tenant_evictions));
    csv.AddRow({"registry_ample", FormatDouble(ample_seconds, 6),
                FormatDouble(ample_hit_rate, 4),
                StrFormat("%zu", stats.resident_bytes),
                StrFormat("%zu", registry_options.max_total_bytes),
                StrFormat("%lld",
                          static_cast<long long>(stats.totals.evictions)),
                StrFormat("%lld", static_cast<long long>(
                                      stats.cross_tenant_evictions))});
  }

  // --- (c) One registry, HALF the budget, tenant 0 floored. -----------------
  bool tight_budget_ok = false;
  bool tight_seeds_ok = false;
  {
    RegistryOptions registry_options;
    registry_options.max_total_bytes = baseline_bytes / 2;
    EngineRegistry registry(registry_options);
    for (int i = 0; i < tenants; ++i) {
      TenantOptions tenant_options;
      if (i == 0) {
        tenant_options.min_resident_bytes = baseline[0].resident_bytes;
      }
      GroupedGraph gg = graphs[i];
      const Status status =
          registry.Register(TenantId(i), std::move(gg.graph),
                            std::move(gg.groups), tenant_options);
      if (!status.ok()) {
        std::printf("register failed: %s\n", status.ToString().c_str());
        return 1;
      }
    }
    Stopwatch watch;
    run_registry(registry, registry_options.max_total_bytes, "(c)",
                 tight_budget_ok, tight_seeds_ok);
    const double seconds = watch.ElapsedSeconds();
    const RegistryStats stats = registry.Stats();
    double floored_rate = 0.0;
    for (const auto& tenant : stats.tenants) {
      if (tenant.id == TenantId(0)) floored_rate = HitRate(tenant.cache);
    }
    std::printf("(c) registry (budget=%zu, tenant00 floored)  %.4fs  warm "
                "hit-rate %.1f%% (floored tenant %.1f%%)  resident %zu  "
                "cross-tenant evictions %lld\n",
                registry_options.max_total_bytes, seconds,
                100.0 * HitRate(stats.totals), 100.0 * floored_rate,
                stats.resident_bytes,
                static_cast<long long>(stats.cross_tenant_evictions));
    csv.AddRow({"registry_tight", FormatDouble(seconds, 6),
                FormatDouble(HitRate(stats.totals), 4),
                StrFormat("%zu", stats.resident_bytes),
                StrFormat("%zu", registry_options.max_total_bytes),
                StrFormat("%lld",
                          static_cast<long long>(stats.totals.evictions)),
                StrFormat("%lld", static_cast<long long>(
                                      stats.cross_tenant_evictions))});
  }

  bench::WriteCsv(csv, "multi_tenant.csv");

  // --- Acceptance bars. -----------------------------------------------------
  bool ok = true;
  if (!ample_budget_ok || !tight_budget_ok) {
    std::printf("\nERROR: registry exceeded its global byte budget\n");
    ok = false;
  }
  if (!(ample_hit_rate >= baseline_hit_rate - 1e-9)) {
    std::printf("\nERROR: ample-budget warm hit-rate %.3f below the "
                "independent-Engine baseline %.3f\n",
                ample_hit_rate, baseline_hit_rate);
    ok = false;
  }
  if (!ample_seeds_ok || !tight_seeds_ok) {
    std::printf("\nERROR: registry solutions diverged from the baseline\n");
    ok = false;
  }
  if (ok) {
    std::printf("\nall bars met: budget respected, warm hit-rate >= "
                "baseline, seeds identical\n");
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace tcim

int main(int argc, char** argv) { return tcim::Run(argc, argv); }
