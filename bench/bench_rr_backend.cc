// RR-set backend bench: what does oracle = "rr" buy over "montecarlo" on
// the paper-figure workloads, cold and warm?
//
//   * fig04 workload (synthetic SBM, budget problems): P1 and P4 at
//     B ∈ {10, 20, 30}, τ = 20 — the repeated-budget-query serving shape;
//   * fig06 workload (synthetic SBM, cover problems): P2 and P6 at
//     Q ∈ {0.1, 0.2, 0.3}, τ = 20 — the shape the ROADMAP calls out, where
//     Monte-Carlo re-pays forward BFS over every world per candidate.
//
// "Cold" is the first Engine::Solve (backend built + selection); "warm" is
// the steady-state re-solve on the cached backend. The acceptance bar is
// warm RR >= 2x faster than warm Monte-Carlo on the fig06 cover workload
// (in practice the gap is one to two orders of magnitude: a warm RR solve
// is pure inverted-index arithmetic, no graph traversal at all).
//
// Overrides: --worlds=N (default 200), --rr-sets=N (default 2000),
// --repeats=N (default 3).

#include <cstdio>
#include <string>
#include <vector>

#include "api/tcim.h"
#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/stopwatch.h"

namespace tcim {
namespace {

std::vector<ProblemSpec> Fig04Workload() {
  std::vector<ProblemSpec> specs;
  for (const int budget : {10, 20, 30}) {
    specs.push_back(ProblemSpec::Budget(budget, /*deadline=*/20));
    specs.push_back(ProblemSpec::FairBudget(budget, /*deadline=*/20));
  }
  return specs;
}

std::vector<ProblemSpec> Fig06Workload() {
  std::vector<ProblemSpec> specs;
  for (const double quota : {0.1, 0.2, 0.3}) {
    specs.push_back(ProblemSpec::Cover(quota, /*deadline=*/20));
    specs.push_back(ProblemSpec::FairCover(quota, /*deadline=*/20));
  }
  return specs;
}

struct Timing {
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;  // average over repeats
};

// Runs the workload through a fresh Engine with the given oracle: one cold
// pass, then `repeats` warm passes on the cached backends.
Timing RunWorkload(const GroupedGraph& gg, std::vector<ProblemSpec> specs,
                   const std::string& oracle, const SolveOptions& options,
                   int repeats) {
  for (ProblemSpec& spec : specs) spec.oracle = oracle;
  Engine engine(gg.graph, gg.groups);

  Timing timing;
  Stopwatch cold_watch;
  for (const ProblemSpec& spec : specs) {
    const Result<Solution> solution = engine.Solve(spec, options);
    if (!solution.ok()) {
      std::fprintf(stderr, "solve failed: %s\n",
                   solution.status().ToString().c_str());
      std::exit(1);
    }
  }
  timing.cold_seconds = cold_watch.ElapsedSeconds();

  Stopwatch warm_watch;
  for (int r = 0; r < repeats; ++r) {
    for (const ProblemSpec& spec : specs) {
      (void)engine.Solve(spec, options).value();
    }
  }
  timing.warm_seconds = warm_watch.ElapsedSeconds() / repeats;

  std::printf("  %-10s cold %.4fs   warm %.4fs   cache: %s\n", oracle.c_str(),
              timing.cold_seconds, timing.warm_seconds,
              engine.cache_stats().DebugString().c_str());
  return timing;
}

int Run(int argc, char** argv) {
  bench::PrintBanner("RR-set backend",
                     "oracle=rr vs oracle=montecarlo, cold and warm, on the "
                     "fig04/fig06 synthetic workloads");
  const int worlds = bench::IntFlag(argc, argv, "worlds", 200);
  const int rr_sets = bench::IntFlag(argc, argv, "rr-sets", 2000);
  const int repeats = bench::IntFlag(argc, argv, "repeats", 3);

  Rng rng(4242);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  std::printf("graph: %s, worlds=%d, rr_sets_per_group=%d, repeats=%d\n\n",
              gg.graph.DebugString().c_str(), worlds, rr_sets, repeats);

  SolveOptions options;
  options.num_worlds = worlds;
  options.rr_sets_per_group = rr_sets;

  CsvWriter csv({"workload", "oracle", "cold_seconds", "warm_seconds",
                 "warm_speedup_vs_mc"});
  double cover_warm_speedup = 0.0;

  for (const bool cover : {false, true}) {
    const char* name = cover ? "fig06_cover" : "fig04_budget";
    std::printf("%s workload (%s):\n", name,
                cover ? "P2 + P6 over Q in {0.1,0.2,0.3}"
                      : "P1 + P4 over B in {10,20,30}");
    const std::vector<ProblemSpec> specs =
        cover ? Fig06Workload() : Fig04Workload();
    const Timing mc = RunWorkload(gg, specs, "montecarlo", options, repeats);
    const Timing rr = RunWorkload(gg, specs, "rr", options, repeats);
    const double cold_speedup = mc.cold_seconds / rr.cold_seconds;
    const double warm_speedup = mc.warm_seconds / rr.warm_seconds;
    std::printf("  rr speedup  cold %.2fx   warm %.2fx\n\n", cold_speedup,
                warm_speedup);
    if (cover) cover_warm_speedup = warm_speedup;

    csv.AddRow({name, "montecarlo", FormatDouble(mc.cold_seconds, 6),
                FormatDouble(mc.warm_seconds, 6), "1"});
    csv.AddRow({name, "rr", FormatDouble(rr.cold_seconds, 6),
                FormatDouble(rr.warm_seconds, 6),
                FormatDouble(warm_speedup, 3)});
  }
  bench::WriteCsv(csv, "rr_backend.csv");

  if (cover_warm_speedup < 2.0) {
    std::printf("ERROR: warm RR speedup %.2fx on the fig06 cover workload is "
                "below the 2x acceptance bar\n",
                cover_warm_speedup);
    return 1;
  }
  std::printf("warm RR is %.1fx faster than warm Monte-Carlo on the fig06 "
              "cover workload (bar: 2x)\n",
              cover_warm_speedup);
  return 0;
}

}  // namespace
}  // namespace tcim

int main(int argc, char** argv) { return tcim::Run(argc, argv); }
