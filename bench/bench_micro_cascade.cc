// Microbenchmarks for cascade simulation and RR-set generation.

#include <benchmark/benchmark.h>

#include "graph/datasets.h"
#include "sim/cascade.h"
#include "sim/rr_sets.h"

namespace tcim {
namespace {

const GroupedGraph& SharedGraph() {
  static const GroupedGraph* graph = [] {
    Rng rng(31337);
    return new GroupedGraph(datasets::SyntheticDefault(rng));
  }();
  return *graph;
}

void BM_SimulateIc(benchmark::State& state) {
  const GroupedGraph& gg = SharedGraph();
  Rng rng(1);
  const std::vector<NodeId> seeds = {0, 100, 200, 300, 400};
  int64_t activated = 0;
  for (auto _ : state) {
    activated += SimulateIc(gg.graph, seeds, rng).num_activated;
  }
  benchmark::DoNotOptimize(activated);
}
BENCHMARK(BM_SimulateIc);

void BM_SimulateLt(benchmark::State& state) {
  const GroupedGraph& gg = SharedGraph();
  Rng rng(1);
  const std::vector<NodeId> seeds = {0, 100, 200, 300, 400};
  int64_t activated = 0;
  for (auto _ : state) {
    activated += SimulateLt(gg.graph, seeds, rng).num_activated;
  }
  benchmark::DoNotOptimize(activated);
}
BENCHMARK(BM_SimulateLt);

void BM_SimulateInWorld(benchmark::State& state) {
  const GroupedGraph& gg = SharedGraph();
  WorldSampler sampler(&gg.graph, DiffusionModel::kIndependentCascade, 7);
  const std::vector<NodeId> seeds = {0, 100, 200, 300, 400};
  uint32_t world = 0;
  int64_t activated = 0;
  for (auto _ : state) {
    activated +=
        SimulateInWorld(gg.graph, seeds, sampler, world++, 20).num_activated;
  }
  benchmark::DoNotOptimize(activated);
}
BENCHMARK(BM_SimulateInWorld);

void BM_RrSketchBuild(benchmark::State& state) {
  const GroupedGraph& gg = SharedGraph();
  RrSketchOptions options;
  options.sets_per_group = static_cast<int>(state.range(0));
  options.deadline = 20;
  for (auto _ : state) {
    RrSketch sketch(&gg.graph, &gg.groups, options);
    benchmark::DoNotOptimize(sketch.num_sets());
  }
  state.SetItemsProcessed(state.iterations() * options.sets_per_group * 2);
}
BENCHMARK(BM_RrSketchBuild)->Arg(1000)->Arg(4000);

void BM_RrSelectSeeds(benchmark::State& state) {
  const GroupedGraph& gg = SharedGraph();
  RrSketchOptions options;
  options.sets_per_group = 4000;
  options.deadline = 20;
  RrSketch sketch(&gg.graph, &gg.groups, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sketch.SelectSeedsBudget(30, [](double z) { return z; }));
  }
}
BENCHMARK(BM_RrSelectSeeds);

}  // namespace
}  // namespace tcim
