// Engine reuse bench: what does a long-lived tcim::Engine buy over one-shot
// tcim::Solve() calls?
//
//   (a) same spec, repeated — the serving hot path: a cold Solve() samples
//       both the selection and evaluation world sets every call; a warm
//       Engine::Solve() runs on the cached materialized backend. The
//       acceptance bar is >= 2x.
//   (b) a workload of 8 specs sharing one backend (same oracle / model /
//       deadline / worlds) — the amortization story: the Engine samples
//       once, the one-shot path 8 times.
//   (c) Engine::SolveBatch over the same 8 specs — wall-clock of the
//       pool-parallel fan-out, plus a seed-for-seed identity check against
//       the sequential loop.
//
// Overrides: --worlds=N (default 300), --repeats=N (default 5).

#include <cstdio>
#include <vector>

#include "api/tcim.h"
#include "bench/bench_util.h"
#include "common/csv.h"
#include "common/stopwatch.h"

namespace tcim {
namespace {

// The 8-spec workload: every spec shares the montecarlo/IC/tau=20 backend.
std::vector<ProblemSpec> Workload() {
  return {
      ProblemSpec::Budget(10, /*deadline=*/20),
      ProblemSpec::Budget(20, 20),
      ProblemSpec::FairBudget(10, 20),
      ProblemSpec::FairBudget(10, 20, ConcaveFunction::Sqrt()),
      ProblemSpec::Cover(0.15, 20),
      ProblemSpec::FairCover(0.15, 20),
      ProblemSpec::Maximin(5, 20),
      ProblemSpec::Budget(5, 20),
  };
}

int Run(int argc, char** argv) {
  bench::PrintBanner("Engine reuse",
                     "cold one-shot Solve vs warm Engine (cached backends)");
  const int worlds = bench::IntFlag(argc, argv, "worlds", 300);
  const int repeats = bench::IntFlag(argc, argv, "repeats", 5);

  Rng rng(42);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  std::printf("graph: %s, worlds=%d, repeats=%d\n\n",
              gg.graph.DebugString().c_str(), worlds, repeats);

  SolveOptions options;
  options.num_worlds = worlds;

  CsvWriter csv({"phase", "seconds", "speedup_vs_cold"});

  // --- (a) Same spec, repeated. ---------------------------------------------
  const ProblemSpec hot_spec = ProblemSpec::Budget(10, 20);

  double cold_seconds = 0.0;
  std::vector<NodeId> cold_seeds;
  for (int i = 0; i < repeats; ++i) {
    Stopwatch watch;
    const Result<Solution> solution = Solve(gg.graph, gg.groups, hot_spec, options);
    cold_seconds += watch.ElapsedSeconds();
    cold_seeds = solution->seeds;
  }
  cold_seconds /= repeats;

  Engine engine(gg.graph, gg.groups);
  (void)engine.Solve(hot_spec, options);  // warm the backend cache
  double warm_seconds = 0.0;
  std::vector<NodeId> warm_seeds;
  for (int i = 0; i < repeats; ++i) {
    Stopwatch watch;
    const Result<Solution> solution = engine.Solve(hot_spec, options);
    warm_seconds += watch.ElapsedSeconds();
    warm_seeds = solution->seeds;
  }
  warm_seconds /= repeats;

  const double hot_speedup = cold_seconds / warm_seconds;
  std::printf("(a) same spec        cold Solve() %.4fs   warm Engine %.4fs   "
              "speedup %.2fx   seeds %s\n",
              cold_seconds, warm_seconds, hot_speedup,
              warm_seeds == cold_seeds ? "identical" : "DIFFER");
  csv.AddRow({"cold_solve", FormatDouble(cold_seconds, 6), "1"});
  csv.AddRow({"warm_engine_solve", FormatDouble(warm_seconds, 6),
              FormatDouble(hot_speedup, 3)});

  // --- (b) 8-spec workload sharing one backend. ------------------------------
  const std::vector<ProblemSpec> workload = Workload();

  Stopwatch cold_workload_watch;
  std::vector<std::vector<NodeId>> one_shot_seeds;
  for (const ProblemSpec& spec : workload) {
    one_shot_seeds.push_back(Solve(gg.graph, gg.groups, spec, options)->seeds);
  }
  const double cold_workload = cold_workload_watch.ElapsedSeconds();

  Engine workload_engine(gg.graph, gg.groups);
  Stopwatch warm_workload_watch;
  std::vector<std::vector<NodeId>> engine_seeds;
  for (const ProblemSpec& spec : workload) {
    engine_seeds.push_back(workload_engine.Solve(spec, options)->seeds);
  }
  const double warm_workload = warm_workload_watch.ElapsedSeconds();
  const double amortized = cold_workload / warm_workload;

  std::printf("(b) 8-spec workload  one-shot loop %.4fs   Engine loop %.4fs  "
              "amortized speedup %.2fx   seeds %s\n",
              cold_workload, warm_workload, amortized,
              engine_seeds == one_shot_seeds ? "identical" : "DIFFER");
  std::printf("    engine cache: %s\n",
              workload_engine.cache_stats().DebugString().c_str());
  csv.AddRow({"one_shot_workload", FormatDouble(cold_workload, 6), "1"});
  csv.AddRow({"engine_workload", FormatDouble(warm_workload, 6),
              FormatDouble(amortized, 3)});

  // --- (c) SolveBatch over the same workload. --------------------------------
  Engine batch_engine(gg.graph, gg.groups);
  Stopwatch batch_watch;
  const std::vector<Result<Solution>> batch =
      batch_engine.SolveBatch(workload, options);
  const double batch_seconds = batch_watch.ElapsedSeconds();

  bool batch_identical = batch.size() == engine_seeds.size();
  for (size_t i = 0; batch_identical && i < batch.size(); ++i) {
    batch_identical = batch[i].ok() && batch[i]->seeds == engine_seeds[i];
  }
  std::printf("(c) SolveBatch       %.4fs (vs %.4fs sequential engine)  "
              "%.2fx   seeds %s\n",
              batch_seconds, warm_workload, warm_workload / batch_seconds,
              batch_identical ? "identical" : "DIFFER");
  csv.AddRow({"engine_batch", FormatDouble(batch_seconds, 6),
              FormatDouble(cold_workload / batch_seconds, 3)});

  bench::WriteCsv(csv, "engine_reuse.csv");

  if (!(hot_speedup >= 2.0)) {
    std::printf("\nWARNING: warm/cold speedup %.2fx below the 2x bar\n",
                hot_speedup);
  }
  if (!batch_identical || engine_seeds != one_shot_seeds ||
      warm_seeds != cold_seeds) {
    std::printf("\nERROR: seed mismatch between paths\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tcim

int main(int argc, char** argv) { return tcim::Run(argc, argv); }
