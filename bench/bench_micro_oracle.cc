// Microbenchmarks (google-benchmark) for the influence oracle: marginal
// gain queries, seed commits, and full-set estimation across deadlines and
// world counts.

#include <benchmark/benchmark.h>

#include "graph/datasets.h"
#include "sim/arrival_oracle.h"
#include "sim/influence_oracle.h"

namespace tcim {
namespace {

const GroupedGraph& SharedGraph() {
  static const GroupedGraph* graph = [] {
    Rng rng(31337);
    return new GroupedGraph(datasets::SyntheticDefault(rng));
  }();
  return *graph;
}

void BM_MarginalGain(benchmark::State& state) {
  const GroupedGraph& gg = SharedGraph();
  OracleOptions options;
  options.num_worlds = static_cast<int>(state.range(0));
  options.deadline = static_cast<int>(state.range(1));
  InfluenceOracle oracle(&gg.graph, &gg.groups, options);
  // A realistic mid-greedy state: a few committed seeds.
  oracle.AddSeed(0);
  oracle.AddSeed(100);
  NodeId candidate = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.MarginalGain(candidate));
    candidate = (candidate + 7) % gg.graph.num_nodes();
  }
  state.SetItemsProcessed(state.iterations() * options.num_worlds);
}
BENCHMARK(BM_MarginalGain)
    ->Args({100, 5})
    ->Args({100, 20})
    ->Args({400, 20})
    ->Args({400, 1 << 29});

void BM_AddSeed(benchmark::State& state) {
  const GroupedGraph& gg = SharedGraph();
  OracleOptions options;
  options.num_worlds = static_cast<int>(state.range(0));
  options.deadline = 20;
  InfluenceOracle oracle(&gg.graph, &gg.groups, options);
  NodeId seed = 0;
  for (auto _ : state) {
    if (static_cast<NodeId>(oracle.seeds().size()) >= gg.graph.num_nodes()) {
      state.PauseTiming();
      oracle.Reset();
      seed = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(oracle.AddSeed(seed));
    seed = (seed + 1) % gg.graph.num_nodes();
  }
}
BENCHMARK(BM_AddSeed)->Arg(100)->Arg(400);

void BM_EstimateSeedSet(benchmark::State& state) {
  const GroupedGraph& gg = SharedGraph();
  OracleOptions options;
  options.num_worlds = static_cast<int>(state.range(0));
  options.deadline = 20;
  InfluenceOracle oracle(&gg.graph, &gg.groups, options);
  std::vector<NodeId> seeds;
  for (NodeId v = 0; v < 30; ++v) seeds.push_back(v * 16 % 500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.EstimateGroupCoverage(seeds));
  }
  state.SetItemsProcessed(state.iterations() * options.num_worlds);
}
BENCHMARK(BM_EstimateSeedSet)->Arg(100)->Arg(400)->Arg(1600);

void BM_ArrivalOracleMarginalGain(benchmark::State& state) {
  const GroupedGraph& gg = SharedGraph();
  ArrivalOracleOptions options;
  options.num_worlds = static_cast<int>(state.range(0));
  const bool geometric_delays = state.range(1) != 0;
  ArrivalOracle oracle(
      &gg.graph, &gg.groups, TemporalWeight::ExponentialDiscount(0.8, 20),
      geometric_delays ? DelaySampler::Geometric(0.5, 7)
                       : DelaySampler::Unit(),
      options);
  oracle.AddSeed(0);
  oracle.AddSeed(100);
  NodeId candidate = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.MarginalGain(candidate));
    candidate = (candidate + 7) % gg.graph.num_nodes();
  }
  state.SetItemsProcessed(state.iterations() * options.num_worlds);
}
BENCHMARK(BM_ArrivalOracleMarginalGain)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({400, 1});

}  // namespace
}  // namespace tcim
