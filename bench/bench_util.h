// Shared helpers for the figure benches.
//
// Every bench prints the rows/series of one paper figure via TablePrinter
// and also writes them as CSV files (fig04a.csv, ...) into the current
// working directory for plotting. Numbers are expected to match the paper
// in *shape* (who wins, direction of trends), not absolute value — see
// EXPERIMENTS.md.

#ifndef TCIM_BENCH_BENCH_UTIL_H_
#define TCIM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "sim/cascade.h"

namespace tcim {
namespace bench {

// "∞" for kNoDeadline, the number otherwise.
inline std::string FormatTau(int deadline) {
  return deadline >= kNoDeadline ? "inf" : StrFormat("%d", deadline);
}

// Parses "--worlds=N" style overrides so slow machines can dial benches
// down without recompiling. Returns `fallback` when the flag is absent.
inline int IntFlag(int argc, char** argv, const std::string& name,
                   int fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, prefix)) {
      int64_t value = 0;
      if (ParseInt64(arg.substr(prefix.size()), &value)) {
        return static_cast<int>(value);
      }
    }
  }
  return fallback;
}

// Writes the CSV next to the current working directory and logs the path.
inline void WriteCsv(const CsvWriter& csv, const std::string& filename) {
  const Status status = csv.WriteToFile(filename);
  if (status.ok()) {
    std::printf("[csv] wrote %s (%zu rows)\n", filename.c_str(),
                csv.num_rows());
  } else {
    std::printf("[csv] FAILED to write %s: %s\n", filename.c_str(),
                status.ToString().c_str());
  }
}

// Banner for a bench binary.
inline void PrintBanner(const std::string& figure,
                        const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

// Renders a GroupUtilityReport as table cells:
// total fraction, per-group fractions, disparity.
inline std::vector<std::string> ReportCells(const GroupUtilityReport& report) {
  std::vector<std::string> cells;
  cells.push_back(FormatDouble(report.total_fraction, 4));
  for (const double fraction : report.normalized) {
    cells.push_back(FormatDouble(fraction, 4));
  }
  cells.push_back(FormatDouble(report.disparity, 4));
  return cells;
}

}  // namespace bench
}  // namespace tcim

#endif  // TCIM_BENCH_BENCH_UTIL_H_
