// Figure 4 [Synthetic dataset, budget problem]:
//   4a — fraction influenced (total + per group) for P1, P4-log, P4-sqrt
//        at the paper defaults (SBM n=500 g=0.7, pe=0.05, τ=20, B=30);
//   4b — fraction influenced vs seed budget B ∈ {5..30} for P1 and P4-log;
//   4c — disparity (Eq. 2) vs deadline τ ∈ {1,2,5,10,20,∞}.
//
// Expected shape: P1 shows a large gap between the 70% majority (group 1)
// and 30% minority (group 2); P4 closes the gap at marginal total cost; the
// gap grows with B and is non-monotone-then-plateauing in τ.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/csv.h"
#include "core/experiment.h"
#include "graph/datasets.h"

namespace tcim {
namespace {

void RunFig4a(const GroupedGraph& gg, const ExperimentConfig& config,
              int budget) {
  TablePrinter table("Fig 4a: total and group influence (tau=20, B=30)",
                     {"algorithm", "total", "group1", "group2", "disparity"});
  CsvWriter csv({"algorithm", "total", "group1", "group2", "disparity"});

  const ConcaveFunction log_h = ConcaveFunction::Log();
  const ConcaveFunction sqrt_h = ConcaveFunction::Sqrt();
  struct Row {
    const char* name;
    const ConcaveFunction* h;
  };
  for (const Row& row : {Row{"P1", nullptr}, Row{"P4-Log", &log_h},
                         Row{"P4-Sqrt", &sqrt_h}}) {
    const ExperimentOutcome outcome =
        RunBudgetExperiment(gg.graph, gg.groups, config, budget, row.h);
    std::vector<std::string> cells = {row.name};
    for (const std::string& cell : bench::ReportCells(outcome.report)) {
      cells.push_back(cell);
    }
    table.AddRow(cells);
    csv.AddRow(cells);
  }
  table.Print();
  bench::WriteCsv(csv, "fig04a_h_variants.csv");
}

void RunFig4b(const GroupedGraph& gg, const ExperimentConfig& config,
              int max_budget) {
  TablePrinter table("Fig 4b: influence vs seed budget B",
                     {"B", "P1 total", "P1 g1", "P1 g2", "P4 total", "P4 g1",
                      "P4 g2"});
  CsvWriter csv({"B", "method", "total", "group1", "group2", "disparity"});

  // One greedy run at the max budget gives every prefix: greedy seeds are
  // nested, so the sweep evaluates prefixes on the fresh evaluation worlds.
  const ConcaveFunction log_h = ConcaveFunction::Log();
  const ExperimentOutcome p1 =
      RunBudgetExperiment(gg.graph, gg.groups, config, max_budget);
  const ExperimentOutcome p4 =
      RunBudgetExperiment(gg.graph, gg.groups, config, max_budget, &log_h);

  for (int budget = 5; budget <= max_budget; budget += 5) {
    const std::vector<NodeId> p1_prefix(p1.selection.seeds.begin(),
                                        p1.selection.seeds.begin() + budget);
    const std::vector<NodeId> p4_prefix(p4.selection.seeds.begin(),
                                        p4.selection.seeds.begin() + budget);
    const GroupUtilityReport p1_report =
        EvaluateSeedSet(gg.graph, gg.groups, p1_prefix, config);
    const GroupUtilityReport p4_report =
        EvaluateSeedSet(gg.graph, gg.groups, p4_prefix, config);
    table.AddRow({StrFormat("%d", budget),
                  FormatDouble(p1_report.total_fraction, 4),
                  FormatDouble(p1_report.normalized[0], 4),
                  FormatDouble(p1_report.normalized[1], 4),
                  FormatDouble(p4_report.total_fraction, 4),
                  FormatDouble(p4_report.normalized[0], 4),
                  FormatDouble(p4_report.normalized[1], 4)});
    csv.AddRow({StrFormat("%d", budget), "P1",
                FormatDouble(p1_report.total_fraction, 4),
                FormatDouble(p1_report.normalized[0], 4),
                FormatDouble(p1_report.normalized[1], 4),
                FormatDouble(p1_report.disparity, 4)});
    csv.AddRow({StrFormat("%d", budget), "P4-log",
                FormatDouble(p4_report.total_fraction, 4),
                FormatDouble(p4_report.normalized[0], 4),
                FormatDouble(p4_report.normalized[1], 4),
                FormatDouble(p4_report.disparity, 4)});
  }
  table.Print();
  bench::WriteCsv(csv, "fig04b_budget_sweep.csv");
}

void RunFig4c(const GroupedGraph& gg, ExperimentConfig config, int budget) {
  TablePrinter table("Fig 4c: disparity vs time deadline tau",
                     {"tau", "P1 disparity", "P4 disparity"});
  CsvWriter csv({"tau", "method", "disparity", "total"});

  const ConcaveFunction log_h = ConcaveFunction::Log();
  for (const int deadline : {1, 2, 5, 10, 20, kNoDeadline}) {
    config.deadline = deadline;
    const ExperimentOutcome p1 =
        RunBudgetExperiment(gg.graph, gg.groups, config, budget);
    const ExperimentOutcome p4 =
        RunBudgetExperiment(gg.graph, gg.groups, config, budget, &log_h);
    table.AddRow({bench::FormatTau(deadline),
                  FormatDouble(p1.report.disparity, 4),
                  FormatDouble(p4.report.disparity, 4)});
    csv.AddRow({bench::FormatTau(deadline), "P1",
                FormatDouble(p1.report.disparity, 4),
                FormatDouble(p1.report.total_fraction, 4)});
    csv.AddRow({bench::FormatTau(deadline), "P4-log",
                FormatDouble(p4.report.disparity, 4),
                FormatDouble(p4.report.total_fraction, 4)});
  }
  table.Print();
  bench::WriteCsv(csv, "fig04c_deadline_sweep.csv");
}

void Run(int argc, char** argv) {
  bench::PrintBanner("Figure 4",
                     "synthetic SBM budget problem: P1 vs P4 (log/sqrt)");
  const int worlds = bench::IntFlag(argc, argv, "worlds", 200);
  const int budget = bench::IntFlag(argc, argv, "budget", 30);

  Rng rng(4242);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  std::printf("graph: %s, groups: %s, worlds=%d\n\n",
              gg.graph.DebugString().c_str(), gg.groups.DebugString().c_str(),
              worlds);

  ExperimentConfig config;
  config.deadline = 20;
  config.num_worlds = worlds;

  Stopwatch watch;
  RunFig4a(gg, config, budget);
  RunFig4b(gg, config, budget);
  RunFig4c(gg, config, budget);
  std::printf("[time] figure 4 total: %.1fs\n", watch.ElapsedSeconds());
}

}  // namespace
}  // namespace tcim

int main(int argc, char** argv) {
  tcim::Run(argc, argv);
  return 0;
}
