// Figure 4 [Synthetic dataset, budget problem]:
//   4a — fraction influenced (total + per group) for P1, P4-log, P4-sqrt
//        at the paper defaults (SBM n=500 g=0.7, pe=0.05, τ=20, B=30);
//   4b — fraction influenced vs seed budget B ∈ {5..30} for P1 and P4-log;
//   4c — disparity (Eq. 2) vs deadline τ ∈ {1,2,5,10,20,∞}.
//
// Expected shape: P1 shows a large gap between the 70% majority (group 1)
// and 30% minority (group 2); P4 closes the gap at marginal total cost; the
// gap grows with B and is non-monotone-then-plateauing in τ.
//
// Runs entirely through the facade, on ONE shared tcim::Engine: each
// variant is one ProblemSpec, prefixes are re-evaluated with
// EvaluateSeeds(), and the 4c deadline sweep goes through
// Engine::SolveSweep — world backends are deadline-parametric, so the
// whole figure samples its selection and evaluation worlds exactly once.

#include <cstdio>
#include <vector>

#include "api/tcim.h"
#include "bench/bench_util.h"
#include "common/csv.h"

namespace tcim {
namespace {

// The solved Solution always carries an evaluation here (evaluate=true);
// Result's checked deref aborts with the status message on error.
const GroupUtilityReport& Report(const Result<Solution>& solution) {
  return *solution->evaluation;
}

void RunFig4a(Engine& engine, const SolveOptions& options, int budget) {
  TablePrinter table("Fig 4a: total and group influence (tau=20, B=30)",
                     {"algorithm", "total", "group1", "group2", "disparity"});
  CsvWriter csv({"algorithm", "total", "group1", "group2", "disparity"});

  struct Row {
    const char* name;
    ProblemSpec spec;
  };
  for (const Row& row :
       {Row{"P1", ProblemSpec::Budget(budget, /*deadline=*/20)},
        Row{"P4-Log", ProblemSpec::FairBudget(budget, 20)},
        Row{"P4-Sqrt",
            ProblemSpec::FairBudget(budget, 20, ConcaveFunction::Sqrt())}}) {
    const Result<Solution> solution = engine.Solve(row.spec, options);
    std::vector<std::string> cells = {row.name};
    for (const std::string& cell : bench::ReportCells(Report(solution))) {
      cells.push_back(cell);
    }
    table.AddRow(cells);
    csv.AddRow(cells);
  }
  table.Print();
  bench::WriteCsv(csv, "fig04a_h_variants.csv");
}

void RunFig4b(Engine& engine, const SolveOptions& options, int max_budget) {
  TablePrinter table("Fig 4b: influence vs seed budget B",
                     {"B", "P1 total", "P1 g1", "P1 g2", "P4 total", "P4 g1",
                      "P4 g2"});
  CsvWriter csv({"B", "method", "total", "group1", "group2", "disparity"});

  // One greedy run at the max budget gives every prefix: greedy seeds are
  // nested, so the sweep evaluates prefixes on the fresh evaluation worlds.
  const ProblemSpec p1_spec = ProblemSpec::Budget(max_budget, 20);
  const ProblemSpec p4_spec = ProblemSpec::FairBudget(max_budget, 20);
  const Result<Solution> p1 = engine.Solve(p1_spec, options);
  const Result<Solution> p4 = engine.Solve(p4_spec, options);

  for (int budget = 5; budget <= max_budget; budget += 5) {
    const std::vector<NodeId> p1_prefix(p1->seeds.begin(),
                                        p1->seeds.begin() + budget);
    const std::vector<NodeId> p4_prefix(p4->seeds.begin(),
                                        p4->seeds.begin() + budget);
    const Result<GroupUtilityReport> p1_report =
        engine.EvaluateSeeds(p1_prefix, p1_spec, options);
    const Result<GroupUtilityReport> p4_report =
        engine.EvaluateSeeds(p4_prefix, p4_spec, options);
    table.AddRow({StrFormat("%d", budget),
                  FormatDouble(p1_report->total_fraction, 4),
                  FormatDouble(p1_report->normalized[0], 4),
                  FormatDouble(p1_report->normalized[1], 4),
                  FormatDouble(p4_report->total_fraction, 4),
                  FormatDouble(p4_report->normalized[0], 4),
                  FormatDouble(p4_report->normalized[1], 4)});
    csv.AddRow({StrFormat("%d", budget), "P1",
                FormatDouble(p1_report->total_fraction, 4),
                FormatDouble(p1_report->normalized[0], 4),
                FormatDouble(p1_report->normalized[1], 4),
                FormatDouble(p1_report->disparity, 4)});
    csv.AddRow({StrFormat("%d", budget), "P4-log",
                FormatDouble(p4_report->total_fraction, 4),
                FormatDouble(p4_report->normalized[0], 4),
                FormatDouble(p4_report->normalized[1], 4),
                FormatDouble(p4_report->disparity, 4)});
  }
  table.Print();
  bench::WriteCsv(csv, "fig04b_budget_sweep.csv");
}

void RunFig4c(Engine& engine, const SolveOptions& options, int budget) {
  TablePrinter table("Fig 4c: disparity vs time deadline tau",
                     {"tau", "P1 disparity", "P4 disparity"});
  CsvWriter csv({"tau", "method", "disparity", "total"});

  // One SolveSweep per method: every deadline answered off the same cached
  // world ensemble instead of six fresh Monte-Carlo samplings.
  const std::vector<int> deadlines = {1, 2, 5, 10, 20, kNoDeadline};
  const Engine::SweepResult p1 =
      engine.SolveSweep(ProblemSpec::Budget(budget, 0), deadlines, options);
  const Engine::SweepResult p4 = engine.SolveSweep(
      ProblemSpec::FairBudget(budget, 0), deadlines, options);

  for (size_t i = 0; i < deadlines.size(); ++i) {
    table.AddRow({bench::FormatTau(deadlines[i]),
                  FormatDouble(Report(p1.solutions[i]).disparity, 4),
                  FormatDouble(Report(p4.solutions[i]).disparity, 4)});
    csv.AddRow({bench::FormatTau(deadlines[i]), "P1",
                FormatDouble(Report(p1.solutions[i]).disparity, 4),
                FormatDouble(Report(p1.solutions[i]).total_fraction, 4)});
    csv.AddRow({bench::FormatTau(deadlines[i]), "P4-log",
                FormatDouble(Report(p4.solutions[i]).disparity, 4),
                FormatDouble(Report(p4.solutions[i]).total_fraction, 4)});
  }
  table.Print();
  bench::WriteCsv(csv, "fig04c_deadline_sweep.csv");
}

void Run(int argc, char** argv) {
  bench::PrintBanner("Figure 4",
                     "synthetic SBM budget problem: P1 vs P4 (log/sqrt)");
  const int worlds = bench::IntFlag(argc, argv, "worlds", 200);
  const int budget = bench::IntFlag(argc, argv, "budget", 30);

  Rng rng(4242);
  const GroupedGraph gg = datasets::SyntheticDefault(rng);
  std::printf("graph: %s, groups: %s, worlds=%d\n\n",
              gg.graph.DebugString().c_str(), gg.groups.DebugString().c_str(),
              worlds);

  SolveOptions options;
  options.num_worlds = worlds;

  // One Engine serves the whole figure: its world backends are deadline-
  // parametric, so 4a/4b/4c all run on one (selection, evaluation) pair of
  // sampled world sets.
  Engine engine(gg.graph, gg.groups);

  Stopwatch watch;
  RunFig4a(engine, options, budget);
  RunFig4b(engine, options, budget);
  RunFig4c(engine, options, budget);
  std::printf("[time] figure 4 total: %.1fs (cache: %s)\n",
              watch.ElapsedSeconds(),
              engine.cache_stats().DebugString().c_str());
}

}  // namespace
}  // namespace tcim

int main(int argc, char** argv) {
  tcim::Run(argc, argv);
  return 0;
}
